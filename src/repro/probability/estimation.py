"""Frequentist and Bayesian estimators of probabilistic model parameters.

This module quantifies the paper's §III-B claim operationally: "With each
new observation, our distribution parameters become more credible.  Hence,
our knowledge increases and the epistemic uncertainty decreases with every
observation."  The estimators here expose exactly that: point estimates
(frequentist), credible intervals that shrink with data (Bayesian), and —
for *ontological* uncertainty forecasting (§IV) — the Good-Turing estimate
of the probability mass of categories never yet observed.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DistributionError
from repro.probability.distributions import Beta, Categorical, Dirichlet, Gamma, normal_ppf


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal (Wald) interval for the small counts typical
    of safety-relevant events; never escapes [0, 1].
    """
    if trials <= 0:
        raise DistributionError("trials must be positive")
    if not 0 <= successes <= trials:
        raise DistributionError("successes must lie in [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise DistributionError("confidence must be in (0, 1)")
    z = float(normal_ppf(0.5 + confidence / 2.0))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials)) / denom
    return max(0.0, center - half), min(1.0, center + half)


def beta_credible_interval(posterior: Beta, mass: float = 0.95) -> Tuple[float, float]:
    """Equal-tailed credible interval of a Beta posterior."""
    if not 0.0 < mass < 1.0:
        raise DistributionError("mass must be in (0, 1)")
    tail = (1.0 - mass) / 2.0
    lo = float(posterior.ppf(tail))
    hi = float(posterior.ppf(1.0 - tail))
    return lo, hi


class FrequentistEstimator:
    """Frequentist estimation of a categorical distribution from counts.

    This is the paper's "model B by repeated observation": with an infinite
    number of observations the exact probabilities would be recovered; with
    finitely many the gap between actual and observed frequencies is the
    *epistemic* uncertainty of the probabilistic model.
    """

    def __init__(self, outcomes: Sequence[str]):
        if not outcomes:
            raise DistributionError("at least one outcome required")
        self._counts: Counter = Counter({str(o): 0 for o in outcomes})
        self._total = 0

    @property
    def outcomes(self) -> List[str]:
        return list(self._counts)

    @property
    def total(self) -> int:
        return self._total

    @property
    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def observe(self, outcome: str, count: int = 1) -> None:
        """Record observations; unseen outcomes extend the support
        (an ontological event made epistemic by re-modeling)."""
        if count < 0:
            raise DistributionError("count must be non-negative")
        self._counts[str(outcome)] += count
        self._total += count

    def observe_sequence(self, outcomes: Iterable[str]) -> None:
        for o in outcomes:
            self.observe(o)

    def estimate(self) -> Categorical:
        """Maximum-likelihood Categorical (relative frequencies)."""
        if self._total == 0:
            raise DistributionError("no observations recorded yet")
        return Categorical({o: c / self._total for o, c in self._counts.items()})

    def estimate_smoothed(self, pseudocount: float = 1.0) -> Categorical:
        """Laplace-smoothed estimate; never assigns exactly zero mass."""
        if pseudocount <= 0:
            raise DistributionError("pseudocount must be positive")
        denom = self._total + pseudocount * len(self._counts)
        return Categorical({o: (c + pseudocount) / denom for o, c in self._counts.items()})

    def standard_error(self, outcome: str) -> float:
        """Standard error of the relative-frequency estimate of one outcome."""
        if self._total == 0:
            return float("inf")
        p = self._counts.get(outcome, 0) / self._total
        return math.sqrt(p * (1.0 - p) / self._total)


class BayesianCategoricalEstimator:
    """Dirichlet-conjugate estimation of a categorical distribution.

    Carries *epistemic* uncertainty explicitly as a Dirichlet posterior; the
    scalar :meth:`epistemic_uncertainty` shrinks as O(1/n), the quantitative
    content of the paper's Fig. 2 model B discussion.
    """

    def __init__(self, outcomes: Sequence[str], prior_strength: float = 1.0):
        if prior_strength <= 0:
            raise DistributionError("prior_strength must be positive")
        if not outcomes:
            raise DistributionError("at least one outcome required")
        self._posterior = Dirichlet({str(o): prior_strength for o in outcomes})
        self._n_observed = 0

    @property
    def posterior(self) -> Dirichlet:
        return self._posterior

    @property
    def n_observed(self) -> int:
        return self._n_observed

    def observe(self, outcome: str, count: int = 1) -> None:
        self._posterior = self._posterior.updated({outcome: count})
        self._n_observed += count

    def observe_counts(self, counts: Mapping[str, int]) -> None:
        self._posterior = self._posterior.updated(dict(counts))
        self._n_observed += sum(counts.values())

    def point_estimate(self) -> Categorical:
        return self._posterior.mean()

    def credible_interval(self, outcome: str, mass: float = 0.95) -> Tuple[float, float]:
        return beta_credible_interval(self._posterior.marginal(outcome), mass)

    def epistemic_uncertainty(self) -> float:
        """Scalar epistemic-uncertainty measure (expected KL proxy)."""
        return self._posterior.expected_entropy_gap()

    def predictive(self) -> Categorical:
        """Posterior predictive distribution for the next observation."""
        return self._posterior.mean()


class BayesianRateEstimator:
    """Gamma-conjugate estimation of a Poisson event rate.

    Used by the field-observation monitor: events per exposure (e.g. unknown
    objects per driven kilometre) with a credible interval that narrows with
    fleet mileage.
    """

    def __init__(self, prior_shape: float = 0.5, prior_rate: float = 1e-6):
        self._posterior = Gamma(prior_shape, prior_rate)
        self._events = 0
        self._exposure = 0.0

    @property
    def posterior(self) -> Gamma:
        return self._posterior

    @property
    def events(self) -> int:
        return self._events

    @property
    def exposure(self) -> float:
        return self._exposure

    def observe(self, event_count: int, exposure: float) -> None:
        if exposure < 0:
            raise DistributionError("exposure must be non-negative")
        self._posterior = self._posterior.updated(event_count, exposure)
        self._events += event_count
        self._exposure += exposure

    def point_estimate(self) -> float:
        return self._posterior.mean()

    def credible_interval(self, mass: float = 0.95) -> Tuple[float, float]:
        tail = (1.0 - mass) / 2.0
        lo = float(self._posterior.ppf(tail))
        hi = float(self._posterior.ppf(1.0 - tail))
        return lo, hi

    def upper_bound(self, confidence: float = 0.95) -> float:
        """One-sided upper credible bound — the release-decision quantity."""
        return float(self._posterior.ppf(confidence))


class GoodTuringEstimator:
    """Good-Turing estimation of unseen-category probability mass.

    The paper's §IV calls for *uncertainty forecasting*: "estimation of
    residual uncertainty", in particular arguing about "a sufficiently low
    ontological uncertainty" before release.  Good-Turing provides exactly
    this: from the frequency-of-frequencies of observed categories it
    estimates the total probability of categories never observed — the
    unknown-unknown mass of the operational domain.

    The implementation uses the simple Good-Turing missing-mass estimate
    ``N1 / N`` with an optional linear-smoothed (Gale & Sampson style)
    adjusted count table.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._total = 0

    @property
    def total(self) -> int:
        return self._total

    @property
    def n_species(self) -> int:
        return len(self._counts)

    def observe(self, category: str, count: int = 1) -> None:
        if count < 0:
            raise DistributionError("count must be non-negative")
        if count:
            self._counts[str(category)] += count
            self._total += count

    def observe_sequence(self, categories: Iterable[str]) -> None:
        for c in categories:
            self.observe(c)

    def frequency_of_frequencies(self) -> Dict[int, int]:
        """Map r -> number of categories observed exactly r times."""
        fof: Counter = Counter()
        for c in self._counts.values():
            fof[c] += 1
        return dict(fof)

    def missing_mass(self) -> float:
        """Good-Turing estimate of the total unseen-category probability.

        ``P0 = N1 / N`` where ``N1`` is the number of singleton categories.
        Returns 1.0 before any observation (total ignorance).
        """
        if self._total == 0:
            return 1.0
        n1 = sum(1 for c in self._counts.values() if c == 1)
        return n1 / self._total

    def missing_mass_confidence_bound(self, confidence: float = 0.95) -> float:
        """McAllester-Schapire style high-probability upper bound on the
        missing mass: ``N1/N + (2 ln(1/delta) / N)^(1/2)``."""
        if not 0.0 < confidence < 1.0:
            raise DistributionError("confidence must be in (0, 1)")
        if self._total == 0:
            return 1.0
        delta = 1.0 - confidence
        slack = math.sqrt(2.0 * math.log(1.0 / delta) / self._total)
        return min(1.0, self.missing_mass() + slack)

    def adjusted_counts(self) -> Dict[str, float]:
        """Gale-Sampson smoothed Good-Turing adjusted counts r*.

        Fits log(Z_r) ~ a + b log(r) where Z_r averages the frequency of
        frequencies over the gap to neighbouring non-zero r, then uses
        ``r* = (r+1) S(r+1)/S(r)``.
        """
        fof = self.frequency_of_frequencies()
        if not fof:
            return {}
        rs = sorted(fof)
        z: Dict[int, float] = {}
        for i, r in enumerate(rs):
            lower = rs[i - 1] if i > 0 else 0
            upper = rs[i + 1] if i + 1 < len(rs) else 2 * r - lower
            z[r] = 2.0 * fof[r] / max(upper - lower, 1)
        xs = np.log(np.array(rs, dtype=float))
        ys = np.log(np.array([z[r] for r in rs]))
        if len(rs) >= 2:
            b, a = np.polyfit(xs, ys, 1)
        else:
            a, b = math.log(z[rs[0]]), -1.0

        def smoothed(r: int) -> float:
            return math.exp(a + b * math.log(r))

        out: Dict[str, float] = {}
        for cat, r in self._counts.items():
            out[cat] = (r + 1) * smoothed(r + 1) / smoothed(r)
        return out

    def discounted_estimate(self) -> Dict[str, float]:
        """Probability estimate per seen category, leaving room for P0."""
        if self._total == 0:
            return {}
        p0 = self.missing_mass()
        adjusted = self.adjusted_counts()
        norm = sum(adjusted.values())
        if norm <= 0.0:
            return {c: (1.0 - p0) / len(self._counts) for c in self._counts}
        return {c: (1.0 - p0) * v / norm for c, v in adjusted.items()}


def kaplan_meier_survival(durations: Sequence[float],
                          observed: Sequence[bool]) -> List[Tuple[float, float]]:
    """Kaplan-Meier survival estimate for censored lifetime data.

    Supports field-observation analyses where most exposure ends without an
    event (right-censoring).  Returns (time, survival) steps.
    """
    if len(durations) != len(observed):
        raise DistributionError("durations and observed must have equal length")
    if not durations:
        raise DistributionError("at least one duration required")
    order = np.argsort(np.asarray(durations, dtype=float))
    times = np.asarray(durations, dtype=float)[order]
    events = np.asarray(observed, dtype=bool)[order]
    n_at_risk = len(times)
    survival = 1.0
    steps: List[Tuple[float, float]] = []
    i = 0
    while i < len(times):
        t = times[i]
        deaths = 0
        removed = 0
        while i < len(times) and times[i] == t:
            deaths += int(events[i])
            removed += 1
            i += 1
        if deaths and n_at_risk > 0:
            survival *= 1.0 - deaths / n_at_risk
            steps.append((float(t), float(survival)))
        n_at_risk -= removed
    return steps
