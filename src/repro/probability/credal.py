"""The Imprecise Dirichlet Model (Walley, paper ref. [23] lineage).

Bayesian estimation needs a prior; with very little data the prior choice
dominates, which is itself an epistemic-uncertainty problem.  Walley's
IDM sidesteps it: instead of one Dirichlet prior, use the *set* of all
Dirichlet priors with total concentration ``s``.  The posterior is then a
set too, and every event probability gets an interval

    P(o) in [ n_o / (n + s),  (n_o + s) / (n + s) ]

whose width s/(n+s) shrinks with data but never depends on an arbitrary
prior — the honest small-sample companion to
:class:`~repro.probability.estimation.BayesianCategoricalEstimator`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DistributionError
from repro.probability.intervals import IntervalProbability


class ImpreciseDirichletModel:
    """IDM over a fixed outcome set with hyperparameter ``s``.

    ``s`` (commonly 1 or 2) is the number of pseudo-observations the
    adversarial prior may place anywhere; larger ``s`` = more caution.
    """

    def __init__(self, outcomes: Sequence[str], s: float = 2.0):
        outcomes = [str(o) for o in outcomes]
        if len(set(outcomes)) != len(outcomes) or not outcomes:
            raise DistributionError("outcomes must be unique and non-empty")
        if s <= 0.0:
            raise DistributionError("s must be positive")
        self.s = float(s)
        self._counts: Dict[str, int] = {o: 0 for o in outcomes}
        self._n = 0

    @property
    def outcomes(self) -> List[str]:
        return list(self._counts)

    @property
    def n(self) -> int:
        return self._n

    def observe(self, outcome: str, count: int = 1) -> None:
        if outcome not in self._counts:
            raise DistributionError(
                f"outcome {outcome!r} outside the declared set — extend the "
                "model (ontological event), do not silently coerce")
        if count < 0:
            raise DistributionError("count must be non-negative")
        self._counts[outcome] += count
        self._n += count

    def observe_sequence(self, outcomes: Iterable[str]) -> None:
        for o in outcomes:
            self.observe(o)

    def probability_interval(self, outcome: str) -> IntervalProbability:
        """[lower, upper] posterior probability of one outcome."""
        if outcome not in self._counts:
            raise DistributionError(f"unknown outcome {outcome!r}")
        denom = self._n + self.s
        lower = self._counts[outcome] / denom
        upper = (self._counts[outcome] + self.s) / denom
        return IntervalProbability(lower, upper)

    def event_interval(self, event: Iterable[str]) -> IntervalProbability:
        """[lower, upper] for a set of outcomes."""
        members = set(event)
        unknown = members - set(self._counts)
        if unknown:
            raise DistributionError(f"unknown outcomes {sorted(unknown)}")
        count = sum(self._counts[o] for o in members)
        denom = self._n + self.s
        return IntervalProbability(count / denom,
                                   min(1.0, (count + self.s) / denom))

    def imprecision(self) -> float:
        """Interval width s/(n+s): prior-free epistemic uncertainty."""
        return self.s / (self._n + self.s)

    def intervals(self) -> Dict[str, IntervalProbability]:
        return {o: self.probability_interval(o) for o in self._counts}

    def decide(self, outcome_a: str, outcome_b: str) -> Optional[str]:
        """Interval dominance: which outcome is more probable, if decidable.

        Returns the dominant outcome, or None when the intervals overlap —
        the *undecided* verdict that point-valued estimation never gives,
        telling the caller to gather data instead of guessing.
        """
        ia = self.probability_interval(outcome_a)
        ib = self.probability_interval(outcome_b)
        if ia.lower > ib.upper:
            return outcome_a
        if ib.lower > ia.upper:
            return outcome_b
        return None

    def __repr__(self) -> str:
        return (f"ImpreciseDirichletModel(n={self._n}, s={self.s}, "
                f"imprecision={self.imprecision():.4g})")
