"""Parametric probability distributions implemented from scratch on numpy.

The distributions here are the quantitative carriers of *aleatory*
uncertainty in the framework: a probabilistic model (Fig. 2, model B of the
paper) represents randomness of a process by one of these objects.  The
companion estimators in :mod:`repro.probability.estimation` then carry the
*epistemic* uncertainty about the distribution parameters.

Design notes
------------
- Each distribution exposes ``pdf``/``pmf``, ``logpdf``/``logpmf``, ``cdf``,
  ``ppf`` (inverse cdf where tractable), ``sample``, ``mean``, ``var`` and,
  where closed-form, ``entropy`` (in nats).
- Sampling takes an explicit ``numpy.random.Generator``; nothing in the
  framework uses global random state, so every experiment is reproducible.
- ``ppf`` is the hook used by Latin-hypercube and low-discrepancy designs in
  :mod:`repro.probability.sampling`: a design in [0, 1)^d is pushed through
  the marginal ppf's.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DistributionError

ArrayLike = Union[float, Sequence[float], np.ndarray]

_LOG_2PI = math.log(2.0 * math.pi)

# Vectorised special functions (math.* are C implementations; numpy lacks
# erf / gammaln, and we deliberately do not depend on scipy).
_erf = np.vectorize(math.erf, otypes=[float])
_erfc = np.vectorize(math.erfc, otypes=[float])
_gammaln = np.vectorize(math.lgamma, otypes=[float])


def _as_array(x: ArrayLike) -> np.ndarray:
    return np.asarray(x, dtype=float)


def _match(x_in: ArrayLike, out: np.ndarray):
    """Return a float for scalar input, an array otherwise."""
    if np.ndim(x_in) == 0:
        return float(np.asarray(out).reshape(-1)[0])
    return np.asarray(out).reshape(np.shape(x_in))


def _validate_positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0.0:
        raise DistributionError(f"{name} must be positive, got {value!r}")
    return value


def _validate_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise DistributionError(f"{name} must be in [0, 1], got {value!r}")
    return value


def normal_cdf(x: ArrayLike, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Standard normal cdf via the error function (vectorised)."""
    z = (_as_array(x) - mean) / (std * math.sqrt(2.0))
    return _match(x, 0.5 * _erfc(-z))


def normal_ppf(q: ArrayLike, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Inverse normal cdf using the Acklam rational approximation.

    Accurate to ~1.15e-9 relative error over (0, 1), which is far below the
    Monte-Carlo noise floor of every experiment in this repository.
    """
    q_in = q
    q = _as_array(q)
    if np.any((q < 0.0) | (q > 1.0)):
        raise DistributionError("quantiles must lie in [0, 1]")
    # Coefficients of the Acklam approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    q = np.atleast_1d(q)
    result = np.empty_like(q)
    p_low = 0.02425
    low = q < p_low
    high = q > 1.0 - p_low
    mid = ~(low | high)
    # Lower tail.
    if np.any(low):
        ql = np.clip(q[low], 1e-300, None)
        r = np.sqrt(-2.0 * np.log(ql))
        result[low] = (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) / (
            (((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0)
    # Upper tail (by symmetry).
    if np.any(high):
        qh = np.clip(1.0 - q[high], 1e-300, None)
        r = np.sqrt(-2.0 * np.log(qh))
        result[high] = -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) / (
            (((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0)
    # Central region.
    if np.any(mid):
        qm = q[mid] - 0.5
        r = qm * qm
        result[mid] = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * qm / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    result[q == 0.0] = -np.inf
    result[q == 1.0] = np.inf
    return _match(q_in, mean + std * result)


def _betainc_regularized(a: float, b: float, x: np.ndarray) -> np.ndarray:
    """Regularized incomplete beta I_x(a, b) via the continued fraction.

    Implementation follows the classic Numerical Recipes ``betacf``
    formulation with the symmetry transformation for x > (a+1)/(a+b+2).
    """
    x = np.atleast_1d(np.asarray(x, dtype=float))
    out = np.empty_like(x)
    ln_beta = math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)

    def betacf(aa: float, bb: float, xx: float) -> float:
        max_iter = 300
        eps = 3e-14
        fpmin = 1e-300
        qab = aa + bb
        qap = aa + 1.0
        qam = aa - 1.0
        c = 1.0
        d = 1.0 - qab * xx / qap
        if abs(d) < fpmin:
            d = fpmin
        d = 1.0 / d
        h = d
        for m in range(1, max_iter + 1):
            m2 = 2 * m
            numerator = m * (bb - m) * xx / ((qam + m2) * (aa + m2))
            d = 1.0 + numerator * d
            if abs(d) < fpmin:
                d = fpmin
            c = 1.0 + numerator / c
            if abs(c) < fpmin:
                c = fpmin
            d = 1.0 / d
            h *= d * c
            numerator = -(aa + m) * (qab + m) * xx / ((aa + m2) * (qap + m2))
            d = 1.0 + numerator * d
            if abs(d) < fpmin:
                d = fpmin
            c = 1.0 + numerator / c
            if abs(c) < fpmin:
                c = fpmin
            d = 1.0 / d
            delta = d * c
            h *= delta
            if abs(delta - 1.0) < eps:
                break
        return h

    for i, xi in enumerate(x):
        if xi <= 0.0:
            out[i] = 0.0
        elif xi >= 1.0:
            out[i] = 1.0
        else:
            front = math.exp(a * math.log(xi) + b * math.log1p(-xi) - ln_beta)
            if xi < (a + 1.0) / (a + b + 2.0):
                out[i] = front * betacf(a, b, xi) / a
            else:
                out[i] = 1.0 - math.exp(b * math.log1p(-xi) + a * math.log(xi) - ln_beta) * betacf(
                    b, a, 1.0 - xi) / b
    return out


def _gammainc_lower_regularized(a: float, x: np.ndarray) -> np.ndarray:
    """Regularized lower incomplete gamma P(a, x) (series + continued fraction)."""
    x = np.atleast_1d(np.asarray(x, dtype=float))
    out = np.empty_like(x)
    gln = math.lgamma(a)

    def by_series(xx: float) -> float:
        term = 1.0 / a
        total = term
        ap = a
        for _ in range(500):
            ap += 1.0
            term *= xx / ap
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        return total * math.exp(-xx + a * math.log(xx) - gln)

    def by_cf(xx: float) -> float:
        fpmin = 1e-300
        b = xx + 1.0 - a
        c = 1.0 / fpmin
        d = 1.0 / b
        h = d
        for i in range(1, 500):
            an = -i * (i - a)
            b += 2.0
            d = an * d + b
            if abs(d) < fpmin:
                d = fpmin
            c = b + an / c
            if abs(c) < fpmin:
                c = fpmin
            d = 1.0 / d
            delta = d * c
            h *= delta
            if abs(delta - 1.0) < 1e-15:
                break
        return h * math.exp(-xx + a * math.log(xx) - gln)

    for i, xi in enumerate(x):
        if xi <= 0.0:
            out[i] = 0.0
        elif xi < a + 1.0:
            out[i] = by_series(xi)
        else:
            out[i] = 1.0 - by_cf(xi)
    return np.clip(out, 0.0, 1.0)


class Distribution(ABC):
    """Abstract base class of all distributions (continuous or discrete)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        """Draw samples using the supplied generator."""

    @abstractmethod
    def mean(self) -> float:
        """First moment."""

    @abstractmethod
    def var(self) -> float:
        """Second central moment."""

    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.var())

    def cdf(self, x: ArrayLike) -> np.ndarray:
        raise NotImplementedError(f"{type(self).__name__} has no cdf implementation")

    def ppf(self, q: ArrayLike) -> np.ndarray:
        """Inverse cdf; default falls back to a bisection search on ``cdf``."""
        q_in = q
        q = np.atleast_1d(_as_array(q))
        if np.any((q < 0.0) | (q > 1.0)):
            raise DistributionError("quantiles must lie in [0, 1]")
        lo, hi = self._ppf_bracket()
        out = np.empty_like(q)
        for i, qi in enumerate(q):
            a, b = lo, hi
            for _ in range(200):
                m = 0.5 * (a + b)
                if float(np.asarray(self.cdf(m)).reshape(-1)[0]) < qi:
                    a = m
                else:
                    b = m
            out[i] = 0.5 * (a + b)
        return _match(q_in, out)

    def _ppf_bracket(self) -> Tuple[float, float]:
        mu, sd = self.mean(), self.std()
        return mu - 20.0 * sd - 1.0, mu + 20.0 * sd + 1.0

    def entropy(self) -> float:
        """Differential/Shannon entropy in nats (closed form where known)."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form entropy")


class ContinuousDistribution(Distribution):
    """Base for continuous distributions (adds ``pdf``/``logpdf``)."""

    @abstractmethod
    def pdf(self, x: ArrayLike) -> np.ndarray:
        """Probability density."""

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return np.log(self.pdf(x))


class DiscreteDistribution(Distribution):
    """Base for discrete distributions (adds ``pmf``/``logpmf``/``support``)."""

    @abstractmethod
    def pmf(self, k: ArrayLike) -> np.ndarray:
        """Probability mass."""

    def logpmf(self, k: ArrayLike) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return np.log(self.pmf(k))

    def support(self) -> np.ndarray:
        raise NotImplementedError(f"{type(self).__name__} has unbounded support")


class Uniform(ContinuousDistribution):
    """Continuous uniform distribution on [low, high]."""

    def __init__(self, low: float = 0.0, high: float = 1.0):
        self.low = float(low)
        self.high = float(high)
        if not self.high > self.low:
            raise DistributionError(f"Uniform requires high > low, got [{low}, {high}]")

    def pdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        return np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = _as_array(q)
        if np.any((q < 0.0) | (q > 1.0)):
            raise DistributionError("quantiles must lie in [0, 1]")
        return self.low + q * (self.high - self.low)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def var(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def entropy(self) -> float:
        return math.log(self.high - self.low)

    def __repr__(self) -> str:
        return f"Uniform(low={self.low}, high={self.high})"


class Normal(ContinuousDistribution):
    """Gaussian distribution N(mu, sigma^2)."""

    def __init__(self, mu: float = 0.0, sigma: float = 1.0):
        self.mu = float(mu)
        self.sigma = _validate_positive("sigma", sigma)

    def pdf(self, x: ArrayLike) -> np.ndarray:
        z = (_as_array(x) - self.mu) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi))

    def logpdf(self, x: ArrayLike) -> np.ndarray:
        z = (_as_array(x) - self.mu) / self.sigma
        return -0.5 * z * z - math.log(self.sigma) - 0.5 * _LOG_2PI

    def cdf(self, x: ArrayLike) -> np.ndarray:
        return normal_cdf(x, self.mu, self.sigma)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        return normal_ppf(q, self.mu, self.sigma)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=size)

    def mean(self) -> float:
        return self.mu

    def var(self) -> float:
        return self.sigma ** 2

    def entropy(self) -> float:
        return 0.5 * (1.0 + _LOG_2PI) + math.log(self.sigma)

    def __repr__(self) -> str:
        return f"Normal(mu={self.mu}, sigma={self.sigma})"


class LogNormal(ContinuousDistribution):
    """Log-normal: exp(N(mu, sigma^2)). Used for heavy-tailed rate models."""

    def __init__(self, mu: float = 0.0, sigma: float = 1.0):
        self.mu = float(mu)
        self.sigma = _validate_positive("sigma", sigma)

    def pdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        out = np.zeros_like(np.atleast_1d(x))
        xa = np.atleast_1d(x)
        pos = xa > 0.0
        z = (np.log(xa[pos]) - self.mu) / self.sigma
        out[pos] = np.exp(-0.5 * z * z) / (xa[pos] * self.sigma * math.sqrt(2.0 * math.pi))
        return out.reshape(np.shape(x)) if np.shape(x) else float(out[0])

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        out = np.zeros_like(x)
        pos = x > 0.0
        out[pos] = normal_cdf(np.log(x[pos]), self.mu, self.sigma)
        return _match(x_in, out)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        return np.exp(normal_ppf(q, self.mu, self.sigma))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return np.exp(rng.normal(self.mu, self.sigma, size=size))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma ** 2)

    def var(self) -> float:
        s2 = self.sigma ** 2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def entropy(self) -> float:
        return self.mu + 0.5 * (1.0 + _LOG_2PI) + math.log(self.sigma)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu}, sigma={self.sigma})"


class Exponential(ContinuousDistribution):
    """Exponential distribution with rate ``lam`` (mean 1/lam)."""

    def __init__(self, lam: float = 1.0):
        self.lam = _validate_positive("lam", lam)

    def pdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        return np.where(x >= 0.0, self.lam * np.exp(-self.lam * x), 0.0)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        return np.where(x >= 0.0, 1.0 - np.exp(-self.lam * x), 0.0)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q = _as_array(q)
        if np.any((q < 0.0) | (q > 1.0)):
            raise DistributionError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return -np.log1p(-q) / self.lam

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.exponential(1.0 / self.lam, size=size)

    def mean(self) -> float:
        return 1.0 / self.lam

    def var(self) -> float:
        return 1.0 / self.lam ** 2

    def entropy(self) -> float:
        return 1.0 - math.log(self.lam)

    def __repr__(self) -> str:
        return f"Exponential(lam={self.lam})"


class Triangular(ContinuousDistribution):
    """Triangular distribution on [low, high] with mode ``mode``.

    The standard expert-elicitation distribution for epistemic parameter
    ranges ("min / most likely / max"); also the crisp counterpart of the
    triangular fuzzy numbers in :mod:`repro.probability.fuzzy`.
    """

    def __init__(self, low: float, mode: float, high: float):
        self.low, self.mode, self.high = float(low), float(mode), float(high)
        if not (self.low <= self.mode <= self.high and self.low < self.high):
            raise DistributionError(
                f"Triangular requires low <= mode <= high and low < high, got "
                f"({low}, {mode}, {high})")

    def pdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        a, c, b = self.low, self.mode, self.high
        out = np.zeros_like(np.atleast_1d(x))
        xa = np.atleast_1d(x)
        if c > a:
            left = (xa >= a) & (xa < c)
            out[left] = 2.0 * (xa[left] - a) / ((b - a) * (c - a))
        if b > c:
            right = (xa >= c) & (xa <= b)
            out[right] = 2.0 * (b - xa[right]) / ((b - a) * (b - c))
        else:
            out[xa == b] = 2.0 / (b - a)
        return out.reshape(np.shape(x)) if np.shape(x) else float(out[0])

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        a, c, b = self.low, self.mode, self.high
        out = np.zeros_like(x)
        if c > a:
            left = (x > a) & (x <= c)
            out[left] = (x[left] - a) ** 2 / ((b - a) * (c - a))
        if b > c:
            right = (x > c) & (x < b)
            out[right] = 1.0 - (b - x[right]) ** 2 / ((b - a) * (b - c))
        out[x >= b] = 1.0
        return _match(x_in, out)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q_in = q
        q = np.atleast_1d(_as_array(q))
        if np.any((q < 0.0) | (q > 1.0)):
            raise DistributionError("quantiles must lie in [0, 1]")
        a, c, b = self.low, self.mode, self.high
        fc = (c - a) / (b - a)
        out = np.empty_like(q)
        left = q <= fc
        out[left] = a + np.sqrt(q[left] * (b - a) * (c - a))
        out[~left] = b - np.sqrt((1.0 - q[~left]) * (b - a) * (b - c))
        return _match(q_in, out)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.triangular(self.low, self.mode, self.high, size=size)

    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def var(self) -> float:
        a, c, b = self.low, self.mode, self.high
        return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0

    def __repr__(self) -> str:
        return f"Triangular({self.low}, {self.mode}, {self.high})"


class Beta(ContinuousDistribution):
    """Beta(alpha, beta) on [0, 1] — the conjugate carrier of epistemic
    uncertainty about a Bernoulli probability (paper §III-B: the distribution
    parameters "become more credible with each new observation").
    """

    def __init__(self, alpha: float, beta: float):
        self.alpha = _validate_positive("alpha", alpha)
        self.beta = _validate_positive("beta", beta)

    def _log_norm(self) -> float:
        return math.lgamma(self.alpha) + math.lgamma(self.beta) - math.lgamma(
            self.alpha + self.beta)

    def pdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        out = np.zeros_like(x)
        inside = (x >= 0.0) & (x <= 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = ((self.alpha - 1.0) * np.log(x[inside])
                    + (self.beta - 1.0) * np.log1p(-x[inside]) - self._log_norm())
        out[inside] = np.exp(logp)
        return _match(x_in, np.nan_to_num(out, nan=np.inf, posinf=np.inf))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        return _match(x, _betainc_regularized(self.alpha, self.beta, _as_array(x)))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.beta(self.alpha, self.beta, size=size)

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def var(self) -> float:
        s = self.alpha + self.beta
        return self.alpha * self.beta / (s * s * (s + 1.0))

    def _ppf_bracket(self) -> Tuple[float, float]:
        return 0.0, 1.0

    def updated(self, successes: int, failures: int) -> "Beta":
        """Conjugate posterior after observing Bernoulli outcomes."""
        if successes < 0 or failures < 0:
            raise DistributionError("observation counts must be non-negative")
        return Beta(self.alpha + successes, self.beta + failures)

    def __repr__(self) -> str:
        return f"Beta(alpha={self.alpha}, beta={self.beta})"


class Gamma(ContinuousDistribution):
    """Gamma(shape k, rate lam) — conjugate prior of Poisson/exponential rates."""

    def __init__(self, shape: float, rate: float):
        self.shape = _validate_positive("shape", shape)
        self.rate = _validate_positive("rate", rate)

    def pdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        out = np.zeros_like(x)
        pos = x > 0.0
        logp = (self.shape * math.log(self.rate) - math.lgamma(self.shape)
                + (self.shape - 1.0) * np.log(x[pos]) - self.rate * x[pos])
        out[pos] = np.exp(logp)
        return _match(x_in, out)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        return _match(x_in, _gammainc_lower_regularized(
            self.shape, self.rate * np.clip(x, 0.0, None)))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    def mean(self) -> float:
        return self.shape / self.rate

    def var(self) -> float:
        return self.shape / self.rate ** 2

    def _ppf_bracket(self) -> Tuple[float, float]:
        return 0.0, self.mean() + 30.0 * self.std() + 1.0

    def updated(self, event_count: int, exposure: float) -> "Gamma":
        """Conjugate posterior after observing ``event_count`` events in
        ``exposure`` units of observation time (Poisson likelihood)."""
        if event_count < 0 or exposure < 0.0:
            raise DistributionError("counts and exposure must be non-negative")
        return Gamma(self.shape + event_count, self.rate + exposure)

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape}, rate={self.rate})"


class Bernoulli(DiscreteDistribution):
    """Bernoulli(p) on {0, 1}."""

    def __init__(self, p: float):
        self.p = _validate_probability("p", p)

    def pmf(self, k: ArrayLike) -> np.ndarray:
        k = _as_array(k)
        return np.where(k == 1, self.p, np.where(k == 0, 1.0 - self.p, 0.0))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x = _as_array(x)
        return np.where(x < 0, 0.0, np.where(x < 1, 1.0 - self.p, 1.0))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return (rng.random(size=size) < self.p).astype(int)

    def mean(self) -> float:
        return self.p

    def var(self) -> float:
        return self.p * (1.0 - self.p)

    def entropy(self) -> float:
        p = self.p
        if p in (0.0, 1.0):
            return 0.0
        return -(p * math.log(p) + (1.0 - p) * math.log(1.0 - p))

    def support(self) -> np.ndarray:
        return np.array([0, 1])

    def __repr__(self) -> str:
        return f"Bernoulli(p={self.p})"


class Binomial(DiscreteDistribution):
    """Binomial(n, p)."""

    def __init__(self, n: int, p: float):
        if n < 0 or int(n) != n:
            raise DistributionError(f"n must be a non-negative integer, got {n!r}")
        self.n = int(n)
        self.p = _validate_probability("p", p)

    def pmf(self, k: ArrayLike) -> np.ndarray:
        k_in = k
        k = np.atleast_1d(_as_array(k))
        out = np.zeros_like(k)
        valid = (k >= 0) & (k <= self.n) & (k == np.floor(k))
        kv = k[valid]
        if self.p == 0.0:
            out[valid] = (kv == 0).astype(float)
        elif self.p == 1.0:
            out[valid] = (kv == self.n).astype(float)
        else:
            log_coeff = (_gammaln(self.n + 1.0) - _gammaln(kv + 1.0)
                         - _gammaln(self.n - kv + 1.0))
            logp = (log_coeff + kv * math.log(self.p)
                    + (self.n - kv) * math.log1p(-self.p))
            out[valid] = np.exp(logp)
        return _match(k_in, out)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        ks = np.arange(self.n + 1)
        pmf = np.atleast_1d(self.pmf(ks))
        cums = np.cumsum(pmf)
        out = np.zeros_like(x)
        for i, xi in enumerate(x):
            if xi < 0:
                out[i] = 0.0
            elif xi >= self.n:
                out[i] = 1.0
            else:
                out[i] = cums[int(math.floor(xi))]
        return _match(x_in, out)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.binomial(self.n, self.p, size=size)

    def mean(self) -> float:
        return self.n * self.p

    def var(self) -> float:
        return self.n * self.p * (1.0 - self.p)

    def support(self) -> np.ndarray:
        return np.arange(self.n + 1)

    def __repr__(self) -> str:
        return f"Binomial(n={self.n}, p={self.p})"


class Poisson(DiscreteDistribution):
    """Poisson(lam) — the canonical rare-event count model (field events)."""

    def __init__(self, lam: float):
        self.lam = _validate_positive("lam", lam)

    def pmf(self, k: ArrayLike) -> np.ndarray:
        k_in = k
        k = np.atleast_1d(_as_array(k))
        out = np.zeros_like(k)
        valid = (k >= 0) & (k == np.floor(k))
        kv = k[valid]
        out[valid] = np.exp(kv * math.log(self.lam) - self.lam - _gammaln(kv + 1.0))
        return _match(k_in, out)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        out = np.zeros_like(x)
        kmax = int(max(0.0, np.max(x))) if x.size else 0
        cums = np.cumsum(np.atleast_1d(self.pmf(np.arange(kmax + 1))))
        for i, xi in enumerate(x):
            if xi < 0:
                out[i] = 0.0
            else:
                out[i] = cums[min(int(math.floor(xi)), kmax)]
        return _match(x_in, out)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.poisson(self.lam, size=size)

    def mean(self) -> float:
        return self.lam

    def var(self) -> float:
        return self.lam

    def __repr__(self) -> str:
        return f"Poisson(lam={self.lam})"


class Categorical(DiscreteDistribution):
    """Categorical distribution over named outcomes.

    This is the workhorse of the Bayesian-network engine: every node state
    distribution, including the ground-truth prior (0.6 car / 0.3 pedestrian
    / 0.1 unknown) of the paper's Fig. 4 example, is a ``Categorical``.
    """

    def __init__(self, probabilities: Dict[str, float], *, atol: float = 1e-9):
        if not probabilities:
            raise DistributionError("Categorical requires at least one outcome")
        probs = {str(k): float(v) for k, v in probabilities.items()}
        for name, p in probs.items():
            if p < -atol:
                raise DistributionError(f"probability of {name!r} is negative: {p}")
        total = sum(probs.values())
        if abs(total - 1.0) > max(atol, 1e-6):
            raise DistributionError(f"probabilities must sum to 1, got {total}")
        self._outcomes: List[str] = list(probs)
        self._probs = np.clip(np.array([probs[o] for o in self._outcomes]), 0.0, 1.0)
        self._probs = self._probs / self._probs.sum()

    @classmethod
    def uniform(cls, outcomes: Sequence[str]) -> "Categorical":
        n = len(outcomes)
        if n == 0:
            raise DistributionError("need at least one outcome")
        return cls({o: 1.0 / n for o in outcomes})

    @property
    def outcomes(self) -> List[str]:
        return list(self._outcomes)

    @property
    def probabilities(self) -> Dict[str, float]:
        return {o: float(p) for o, p in zip(self._outcomes, self._probs)}

    def prob(self, outcome: str) -> float:
        try:
            return float(self._probs[self._outcomes.index(outcome)])
        except ValueError:
            return 0.0

    def pmf(self, k: ArrayLike) -> np.ndarray:
        # Indices into the outcome list.
        k = np.atleast_1d(np.asarray(k, dtype=int))
        out = np.zeros(k.shape, dtype=float)
        valid = (k >= 0) & (k < len(self._outcomes))
        out[valid] = self._probs[k[valid]]
        return out

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        idx = rng.choice(len(self._outcomes), size=size, p=self._probs)
        return idx

    def sample_outcomes(self, rng: np.random.Generator, size: int) -> List[str]:
        """Draw outcome *names* rather than indices."""
        idx = np.atleast_1d(self.sample(rng, size=size))
        return [self._outcomes[i] for i in idx]

    def mean(self) -> float:
        return float(np.dot(np.arange(len(self._probs)), self._probs))

    def var(self) -> float:
        idx = np.arange(len(self._probs))
        m = self.mean()
        return float(np.dot((idx - m) ** 2, self._probs))

    def entropy(self) -> float:
        p = self._probs[self._probs > 0.0]
        return float(-np.sum(p * np.log(p)))

    def support(self) -> np.ndarray:
        return np.arange(len(self._outcomes))

    def __repr__(self) -> str:
        inner = ", ".join(f"{o}: {p:.4g}" for o, p in self.probabilities.items())
        return f"Categorical({{{inner}}})"


class Dirichlet:
    """Dirichlet distribution over the probability simplex.

    The conjugate carrier of *epistemic* uncertainty about a Categorical: as
    the paper's §III-B puts it, "with each new observation, our distribution
    parameters become more credible" — here by incrementing the concentration
    vector with observed counts.
    """

    def __init__(self, concentration: Dict[str, float]):
        if not concentration:
            raise DistributionError("Dirichlet requires at least one outcome")
        self._outcomes = [str(k) for k in concentration]
        self._alpha = np.array([float(concentration[k]) for k in concentration])
        if np.any(self._alpha <= 0.0):
            raise DistributionError("all concentration parameters must be positive")

    @property
    def outcomes(self) -> List[str]:
        return list(self._outcomes)

    @property
    def concentration(self) -> Dict[str, float]:
        return {o: float(a) for o, a in zip(self._outcomes, self._alpha)}

    def mean(self) -> Categorical:
        probs = self._alpha / self._alpha.sum()
        return Categorical(dict(zip(self._outcomes, probs)))

    def marginal(self, outcome: str) -> Beta:
        """The marginal of one component is Beta(alpha_i, alpha_0 - alpha_i)."""
        if outcome not in self._outcomes:
            raise DistributionError(f"unknown outcome {outcome!r}")
        i = self._outcomes.index(outcome)
        a0 = float(self._alpha.sum())
        return Beta(float(self._alpha[i]), a0 - float(self._alpha[i]))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.dirichlet(self._alpha, size=size)

    def sample_categorical(self, rng: np.random.Generator) -> Categorical:
        probs = rng.dirichlet(self._alpha)
        return Categorical(dict(zip(self._outcomes, probs)))

    def updated(self, counts: Dict[str, int]) -> "Dirichlet":
        """Conjugate posterior after multinomial observations."""
        alpha = self.concentration
        for outcome, count in counts.items():
            if outcome not in alpha:
                raise DistributionError(
                    f"observed outcome {outcome!r} outside the model ontology "
                    f"{self._outcomes} — this is an ontological, not epistemic, event")
            if count < 0:
                raise DistributionError("counts must be non-negative")
            alpha[outcome] += count
        return Dirichlet(alpha)

    def expected_entropy_gap(self) -> float:
        """Mean KL divergence from the mean Categorical to a Dirichlet draw.

        A closed-form epistemic-uncertainty scalar:
        ``E[KL(mean || theta)]`` has no closed form, but the variance-based
        proxy ``sum_i Var[theta_i] / (2 mean_i)`` (second-order Taylor of KL)
        does, and shrinks as O(1/alpha_0) — the paper's "credibility grows
        with every observation".
        """
        a0 = float(self._alpha.sum())
        means = self._alpha / a0
        variances = self._alpha * (a0 - self._alpha) / (a0 * a0 * (a0 + 1.0))
        return float(np.sum(variances / (2.0 * np.clip(means, 1e-12, None))))

    def __repr__(self) -> str:
        inner = ", ".join(f"{o}: {a:.4g}" for o, a in self.concentration.items())
        return f"Dirichlet({{{inner}}})"


class Mixture(ContinuousDistribution):
    """Finite mixture of continuous distributions."""

    def __init__(self, components: Sequence[ContinuousDistribution],
                 weights: Sequence[float]):
        if len(components) != len(weights) or not components:
            raise DistributionError("components and weights must be non-empty and equal length")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0.0) or abs(w.sum() - 1.0) > 1e-9:
            raise DistributionError("weights must be non-negative and sum to 1")
        self.components = list(components)
        self.weights = w / w.sum()

    def pdf(self, x: ArrayLike) -> np.ndarray:
        return sum(w * c.pdf(x) for w, c in zip(self.weights, self.components))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        return sum(w * c.cdf(x) for w, c in zip(self.weights, self.components))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        n = 1 if size is None else int(size)
        which = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n)
        for i, c in enumerate(self.components):
            mask = which == i
            if np.any(mask):
                out[mask] = np.atleast_1d(c.sample(rng, size=int(mask.sum())))
        return float(out[0]) if size is None else out

    def mean(self) -> float:
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def var(self) -> float:
        m = self.mean()
        second = sum(w * (c.var() + c.mean() ** 2)
                     for w, c in zip(self.weights, self.components))
        return float(second - m * m)

    def _ppf_bracket(self) -> Tuple[float, float]:
        los, his = zip(*(c._ppf_bracket() for c in self.components))
        return min(los), max(his)

    def __repr__(self) -> str:
        return f"Mixture({len(self.components)} components)"


class Empirical(ContinuousDistribution):
    """Empirical distribution of observed samples (the frequentist model B).

    This is the formal-system side of the paper's probabilistic modeling
    relation: repeated observation of the physical system yields an empirical
    distribution from which probabilistic inferences are drawn.
    """

    def __init__(self, samples: ArrayLike):
        data = np.sort(np.asarray(samples, dtype=float).ravel())
        if data.size == 0:
            raise DistributionError("Empirical requires at least one sample")
        self._data = data

    @property
    def n(self) -> int:
        return int(self._data.size)

    @property
    def data(self) -> np.ndarray:
        return self._data.copy()

    def pdf(self, x: ArrayLike) -> np.ndarray:
        """Gaussian kernel density estimate with Silverman's bandwidth."""
        x_in = x
        x = np.atleast_1d(_as_array(x))
        sd = float(np.std(self._data))
        iqr = float(np.subtract(*np.percentile(self._data, [75, 25])))
        scale = min(sd, iqr / 1.349) if iqr > 0 else sd
        h = 0.9 * (scale if scale > 0 else 1.0) * self.n ** (-0.2)
        h = max(h, 1e-12)
        z = (x[:, None] - self._data[None, :]) / h
        dens = np.exp(-0.5 * z * z).sum(axis=1) / (self.n * h * math.sqrt(2 * math.pi))
        return _match(x_in, dens)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        x_in = x
        x = np.atleast_1d(_as_array(x))
        return _match(x_in, np.searchsorted(self._data, x, side="right") / self.n)

    def ppf(self, q: ArrayLike) -> np.ndarray:
        q_in = q
        q = np.atleast_1d(_as_array(q))
        if np.any((q < 0.0) | (q > 1.0)):
            raise DistributionError("quantiles must lie in [0, 1]")
        idx = np.clip(np.ceil(q * self.n).astype(int) - 1, 0, self.n - 1)
        return _match(q_in, self._data[idx])

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        return rng.choice(self._data, size=size, replace=True)

    def mean(self) -> float:
        return float(np.mean(self._data))

    def var(self) -> float:
        return float(np.var(self._data))

    def __repr__(self) -> str:
        return f"Empirical(n={self.n})"
