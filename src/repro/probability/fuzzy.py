"""Fuzzy numbers with alpha-cut interval arithmetic.

Substrate for the fuzzy-probability fault tree analysis of Tanaka et al.
(paper §V-A, ref. [34]): basic-event probabilities elicited as fuzzy
numbers propagate through AND/OR gates by alpha-cut interval arithmetic,
yielding a fuzzy top-event probability whose spread encodes epistemic
uncertainty of the analysts.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import DistributionError


class FuzzyNumber:
    """A fuzzy number represented by its alpha-cut intervals.

    The representation stores, for each alpha level in a fixed ladder,
    the interval ``[lo(alpha), hi(alpha)]`` of values whose membership is at
    least alpha.  All arithmetic is performed levelwise with interval rules,
    which is exact for monotone operations.
    """

    DEFAULT_LEVELS = 21

    def __init__(self, alphas: Sequence[float], lowers: Sequence[float],
                 uppers: Sequence[float]):
        self.alphas = np.asarray(alphas, dtype=float)
        self.lowers = np.asarray(lowers, dtype=float)
        self.uppers = np.asarray(uppers, dtype=float)
        if not (self.alphas.shape == self.lowers.shape == self.uppers.shape):
            raise DistributionError("alphas, lowers, uppers must share a shape")
        if self.alphas.size < 2:
            raise DistributionError("need at least two alpha levels")
        if np.any(np.diff(self.alphas) <= 0):
            raise DistributionError("alpha levels must be strictly increasing")
        if not (math.isclose(self.alphas[0], 0.0) and math.isclose(self.alphas[-1], 1.0)):
            raise DistributionError("alpha ladder must span [0, 1]")
        if np.any(self.lowers > self.uppers + 1e-12):
            raise DistributionError("lower cut bound exceeds upper bound")
        # Nestedness: higher alpha-cuts must be contained in lower ones.
        if np.any(np.diff(self.lowers) < -1e-9) or np.any(np.diff(self.uppers) > 1e-9):
            raise DistributionError("alpha-cuts must be nested")

    @classmethod
    def crisp(cls, value: float, levels: int = DEFAULT_LEVELS) -> "FuzzyNumber":
        alphas = np.linspace(0.0, 1.0, levels)
        vals = np.full(levels, float(value))
        return cls(alphas, vals, vals)

    @classmethod
    def from_membership(cls, lo_of_alpha: Callable[[float], float],
                        hi_of_alpha: Callable[[float], float],
                        levels: int = DEFAULT_LEVELS) -> "FuzzyNumber":
        alphas = np.linspace(0.0, 1.0, levels)
        return cls(alphas, [lo_of_alpha(a) for a in alphas],
                   [hi_of_alpha(a) for a in alphas])

    def cut(self, alpha: float) -> Tuple[float, float]:
        """Alpha-cut interval at the requested level (interpolated)."""
        if not 0.0 <= alpha <= 1.0:
            raise DistributionError("alpha must be in [0, 1]")
        lo = float(np.interp(alpha, self.alphas, self.lowers))
        hi = float(np.interp(alpha, self.alphas, self.uppers))
        return lo, hi

    @property
    def support(self) -> Tuple[float, float]:
        return float(self.lowers[0]), float(self.uppers[0])

    @property
    def core(self) -> Tuple[float, float]:
        return float(self.lowers[-1]), float(self.uppers[-1])

    def membership(self, x: float) -> float:
        """Membership degree of a crisp value (max alpha whose cut contains x)."""
        inside = (self.lowers <= x + 1e-15) & (x <= self.uppers + 1e-15)
        if not np.any(inside):
            return 0.0
        return float(self.alphas[inside].max())

    def defuzzify_centroid(self) -> float:
        """Centroid defuzzification via the mean of cut midpoints weighted
        by level spacing (equivalent to the center-of-gravity for the
        piecewise-linear membership this class represents)."""
        mids = 0.5 * (self.lowers + self.uppers)
        return float(np.trapezoid(mids, self.alphas) / np.trapezoid(np.ones_like(self.alphas),
                                                            self.alphas))

    def defuzzify_middle_of_max(self) -> float:
        lo, hi = self.core
        return 0.5 * (lo + hi)

    def spread(self) -> float:
        """Mean cut width — a scalar epistemic-imprecision measure."""
        return float(np.trapezoid(self.uppers - self.lowers, self.alphas))

    def _binary(self, other: "FuzzyNumber",
                op: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
                             Tuple[np.ndarray, np.ndarray]]) -> "FuzzyNumber":
        if not isinstance(other, FuzzyNumber):
            other = FuzzyNumber.crisp(float(other), levels=len(self.alphas))
        if len(other.alphas) != len(self.alphas):
            # Resample onto this ladder.
            lo = np.interp(self.alphas, other.alphas, other.lowers)
            hi = np.interp(self.alphas, other.alphas, other.uppers)
            other = FuzzyNumber(self.alphas, lo, hi)
        lo, hi = op(self.lowers, self.uppers, other.lowers, other.uppers)
        return FuzzyNumber(self.alphas, lo, hi)

    def __add__(self, other) -> "FuzzyNumber":
        return self._binary(other, lambda al, au, bl, bu: (al + bl, au + bu))

    def __radd__(self, other) -> "FuzzyNumber":
        return self.__add__(other)

    def __sub__(self, other) -> "FuzzyNumber":
        return self._binary(other, lambda al, au, bl, bu: (al - bu, au - bl))

    def __mul__(self, other) -> "FuzzyNumber":
        def rule(al, au, bl, bu):
            candidates = np.stack([al * bl, al * bu, au * bl, au * bu])
            return candidates.min(axis=0), candidates.max(axis=0)
        return self._binary(other, rule)

    def __rmul__(self, other) -> "FuzzyNumber":
        return self.__mul__(other)

    def complement_probability(self) -> "FuzzyNumber":
        """1 - p with interval reversal (for OR-gate de Morgan forms)."""
        return FuzzyNumber(self.alphas, 1.0 - self.uppers, 1.0 - self.lowers)

    def clip_probability(self) -> "FuzzyNumber":
        """Clip cuts into [0, 1] (after arithmetic on probabilities)."""
        return FuzzyNumber(self.alphas, np.clip(self.lowers, 0.0, 1.0),
                           np.clip(self.uppers, 0.0, 1.0))

    def __repr__(self) -> str:
        s_lo, s_hi = self.support
        c_lo, c_hi = self.core
        return (f"FuzzyNumber(support=[{s_lo:.4g},{s_hi:.4g}], "
                f"core=[{c_lo:.4g},{c_hi:.4g}])")


class TriangularFuzzyNumber(FuzzyNumber):
    """Triangular fuzzy number (a, m, b): support [a, b], core {m}."""

    def __init__(self, low: float, mode: float, high: float,
                 levels: int = FuzzyNumber.DEFAULT_LEVELS):
        low, mode, high = float(low), float(mode), float(high)
        if not low <= mode <= high:
            raise DistributionError(
                f"require low <= mode <= high, got ({low}, {mode}, {high})")
        alphas = np.linspace(0.0, 1.0, levels)
        lowers = low + alphas * (mode - low)
        uppers = high - alphas * (high - mode)
        super().__init__(alphas, lowers, uppers)
        self.low, self.mode, self.high = low, mode, high

    def __repr__(self) -> str:
        return f"TriangularFuzzyNumber({self.low}, {self.mode}, {self.high})"


class TrapezoidalFuzzyNumber(FuzzyNumber):
    """Trapezoidal fuzzy number (a, b, c, d): support [a, d], core [b, c]."""

    def __init__(self, a: float, b: float, c: float, d: float,
                 levels: int = FuzzyNumber.DEFAULT_LEVELS):
        a, b, c, d = float(a), float(b), float(c), float(d)
        if not a <= b <= c <= d:
            raise DistributionError(f"require a <= b <= c <= d, got ({a},{b},{c},{d})")
        alphas = np.linspace(0.0, 1.0, levels)
        lowers = a + alphas * (b - a)
        uppers = d - alphas * (d - c)
        super().__init__(alphas, lowers, uppers)
        self.a, self.b, self.c, self.d = a, b, c, d

    def __repr__(self) -> str:
        return f"TrapezoidalFuzzyNumber({self.a}, {self.b}, {self.c}, {self.d})"


def fuzzy_and(probabilities: Sequence[FuzzyNumber]) -> FuzzyNumber:
    """Fuzzy AND-gate probability: product of independent fuzzy probabilities."""
    if not probabilities:
        raise DistributionError("fuzzy_and requires at least one operand")
    out = probabilities[0]
    for p in probabilities[1:]:
        out = (out * p)
    return out.clip_probability()


def fuzzy_or(probabilities: Sequence[FuzzyNumber]) -> FuzzyNumber:
    """Fuzzy OR-gate probability: 1 - prod(1 - p_i), by de Morgan."""
    if not probabilities:
        raise DistributionError("fuzzy_or requires at least one operand")
    comp = probabilities[0].complement_probability()
    for p in probabilities[1:]:
        comp = comp * p.complement_probability()
    return comp.clip_probability().complement_probability().clip_probability()
