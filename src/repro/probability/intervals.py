"""Imprecise probabilities: interval probabilities and p-boxes.

When epistemic uncertainty about a probability cannot be summarized by a
single prior, imprecise-probability structures carry lower/upper bounds
instead.  They connect directly to evidence theory
(:mod:`repro.evidence`): a belief/plausibility pair *is* an interval
probability, and the evidential safety analysis of the paper's §V reports
exactly such intervals.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DistributionError
from repro.probability.distributions import Distribution


class IntervalProbability:
    """A probability known only to lie within [lower, upper].

    Supports the Frechet bounds for conjunction/disjunction of events with
    unknown dependence, and the independence rules as tighter alternatives.
    These are the arithmetic used by interval-valued fault trees.
    """

    def __init__(self, lower: float, upper: float):
        lower, upper = float(lower), float(upper)
        if not 0.0 <= lower <= upper <= 1.0:
            raise DistributionError(
                f"require 0 <= lower <= upper <= 1, got [{lower}, {upper}]")
        self.lower = lower
        self.upper = upper

    @classmethod
    def precise(cls, p: float) -> "IntervalProbability":
        return cls(p, p)

    @classmethod
    def vacuous(cls) -> "IntervalProbability":
        """Total ignorance: [0, 1]."""
        return cls(0.0, 1.0)

    @property
    def width(self) -> float:
        """Imprecision — the epistemic content of the interval."""
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    def is_precise(self, atol: float = 1e-12) -> bool:
        return self.width <= atol

    def complement(self) -> "IntervalProbability":
        return IntervalProbability(1.0 - self.upper, 1.0 - self.lower)

    def and_independent(self, other: "IntervalProbability") -> "IntervalProbability":
        return IntervalProbability(self.lower * other.lower, self.upper * other.upper)

    def or_independent(self, other: "IntervalProbability") -> "IntervalProbability":
        lo = self.lower + other.lower - self.lower * other.lower
        hi = self.upper + other.upper - self.upper * other.upper
        return IntervalProbability(lo, hi)

    def and_frechet(self, other: "IntervalProbability") -> "IntervalProbability":
        """Conjunction bounds with *unknown dependence* (Frechet-Hoeffding)."""
        lo = max(0.0, self.lower + other.lower - 1.0)
        hi = min(self.upper, other.upper)
        return IntervalProbability(lo, hi)

    def or_frechet(self, other: "IntervalProbability") -> "IntervalProbability":
        lo = max(self.lower, other.lower)
        hi = min(1.0, self.upper + other.upper)
        return IntervalProbability(lo, hi)

    def intersect(self, other: "IntervalProbability") -> "IntervalProbability":
        """Combine two interval constraints on the *same* probability."""
        lo, hi = max(self.lower, other.lower), min(self.upper, other.upper)
        if lo > hi:
            raise DistributionError(
                f"inconsistent interval constraints [{self.lower},{self.upper}] "
                f"and [{other.lower},{other.upper}]")
        return IntervalProbability(lo, hi)

    def hull(self, other: "IntervalProbability") -> "IntervalProbability":
        return IntervalProbability(min(self.lower, other.lower),
                                   max(self.upper, other.upper))

    def contains(self, p: float) -> bool:
        return self.lower - 1e-12 <= p <= self.upper + 1e-12

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalProbability):
            return NotImplemented
        return math.isclose(self.lower, other.lower) and math.isclose(self.upper, other.upper)

    def __hash__(self) -> int:
        return hash((round(self.lower, 15), round(self.upper, 15)))

    def __repr__(self) -> str:
        return f"IntervalProbability([{self.lower:.6g}, {self.upper:.6g}])"


class PBox:
    """A probability box: lower and upper cdf envelopes on a common grid.

    A p-box generalizes interval probability to whole distributions; it is
    the imprecise counterpart of a cdf and the natural output of
    propagating interval parameters through a model.
    """

    def __init__(self, grid: Sequence[float], lower_cdf: Sequence[float],
                 upper_cdf: Sequence[float]):
        self.grid = np.asarray(grid, dtype=float)
        self.lower_cdf = np.asarray(lower_cdf, dtype=float)
        self.upper_cdf = np.asarray(upper_cdf, dtype=float)
        if not (self.grid.shape == self.lower_cdf.shape == self.upper_cdf.shape):
            raise DistributionError("grid and cdf envelopes must have the same shape")
        if self.grid.size < 2:
            raise DistributionError("p-box grid needs at least 2 points")
        if np.any(np.diff(self.grid) <= 0):
            raise DistributionError("grid must be strictly increasing")
        for name, cdf in (("lower", self.lower_cdf), ("upper", self.upper_cdf)):
            if np.any(np.diff(cdf) < -1e-12):
                raise DistributionError(f"{name} cdf envelope must be non-decreasing")
            if np.any((cdf < -1e-12) | (cdf > 1.0 + 1e-12)):
                raise DistributionError(f"{name} cdf envelope must lie in [0, 1]")
        if np.any(self.lower_cdf > self.upper_cdf + 1e-12):
            raise DistributionError("lower cdf envelope must not exceed upper envelope")

    @classmethod
    def from_distribution(cls, dist: Distribution, grid: Sequence[float]) -> "PBox":
        """Degenerate p-box of a precise distribution."""
        grid = np.asarray(grid, dtype=float)
        cdf = np.atleast_1d(dist.cdf(grid))
        return cls(grid, cdf, cdf)

    @classmethod
    def from_interval_parameter(cls, family: Callable[[float], Distribution],
                                lower_param: float, upper_param: float,
                                grid: Sequence[float], n_steps: int = 32) -> "PBox":
        """Envelope of a parametric family over an interval parameter."""
        grid = np.asarray(grid, dtype=float)
        params = np.linspace(lower_param, upper_param, n_steps)
        cdfs = np.vstack([np.atleast_1d(family(p).cdf(grid)) for p in params])
        return cls(grid, cdfs.min(axis=0), cdfs.max(axis=0))

    def cdf_interval(self, x: float) -> IntervalProbability:
        lo = float(np.interp(x, self.grid, self.lower_cdf, left=0.0, right=self.lower_cdf[-1]))
        hi = float(np.interp(x, self.grid, self.upper_cdf, left=self.upper_cdf[0], right=1.0))
        return IntervalProbability(min(lo, hi), max(lo, hi))

    def exceedance_interval(self, threshold: float) -> IntervalProbability:
        """Bounds on P(X > threshold)."""
        return self.cdf_interval(threshold).complement()

    def mean_interval(self) -> Tuple[float, float]:
        """Bounds on the mean via the cdf envelopes (trapezoidal on the grid).

        E[X] bounds follow from E[X] = x_max - integral of cdf (on the grid
        range); the upper cdf gives the lower mean bound and vice versa.
        """
        a, b = self.grid[0], self.grid[-1]
        int_upper = float(np.trapezoid(self.upper_cdf, self.grid))
        int_lower = float(np.trapezoid(self.lower_cdf, self.grid))
        mean_lo = a + (b - a) - int_upper
        mean_hi = a + (b - a) - int_lower
        return mean_lo + 0.0, mean_hi + 0.0

    def width(self) -> float:
        """Mean vertical gap between the envelopes — imprecision measure."""
        return float(np.trapezoid(self.upper_cdf - self.lower_cdf, self.grid) /
                     (self.grid[-1] - self.grid[0]))

    def envelope(self, other: "PBox") -> "PBox":
        """Pointwise hull of two p-boxes on the union grid."""
        grid = np.union1d(self.grid, other.grid)
        lo = np.minimum(np.interp(grid, self.grid, self.lower_cdf),
                        np.interp(grid, other.grid, other.lower_cdf))
        hi = np.maximum(np.interp(grid, self.grid, self.upper_cdf),
                        np.interp(grid, other.grid, other.upper_cdf))
        return PBox(grid, lo, hi)

    def __repr__(self) -> str:
        return (f"PBox(grid=[{self.grid[0]:.4g}..{self.grid[-1]:.4g}] "
                f"n={self.grid.size}, width={self.width():.4g})")
