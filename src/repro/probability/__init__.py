"""Probability substrate: distributions, sampling, estimation, imprecision.

This package provides the probabilistic machinery every other subsystem
builds on:

- :mod:`repro.probability.distributions` — parametric distributions with
  pdf/cdf/ppf/sampling/entropy implemented from scratch on numpy.
- :mod:`repro.probability.sampling` — Monte Carlo, Latin hypercube and
  low-discrepancy (Halton, Sobol-like) designs.
- :mod:`repro.probability.estimation` — frequentist and Bayesian estimators,
  credible intervals, and the Good-Turing unseen-mass estimator used for
  ontological-uncertainty forecasting.
- :mod:`repro.probability.intervals` — interval probabilities and p-boxes
  (imprecise probability; epistemic uncertainty about probabilities).
- :mod:`repro.probability.fuzzy` — fuzzy numbers with alpha-cut arithmetic,
  the substrate for fuzzy fault tree analysis (Tanaka et al.).
"""

from repro.probability.distributions import (
    Bernoulli,
    Beta,
    Binomial,
    Categorical,
    Dirichlet,
    Distribution,
    DiscreteDistribution,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    Mixture,
    Normal,
    Poisson,
    Triangular,
    Uniform,
)
from repro.probability.estimation import (
    BayesianCategoricalEstimator,
    BayesianRateEstimator,
    FrequentistEstimator,
    GoodTuringEstimator,
    beta_credible_interval,
    wilson_interval,
)
from repro.probability.credal import ImpreciseDirichletModel
from repro.probability.fuzzy import FuzzyNumber, TrapezoidalFuzzyNumber, TriangularFuzzyNumber
from repro.probability.intervals import IntervalProbability, PBox
from repro.probability.sensitivity import SobolResult, sobol_indices
from repro.probability.sampling import (
    halton_sequence,
    latin_hypercube,
    monte_carlo,
    van_der_corput,
)

__all__ = [
    "Bernoulli",
    "Beta",
    "Binomial",
    "Categorical",
    "Dirichlet",
    "Distribution",
    "DiscreteDistribution",
    "Empirical",
    "Exponential",
    "Gamma",
    "LogNormal",
    "Mixture",
    "Normal",
    "Poisson",
    "Triangular",
    "Uniform",
    "BayesianCategoricalEstimator",
    "BayesianRateEstimator",
    "FrequentistEstimator",
    "GoodTuringEstimator",
    "beta_credible_interval",
    "wilson_interval",
    "FuzzyNumber",
    "TrapezoidalFuzzyNumber",
    "TriangularFuzzyNumber",
    "IntervalProbability",
    "PBox",
    "ImpreciseDirichletModel",
    "SobolResult",
    "sobol_indices",
    "halton_sequence",
    "latin_hypercube",
    "monte_carlo",
    "van_der_corput",
]
