"""Sampling designs: Monte Carlo, Latin hypercube and low-discrepancy sets.

These designs are the workhorses of *uncertainty removal at design time by
design of experiment* (paper §IV): exploring a parameter space efficiently
reduces epistemic uncertainty per simulation spent.  All designs produce
points in the unit hypercube which are pushed through marginal ``ppf``'s to
obtain samples of arbitrary distributions.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import DistributionError
from repro.probability.distributions import Distribution


def monte_carlo(rng: np.random.Generator, n: int, dim: int) -> np.ndarray:
    """Plain i.i.d. uniform design of shape (n, dim)."""
    if n <= 0 or dim <= 0:
        raise DistributionError("n and dim must be positive")
    return rng.random((n, dim))


def latin_hypercube(rng: np.random.Generator, n: int, dim: int) -> np.ndarray:
    """Latin hypercube design: one point per axis-stratum in every dimension.

    Stratifies each marginal into ``n`` equiprobable bins, guaranteeing
    coverage of the full range of every input with only ``n`` samples —
    variance reduction over plain Monte Carlo for well-behaved integrands.
    """
    if n <= 0 or dim <= 0:
        raise DistributionError("n and dim must be positive")
    cut = (np.arange(n)[:, None] + rng.random((n, dim))) / n
    design = np.empty_like(cut)
    for j in range(dim):
        design[:, j] = cut[rng.permutation(n), j]
    return design


def van_der_corput(n: int, base: int = 2, start: int = 0) -> np.ndarray:
    """Van der Corput low-discrepancy sequence in the given base."""
    if base < 2:
        raise DistributionError("base must be >= 2")
    if n <= 0:
        raise DistributionError("n must be positive")
    out = np.empty(n)
    for i in range(n):
        k = start + i + 1  # skip 0 to avoid the origin
        value, denom = 0.0, 1.0
        while k > 0:
            k, digit = divmod(k, base)
            denom *= base
            value += digit / denom
        out[i] = value
    return out


_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
           61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113]


def halton_sequence(n: int, dim: int, start: int = 0) -> np.ndarray:
    """Halton low-discrepancy set of shape (n, dim) (prime bases per axis)."""
    if dim > len(_PRIMES):
        raise DistributionError(f"halton supports at most {len(_PRIMES)} dimensions")
    if n <= 0 or dim <= 0:
        raise DistributionError("n and dim must be positive")
    return np.column_stack([van_der_corput(n, _PRIMES[j], start=start) for j in range(dim)])


def push_through(design: np.ndarray,
                 marginals: Sequence[Distribution]) -> np.ndarray:
    """Transform a unit-cube design into samples of the given marginals."""
    design = np.asarray(design, dtype=float)
    if design.ndim != 2:
        raise DistributionError("design must be 2-d (n, dim)")
    if design.shape[1] != len(marginals):
        raise DistributionError(
            f"design has {design.shape[1]} columns but {len(marginals)} marginals given")
    cols = [np.atleast_1d(m.ppf(design[:, j])) for j, m in enumerate(marginals)]
    return np.column_stack(cols)


def stratified_rates(n_strata: int) -> np.ndarray:
    """Midpoints of ``n_strata`` equiprobable strata of [0, 1]."""
    if n_strata <= 0:
        raise DistributionError("n_strata must be positive")
    return (np.arange(n_strata) + 0.5) / n_strata


def discrepancy_l2_star(design: np.ndarray) -> float:
    """Centered L2-star discrepancy (lower = more uniform design).

    Implements the Warnock formula.  Used in tests/benches to verify the
    low-discrepancy sequences beat i.i.d. sampling in uniformity.
    """
    x = np.asarray(design, dtype=float)
    if x.ndim != 2:
        raise DistributionError("design must be 2-d")
    n, d = x.shape
    term1 = 3.0 ** (-d)
    prod2 = np.prod((1.0 - x ** 2) / 2.0, axis=1)
    term2 = prod2.sum() * (2.0 / n)
    # Pairwise term: prod_j (1 - max(x_ij, x_kj))
    maxes = np.maximum(x[:, None, :], x[None, :, :])
    prod3 = np.prod(1.0 - maxes, axis=2)
    term3 = prod3.sum() / (n * n)
    value = term1 - term2 + term3
    return math.sqrt(max(value, 0.0))


class ExperimentDesign:
    """A named design-of-experiments over distribution marginals.

    Part of the *uncertainty removal during design time* toolbox (paper
    §IV): given uncertain inputs, produce an efficient sampling plan and run
    a model over it.
    """

    METHODS = ("monte_carlo", "latin_hypercube", "halton")

    def __init__(self, marginals: Sequence[Distribution],
                 method: str = "latin_hypercube"):
        if method not in self.METHODS:
            raise DistributionError(f"unknown design method {method!r}; "
                                    f"choose from {self.METHODS}")
        if not marginals:
            raise DistributionError("at least one marginal required")
        self.marginals = list(marginals)
        self.method = method

    @property
    def dim(self) -> int:
        return len(self.marginals)

    def unit_design(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        if self.method == "monte_carlo":
            if rng is None:
                raise DistributionError("monte_carlo design requires an rng")
            return monte_carlo(rng, n, self.dim)
        if self.method == "latin_hypercube":
            if rng is None:
                raise DistributionError("latin_hypercube design requires an rng")
            return latin_hypercube(rng, n, self.dim)
        return halton_sequence(n, self.dim)

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Generate ``n`` joint samples of the marginals, shape (n, dim)."""
        return push_through(self.unit_design(n, rng), self.marginals)

    def evaluate(self, model, n: int,
                 rng: Optional[np.random.Generator] = None) -> "DesignResult":
        """Run ``model(row) -> float`` over the design and summarize."""
        points = self.sample(n, rng)
        values = np.array([float(model(row)) for row in points])
        return DesignResult(points=points, values=values)


class DesignResult:
    """Outcome of an :class:`ExperimentDesign` evaluation."""

    def __init__(self, points: np.ndarray, values: np.ndarray):
        self.points = points
        self.values = values

    @property
    def n(self) -> int:
        return int(self.values.size)

    def mean(self) -> float:
        return float(np.mean(self.values))

    def var(self) -> float:
        return float(np.var(self.values, ddof=1)) if self.n > 1 else 0.0

    def std_error(self) -> float:
        return math.sqrt(self.var() / self.n) if self.n > 0 else float("inf")

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.values, q))

    def exceedance_probability(self, threshold: float) -> float:
        """Fraction of runs whose output exceeds ``threshold``."""
        return float(np.mean(self.values > threshold))

    def main_effect_indices(self, n_bins: int = 10) -> List[float]:
        """Crude first-order sensitivity: Var(E[Y|X_j binned]) / Var(Y).

        A binned estimator of the Sobol first-order index; adequate for
        ranking which uncertain input dominates the output epistemically.
        """
        total_var = float(np.var(self.values))
        if total_var == 0.0:
            return [0.0] * self.points.shape[1]
        indices = []
        for j in range(self.points.shape[1]):
            col = self.points[:, j]
            edges = np.quantile(col, np.linspace(0.0, 1.0, n_bins + 1))
            which = np.clip(np.searchsorted(edges, col, side="right") - 1, 0, n_bins - 1)
            bin_means, bin_weights = [], []
            for b in range(n_bins):
                mask = which == b
                if np.any(mask):
                    bin_means.append(float(np.mean(self.values[mask])))
                    bin_weights.append(float(np.mean(mask)))
            bin_means = np.asarray(bin_means)
            bin_weights = np.asarray(bin_weights)
            overall = float(np.sum(bin_weights * bin_means))
            var_cond = float(np.sum(bin_weights * (bin_means - overall) ** 2))
            indices.append(min(var_cond / total_var, 1.0))
        return indices
