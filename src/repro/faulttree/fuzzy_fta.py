"""Fuzzy-probability fault tree analysis (Tanaka et al. 1983, ref. [34]).

Basic-event probabilities elicited as fuzzy numbers propagate bottom-up
through the gate logic by alpha-cut interval arithmetic.  The fuzzy spread
of the resulting top-event probability is an explicit *epistemic*
uncertainty statement that classic point-valued FTA hides — one of the
paper's §V-A criticisms of plain FTA.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import FaultTreeError
from repro.faulttree.tree import BasicEvent, FaultTree, Gate, GateType
from repro.probability.fuzzy import FuzzyNumber, fuzzy_and, fuzzy_or


def _evaluate(node, fuzz: Mapping[str, FuzzyNumber]) -> FuzzyNumber:
    if isinstance(node, BasicEvent):
        return fuzz[node.name]
    assert isinstance(node, Gate)
    children = [_evaluate(c, fuzz) for c in node.children]
    if node.gate_type is GateType.AND:
        return fuzzy_and(children)
    if node.gate_type is GateType.OR:
        return fuzzy_or(children)
    if node.gate_type is GateType.NOT:
        return children[0].complement_probability().clip_probability()
    # KOFN: OR over AND of all k-subsets — conservative (ignores the
    # exclusivity corrections), consistent with interval semantics.
    from itertools import combinations
    terms = [fuzzy_and(list(combo)) for combo in combinations(children, node.k or 1)]
    return fuzzy_or(terms)


def fuzzy_top_probability(tree: FaultTree,
                          fuzzy_probabilities: Mapping[str, FuzzyNumber]
                          ) -> FuzzyNumber:
    """Fuzzy top-event probability by bottom-up alpha-cut propagation.

    .. note::
       Bottom-up propagation treats each occurrence of a repeated basic
       event independently, which (as in interval arithmetic) widens the
       result for trees with shared events — a conservative bound.
    """
    missing = set(tree.basic_events) - set(fuzzy_probabilities)
    if missing:
        raise FaultTreeError(f"missing fuzzy probabilities for {sorted(missing)}")
    return _evaluate(tree.top, fuzzy_probabilities)


def fuzzy_importance(tree: FaultTree,
                     fuzzy_probabilities: Mapping[str, FuzzyNumber],
                     event: str) -> float:
    """Tanaka-style fuzzy importance: spread reduction when the event's
    fuzziness is collapsed to its core midpoint.

    A large value means the event's epistemic uncertainty dominates the
    top-event uncertainty — the place where *uncertainty removal* (better
    data on that event) pays off most.
    """
    if event not in tree.basic_events:
        raise FaultTreeError(f"unknown basic event {event!r}")
    full = fuzzy_top_probability(tree, fuzzy_probabilities)
    collapsed = dict(fuzzy_probabilities)
    lo, hi = fuzzy_probabilities[event].core
    collapsed[event] = FuzzyNumber.crisp(0.5 * (lo + hi),
                                         levels=len(fuzzy_probabilities[event].alphas))
    reduced = fuzzy_top_probability(tree, collapsed)
    return max(full.spread() - reduced.spread(), 0.0)


def fuzzy_importance_ranking(tree: FaultTree,
                             fuzzy_probabilities: Mapping[str, FuzzyNumber]):
    """All basic events ranked by fuzzy importance (descending)."""
    scored = [(name, fuzzy_importance(tree, fuzzy_probabilities, name))
              for name in tree.basic_events]
    return sorted(scored, key=lambda t: -t[1])
