"""Fault tree analysis: the classic safety-analysis substrate (paper §V-A).

Boolean fault propagation trees with:

- minimal cut set extraction (MOCUS-style top-down expansion),
- exact quantification (inclusion-exclusion) plus rare-event and min-cut
  upper bound approximations,
- importance measures (Birnbaum, Fussell-Vesely, RAW, RRW),
- fuzzy-probability FTA after Tanaka et al. (ref. [34]),
- interval-probability FTA (imprecise basic events),
- conversion to a Bayesian network (the paper's proposed generalization).
"""

from repro.faulttree.common_cause import (
    beta_factor_system_probability,
    beta_factor_tree,
    ccf_diagnostic,
    common_cause_bayesnet,
)
from repro.faulttree.cutsets import minimal_cut_sets
from repro.faulttree.dynamic import (
    DynamicFaultTree,
    DynamicGate,
    ExponentialEvent,
)
from repro.faulttree.event_tree import EventTree, SafetyFunction
from repro.faulttree.fuzzy_fta import fuzzy_top_probability
from repro.faulttree.quantify import (
    birnbaum_importance,
    fussell_vesely_importance,
    interval_top_probability,
    rare_event_approximation,
    risk_achievement_worth,
    risk_reduction_worth,
    top_event_probability,
)
from repro.faulttree.to_bayesnet import fault_tree_to_bayesnet
from repro.faulttree.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = [
    "beta_factor_system_probability",
    "beta_factor_tree",
    "ccf_diagnostic",
    "common_cause_bayesnet",
    "DynamicFaultTree",
    "DynamicGate",
    "ExponentialEvent",
    "EventTree",
    "SafetyFunction",
    "BasicEvent",
    "FaultTree",
    "Gate",
    "GateType",
    "minimal_cut_sets",
    "top_event_probability",
    "rare_event_approximation",
    "interval_top_probability",
    "birnbaum_importance",
    "fussell_vesely_importance",
    "risk_achievement_worth",
    "risk_reduction_worth",
    "fuzzy_top_probability",
    "fault_tree_to_bayesnet",
]
