"""Common-cause failure modeling (beta-factor) and the BN common parent.

The paper's §V closes: "The BN approach also allows including dependencies
by common parent nodes to identify common causes for uncertainties."
This module provides both sides of that sentence:

- the classic *beta-factor* transformation for fault trees: a fraction
  beta of each redundant component's failure rate is a shared common-cause
  event, so an n-redundant AND no longer multiplies to (p)^n;
- a BN construction with an explicit common-cause parent node, supporting
  the diagnostic query "given both channels failed, was it a common
  cause?" that the factored FTA cannot ask.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bayesnet.cpt import CPT
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.variable import Variable, boolean_variable
from repro.errors import FaultTreeError
from repro.faulttree.tree import BasicEvent, FaultTree, Gate, GateType, and_gate, or_gate

FALSE, TRUE = "false", "true"


def beta_factor_tree(name: str, component_probability: float,
                     n_redundant: int, beta: float) -> FaultTree:
    """AND of n redundant components with a beta-factor common cause.

    Each component's failure probability p splits into an independent part
    (1-beta) p and a shared common-cause event with probability beta p.
    The system fails if all independent parts fail OR the common cause
    occurs:

        top = OR(CCF, AND(independent_1 ... independent_n)).
    """
    if not 0.0 <= beta <= 1.0:
        raise FaultTreeError("beta must be in [0, 1]")
    if not 0.0 <= component_probability <= 1.0:
        raise FaultTreeError("component probability must be in [0, 1]")
    if n_redundant < 2:
        raise FaultTreeError("redundancy requires at least 2 components")
    p_ind = (1.0 - beta) * component_probability
    p_ccf = beta * component_probability
    independents = [BasicEvent(f"{name}_ind_{i}", p_ind)
                    for i in range(n_redundant)]
    ccf = BasicEvent(f"{name}_ccf", p_ccf)
    top = or_gate(f"{name}_fails",
                  [and_gate(f"{name}_all_independent", independents), ccf])
    return FaultTree(top)


def beta_factor_system_probability(component_probability: float,
                                   n_redundant: int, beta: float) -> float:
    """Closed-form system failure probability under the beta factor."""
    if not 0.0 <= beta <= 1.0:
        raise FaultTreeError("beta must be in [0, 1]")
    p_ind = (1.0 - beta) * component_probability
    p_ccf = beta * component_probability
    p_all_ind = p_ind ** n_redundant
    return p_all_ind + p_ccf - p_all_ind * p_ccf


def common_cause_bayesnet(channel_probability: float, beta: float,
                          n_channels: int = 2) -> BayesianNetwork:
    """BN with an explicit common-cause parent over redundant channels.

    Structure:  ccf -> channel_i  (for all i),  channels -> system.
    ``P(channel fails | ccf) = 1``;
    ``P(channel fails | no ccf) = (1-beta) p`` (independent residual).
    """
    if not 0.0 <= beta <= 1.0:
        raise FaultTreeError("beta must be in [0, 1]")
    if not 0.0 <= channel_probability <= 1.0:
        raise FaultTreeError("channel probability must be in [0, 1]")
    if n_channels < 2:
        raise FaultTreeError("need at least 2 channels")
    bn = BayesianNetwork("common-cause")
    ccf = boolean_variable("ccf")
    bn.add_cpt(CPT.prior(ccf, {TRUE: beta * channel_probability,
                               FALSE: 1.0 - beta * channel_probability}))
    p_residual = (1.0 - beta) * channel_probability
    channels = []
    for i in range(n_channels):
        ch = boolean_variable(f"channel{i}")
        channels.append(ch)
        bn.add_cpt(CPT.from_dict(ch, [ccf], {
            (TRUE,): {TRUE: 1.0, FALSE: 0.0},
            (FALSE,): {TRUE: p_residual, FALSE: 1.0 - p_residual}}))
    system = boolean_variable("system")
    bn.add_cpt(CPT.deterministic(
        system, channels,
        lambda *states: TRUE if all(s == TRUE for s in states) else FALSE))
    return bn


def ccf_diagnostic(channel_probability: float, beta: float,
                   n_channels: int = 2) -> Dict[str, float]:
    """P(common cause | all channels failed) — the query FTA cannot ask.

    A high posterior means adding more identical channels will NOT help
    (the paper's 'diverse uncertainties' requirement in one number).
    """
    bn = common_cause_bayesnet(channel_probability, beta, n_channels)
    evidence = {f"channel{i}": TRUE for i in range(n_channels)}
    post = bn.query("ccf", evidence)
    return {"p_ccf_given_all_failed": post[TRUE],
            "p_system_fails": bn.query("system")[TRUE]}
