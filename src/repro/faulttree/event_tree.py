"""Event tree analysis (paper ref. [35]: fault AND event tree analyses).

An event tree is the forward complement of a fault tree: from an
initiating event, each safety function either succeeds or fails, and each
branch path ends in a consequence class.  Branch probabilities can come
from fault trees (the failure probability of the safety function), carry
intervals (epistemic uncertainty), and accumulate into a frequency per
consequence — the classic risk-triplet quantification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import FaultTreeError
from repro.probability.intervals import IntervalProbability

BranchProb = Union[float, IntervalProbability]


def _as_interval(p: BranchProb) -> IntervalProbability:
    if isinstance(p, IntervalProbability):
        return p
    return IntervalProbability.precise(float(p))


@dataclass(frozen=True)
class SafetyFunction:
    """A branch point: the function fails with probability ``p_fail``."""

    name: str
    p_fail: IntervalProbability

    @classmethod
    def of(cls, name: str, p_fail: BranchProb) -> "SafetyFunction":
        if not name:
            raise FaultTreeError("safety function name must be non-empty")
        return cls(name, _as_interval(p_fail))


@dataclass(frozen=True)
class Sequence_:
    """One path through the tree: which functions failed, consequence."""

    failed: Tuple[str, ...]
    consequence: str
    frequency: IntervalProbability


class EventTree:
    """An event tree over an ordered list of safety functions.

    The consequence of a path is decided by ``consequence_of``, a mapping
    from the *set of failed functions* to a consequence label; unknown
    combinations fall back to ``worst_consequence`` — an explicit,
    conservative treatment of unanalyzed paths (the ontological corner of
    a consequence analysis).
    """

    def __init__(self, initiating_event: str,
                 initiating_frequency: BranchProb,
                 functions: Sequence[SafetyFunction],
                 consequence_of: Mapping[frozenset, str],
                 worst_consequence: str = "severe"):
        if not initiating_event:
            raise FaultTreeError("initiating event name must be non-empty")
        if not functions:
            raise FaultTreeError("at least one safety function required")
        names = [f.name for f in functions]
        if len(set(names)) != len(names):
            raise FaultTreeError(f"duplicate safety functions: {names}")
        self.initiating_event = initiating_event
        self.initiating_frequency = _as_interval(initiating_frequency)
        self.functions = list(functions)
        self.consequence_of = {frozenset(k): str(v)
                               for k, v in consequence_of.items()}
        self.worst_consequence = worst_consequence

    def sequences(self) -> List[Sequence_]:
        """All 2^n paths with their frequencies (independence assumed)."""
        out: List[Sequence_] = []
        n = len(self.functions)
        for mask in range(2 ** n):
            failed: List[str] = []
            freq = self.initiating_frequency
            for i, fn in enumerate(self.functions):
                if mask & (1 << i):
                    failed.append(fn.name)
                    freq = freq.and_independent(fn.p_fail)
                else:
                    freq = freq.and_independent(fn.p_fail.complement())
            consequence = self.consequence_of.get(
                frozenset(failed), self.worst_consequence)
            out.append(Sequence_(failed=tuple(failed),
                                 consequence=consequence, frequency=freq))
        return out

    def consequence_frequencies(self) -> Dict[str, IntervalProbability]:
        """Total frequency interval per consequence class.

        Lower/upper bounds add per sequence; the result is a conservative
        interval (exact when all branch probabilities are precise).
        """
        totals: Dict[str, Tuple[float, float]] = {}
        for seq in self.sequences():
            lo, hi = totals.get(seq.consequence, (0.0, 0.0))
            totals[seq.consequence] = (lo + seq.frequency.lower,
                                       hi + seq.frequency.upper)
        return {c: IntervalProbability(min(lo, 1.0), min(hi, 1.0))
                for c, (lo, hi) in totals.items()}

    def dominant_sequence(self, consequence: str) -> Optional[Sequence_]:
        """Highest-frequency (midpoint) path into a consequence class."""
        candidates = [s for s in self.sequences()
                      if s.consequence == consequence]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.frequency.midpoint)

    def risk_profile(self, severity: Mapping[str, float]
                     ) -> Tuple[float, float]:
        """Expected severity bounds: sum over consequences of
        frequency x severity weight."""
        for c in self.consequence_frequencies():
            if c not in severity:
                raise FaultTreeError(f"no severity weight for {c!r}")
        lo = hi = 0.0
        for c, freq in self.consequence_frequencies().items():
            w = float(severity[c])
            if w < 0:
                raise FaultTreeError("severity weights must be non-negative")
            lo += w * freq.lower
            hi += w * freq.upper
        return lo, hi

    def __repr__(self) -> str:
        return (f"EventTree({self.initiating_event!r}, "
                f"functions={[f.name for f in self.functions]})")
