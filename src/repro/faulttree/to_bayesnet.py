"""Fault tree to Bayesian network conversion.

The paper's §V argues FTA's deterministic cause-effect gates "cannot model
more diverse and uncertain relations" and proposes BNs as the
generalization.  This converter realizes the standard mapping: basic
events become root nodes with Bernoulli priors; gates become deterministic
CPT nodes.  Once in BN form, gates can be *softened* (noisy gates) and
diagnostic queries (posterior of a basic event given the top event) become
available — neither is expressible in classic FTA.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bayesnet.cpt import CPT
from repro.bayesnet.engine import InferenceEngine
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.variable import Variable
from repro.errors import FaultTreeError
from repro.faulttree.tree import BasicEvent, FaultTree, Gate, GateType

FALSE, TRUE = "false", "true"


def _gate_function(gate: Gate):
    if gate.gate_type is GateType.AND:
        return lambda *states: TRUE if all(s == TRUE for s in states) else FALSE
    if gate.gate_type is GateType.OR:
        return lambda *states: TRUE if any(s == TRUE for s in states) else FALSE
    if gate.gate_type is GateType.KOFN:
        k = gate.k or 1
        return lambda *states: TRUE if sum(s == TRUE for s in states) >= k else FALSE
    if gate.gate_type is GateType.NOT:
        return lambda state: TRUE if state == FALSE else FALSE
    raise FaultTreeError(f"unsupported gate type {gate.gate_type}")


def fault_tree_to_bayesnet(tree: FaultTree,
                           noise: float = 0.0) -> BayesianNetwork:
    """Convert a fault tree into an equivalent Bayesian network.

    Parameters
    ----------
    tree:
        The fault tree; repeated basic events are handled correctly (they
        become a single root node with multiple children — the BN encodes
        the shared dependency that naive bottom-up FTA arithmetic misses).
    noise:
        Optional gate noise epsilon: with probability ``noise`` a gate's
        output flips.  ``noise=0`` reproduces Boolean FTA exactly;
        ``noise>0`` expresses epistemic doubt about the failure logic
        itself, which classic FTA cannot.
    """
    if not 0.0 <= noise < 0.5:
        raise FaultTreeError("noise must be in [0, 0.5)")
    bn = BayesianNetwork(f"fta-{tree.top.name}")
    variables: Dict[str, Variable] = {}

    for name, be in sorted(tree.basic_events.items()):
        var = Variable(name, [FALSE, TRUE])
        variables[name] = var
        bn.add_cpt(CPT.prior(var, {FALSE: 1.0 - be.probability,
                                   TRUE: be.probability}))

    def add_gate(gate: Gate) -> None:
        if gate.name in variables:
            return
        for child in gate.children:
            if isinstance(child, Gate):
                add_gate(child)
        var = Variable(gate.name, [FALSE, TRUE])
        variables[gate.name] = var
        parents = [variables[c.name] for c in gate.children]
        fn = _gate_function(gate)
        cpt = CPT.deterministic(var, parents, fn)
        if noise > 0.0:
            table = cpt.table * (1.0 - 2.0 * noise) + noise
            cpt = CPT(var, parents, table)
        bn.add_cpt(cpt)

    add_gate(tree.top)
    return bn


def compiled_fault_tree(tree: FaultTree, noise: float = 0.0) -> InferenceEngine:
    """One compiled engine for a fault tree's BN — the handle diagnostic
    sweeps and repeated quantifications should share."""
    return fault_tree_to_bayesnet(tree, noise).engine()


def top_probability_via_bn(tree: FaultTree,
                           engine: Optional[InferenceEngine] = None) -> float:
    """P(top) computed through the BN — exact for any sharing structure."""
    engine = engine or compiled_fault_tree(tree)
    return engine.query(tree.top.name)[TRUE]


def diagnostic_posterior(tree: FaultTree, observed_top: bool = True,
                         engine: Optional[InferenceEngine] = None
                         ) -> Dict[str, float]:
    """P(basic event | top event observed) — the diagnostic query FTA lacks.

    All basic-event posteriors come from *one* junction-tree calibration
    of the compiled engine rather than one elimination per event.
    """
    engine = engine or compiled_fault_tree(tree)
    evidence = {tree.top.name: TRUE if observed_top else FALSE}
    marginals = engine.marginals(evidence)
    return {name: marginals[name][TRUE]
            for name in sorted(tree.basic_events)}
