"""Markov availability models for repairable systems.

Laprie's dependability taxonomy (the paper's template) lists availability
among the dependability *properties*; for repairable architectures the
standard quantification is a CTMC over (working, failed) component states
with failure and repair rates.  This module computes steady-state
availability, MTBF/MTTR decompositions, and the availability of k-of-n
repairable groups — the quantitative backend for prevention/tolerance
trade studies ("how much repair capacity buys how much availability").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultTreeError


@dataclass(frozen=True)
class RepairableComponent:
    """A component with exponential failure and repair processes."""

    name: str
    failure_rate: float
    repair_rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultTreeError("component name must be non-empty")
        if self.failure_rate <= 0.0 or self.repair_rate <= 0.0:
            raise FaultTreeError(
                f"component {self.name!r}: rates must be positive")

    @property
    def availability(self) -> float:
        """Steady-state availability mu / (lambda + mu)."""
        return self.repair_rate / (self.failure_rate + self.repair_rate)

    @property
    def mtbf(self) -> float:
        return 1.0 / self.failure_rate

    @property
    def mttr(self) -> float:
        return 1.0 / self.repair_rate


def series_availability(components: Sequence[RepairableComponent]) -> float:
    """All components needed: product of availabilities."""
    if not components:
        raise FaultTreeError("at least one component required")
    out = 1.0
    for c in components:
        out *= c.availability
    return out


def parallel_availability(components: Sequence[RepairableComponent]) -> float:
    """Any component suffices: 1 - product of unavailabilities."""
    if not components:
        raise FaultTreeError("at least one component required")
    out = 1.0
    for c in components:
        out *= 1.0 - c.availability
    return 1.0 - out


def kofn_availability(component: RepairableComponent, n: int, k: int,
                      n_repair_crews: Optional[int] = None) -> float:
    """Steady-state availability of a k-of-n group of identical repairable
    components served by a limited repair crew (birth-death CTMC).

    State = number of failed components; failure rate from state j is
    (n - j) * lambda, repair rate min(j, crews) * mu.  Availability is the
    probability that at most n - k components are down.
    """
    if n < 1 or not 1 <= k <= n:
        raise FaultTreeError("require 1 <= k <= n")
    crews = n if n_repair_crews is None else n_repair_crews
    if crews < 1:
        raise FaultTreeError("need at least one repair crew")
    lam, mu = component.failure_rate, component.repair_rate
    # Birth-death stationary distribution via the product formula.
    weights = [1.0]
    for j in range(1, n + 1):
        birth = (n - (j - 1)) * lam
        death = min(j, crews) * mu
        weights.append(weights[-1] * birth / death)
    total = sum(weights)
    probs = [w / total for w in weights]
    return sum(probs[: n - k + 1])


def steady_state_availability_ctmc(
        rates: Mapping[Tuple[str, str], float],
        up_states: Sequence[str]) -> float:
    """Availability of an arbitrary CTMC given transition rates.

    ``rates[(src, dst)]`` are off-diagonal entries of the generator;
    availability is the stationary probability mass of ``up_states``.
    """
    states = sorted({s for pair in rates for s in pair})
    if not states:
        raise FaultTreeError("no states given")
    unknown = set(up_states) - set(states)
    if unknown:
        raise FaultTreeError(f"unknown up states {sorted(unknown)}")
    idx = {s: i for i, s in enumerate(states)}
    n = len(states)
    q = np.zeros((n, n))
    for (src, dst), rate in rates.items():
        if src == dst:
            raise FaultTreeError("diagonal rates are implied; omit them")
        if rate < 0:
            raise FaultTreeError("rates must be non-negative")
        q[idx[src], idx[dst]] = rate
    np.fill_diagonal(q, -q.sum(axis=1))
    # Solve pi Q = 0 with sum(pi) = 1: replace one balance equation.
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    pi = np.linalg.solve(a, b)
    if np.any(pi < -1e-9):
        raise FaultTreeError("CTMC has no valid stationary distribution "
                             "(is it irreducible?)")
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()
    return float(sum(pi[idx[s]] for s in set(up_states)))


def downtime_minutes_per_year(availability: float) -> float:
    """The operations-facing unit: expected annual downtime."""
    if not 0.0 <= availability <= 1.0:
        raise FaultTreeError("availability must be in [0, 1]")
    return (1.0 - availability) * 365.25 * 24 * 60
