"""Fault tree structure: basic events, gates, and the tree container.

FTA "is a graphical model based on a Boolean fault propagation and is used
to identify shortcomings like single point faults in the system" (paper
§V-A).  The tree is a DAG (shared subtrees and repeated basic events are
allowed — that is what makes quantification interesting).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Union

from repro.errors import FaultTreeError


class GateType(enum.Enum):
    """Boolean gate kinds supported by the analyzer."""

    AND = "and"
    OR = "or"
    KOFN = "kofn"
    NOT = "not"


class Node:
    """Common base of basic events and gates."""

    def __init__(self, name: str):
        if not name:
            raise FaultTreeError("node name must be non-empty")
        self.name = name

    def descendants_basic(self) -> Set[str]:
        raise NotImplementedError


class BasicEvent(Node):
    """A leaf event with a failure probability.

    ``probability`` is the point value used by crisp quantification; fuzzy
    and interval analyses attach their own richer descriptions through the
    corresponding analysis entry points.
    """

    def __init__(self, name: str, probability: float):
        super().__init__(name)
        probability = float(probability)
        if not 0.0 <= probability <= 1.0:
            raise FaultTreeError(
                f"basic event {name!r} probability must be in [0, 1], got {probability}")
        self.probability = probability

    def descendants_basic(self) -> Set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"BasicEvent({self.name!r}, p={self.probability})"


class Gate(Node):
    """A Boolean gate over child nodes (gates or basic events)."""

    def __init__(self, name: str, gate_type: GateType,
                 children: Sequence[Node], k: Optional[int] = None):
        super().__init__(name)
        if not isinstance(gate_type, GateType):
            raise FaultTreeError(f"gate_type must be a GateType, got {gate_type!r}")
        children = list(children)
        if gate_type is GateType.NOT:
            if len(children) != 1:
                raise FaultTreeError(f"NOT gate {name!r} needs exactly one child")
        elif len(children) < 1:
            raise FaultTreeError(f"gate {name!r} needs at least one child")
        if gate_type is GateType.KOFN:
            if k is None or not 1 <= k <= len(children):
                raise FaultTreeError(
                    f"k-of-n gate {name!r} requires 1 <= k <= {len(children)}, got {k}")
        elif k is not None:
            raise FaultTreeError(f"k is only valid for KOFN gates (gate {name!r})")
        self.gate_type = gate_type
        self.children = children
        self.k = k

    def evaluate(self, state: Dict[str, bool]) -> bool:
        """Boolean evaluation given basic-event truth values."""
        values = [child.evaluate(state) if isinstance(child, Gate)
                  else state[child.name] for child in self.children]
        if self.gate_type is GateType.AND:
            return all(values)
        if self.gate_type is GateType.OR:
            return any(values)
        if self.gate_type is GateType.KOFN:
            return sum(values) >= (self.k or 0)
        return not values[0]

    def descendants_basic(self) -> Set[str]:
        out: Set[str] = set()
        for child in self.children:
            out |= child.descendants_basic()
        return out

    def __repr__(self) -> str:
        suffix = f", k={self.k}" if self.gate_type is GateType.KOFN else ""
        return (f"Gate({self.name!r}, {self.gate_type.value}, "
                f"children={[c.name for c in self.children]}{suffix})")


class FaultTree:
    """A fault tree anchored at a top event gate."""

    def __init__(self, top: Gate):
        if not isinstance(top, Gate):
            raise FaultTreeError("top event must be a Gate")
        self.top = top
        self._basic_events: Dict[str, BasicEvent] = {}
        self._gates: Dict[str, Gate] = {}
        self._collect(top)

    def _collect(self, node: Node) -> None:
        if isinstance(node, BasicEvent):
            if node.name in self._gates:
                raise FaultTreeError(
                    f"name {node.name!r} used for both gate and event")
            existing = self._basic_events.get(node.name)
            if existing is not None and existing is not node:
                raise FaultTreeError(
                    f"two distinct BasicEvent objects named {node.name!r}; "
                    "share one object for repeated events")
            self._basic_events[node.name] = node
            return
        assert isinstance(node, Gate)
        existing_gate = self._gates.get(node.name)
        if existing_gate is not None:
            if existing_gate is not node:
                raise FaultTreeError(f"duplicate gate name {node.name!r}")
            return
        if node.name in self._basic_events:
            raise FaultTreeError(f"name {node.name!r} used for both gate and event")
        self._gates[node.name] = node
        for child in node.children:
            self._collect(child)

    @property
    def basic_events(self) -> Dict[str, BasicEvent]:
        return dict(self._basic_events)

    @property
    def gates(self) -> Dict[str, Gate]:
        return dict(self._gates)

    def probabilities(self) -> Dict[str, float]:
        return {name: be.probability for name, be in self._basic_events.items()}

    def evaluate(self, state: Dict[str, bool]) -> bool:
        """Truth value of the top event for one basic-event configuration."""
        missing = set(self._basic_events) - set(state)
        if missing:
            raise FaultTreeError(f"state missing basic events {sorted(missing)}")
        return self.top.evaluate(state)

    def has_negation(self) -> bool:
        return any(g.gate_type is GateType.NOT for g in self._gates.values())

    def __repr__(self) -> str:
        return (f"FaultTree(top={self.top.name!r}, gates={len(self._gates)}, "
                f"basic_events={len(self._basic_events)})")


def and_gate(name: str, children: Sequence[Node]) -> Gate:
    """Convenience constructor for AND gates."""
    return Gate(name, GateType.AND, children)


def or_gate(name: str, children: Sequence[Node]) -> Gate:
    """Convenience constructor for OR gates."""
    return Gate(name, GateType.OR, children)


def kofn_gate(name: str, k: int, children: Sequence[Node]) -> Gate:
    """Convenience constructor for k-of-n voting gates."""
    return Gate(name, GateType.KOFN, children, k=k)
