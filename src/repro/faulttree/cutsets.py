"""Minimal cut set extraction (MOCUS-style top-down expansion).

A cut set is a set of basic events whose joint occurrence triggers the top
event; *minimal* cut sets are the irreducible ones — singletons are the
single-point faults FTA exists to find (paper §V-A).
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from repro.errors import FaultTreeError
from repro.faulttree.tree import BasicEvent, FaultTree, Gate, GateType

CutSet = FrozenSet[str]


def _expand(node, limit: int) -> List[Set[str]]:
    """Return the list of cut sets (as mutable sets) for a subtree."""
    if isinstance(node, BasicEvent):
        return [{node.name}]
    assert isinstance(node, Gate)
    if node.gate_type is GateType.NOT:
        raise FaultTreeError(
            "cut-set analysis of non-coherent trees (NOT gates) is not "
            "supported; use BN conversion for non-coherent logic")
    if node.gate_type is GateType.OR:
        out: List[Set[str]] = []
        for child in node.children:
            out.extend(_expand(child, limit))
            if len(out) > limit:
                raise FaultTreeError(
                    f"cut-set expansion exceeded {limit} sets; raise the limit "
                    "or prune the tree")
        return out
    if node.gate_type is GateType.AND:
        out = [set()]
        for child in node.children:
            child_sets = _expand(child, limit)
            out = [a | b for a in out for b in child_sets]
            if len(out) > limit:
                raise FaultTreeError(
                    f"cut-set expansion exceeded {limit} sets; raise the limit "
                    "or prune the tree")
        return out
    # KOFN: expand as OR over all k-subsets of AND combinations.
    assert node.gate_type is GateType.KOFN
    from itertools import combinations
    out = []
    for combo in combinations(node.children, node.k or 1):
        partial = [set()]
        for child in combo:
            child_sets = _expand(child, limit)
            partial = [a | b for a in partial for b in child_sets]
        out.extend(partial)
        if len(out) > limit:
            raise FaultTreeError(
                f"cut-set expansion exceeded {limit} sets; raise the limit "
                "or prune the tree")
    return out


def minimize(cut_sets: Sequence[Set[str]]) -> List[CutSet]:
    """Remove non-minimal (superset) and duplicate cut sets."""
    unique = {frozenset(s) for s in cut_sets if s}
    ordered = sorted(unique, key=len)
    minimal: List[CutSet] = []
    for cs in ordered:
        if not any(m < cs or m == cs for m in minimal):
            minimal.append(cs)
    return sorted(minimal, key=lambda s: (len(s), sorted(s)))


def minimal_cut_sets(tree: FaultTree, limit: int = 100000) -> List[CutSet]:
    """All minimal cut sets of a coherent fault tree."""
    raw = _expand(tree.top, limit)
    return minimize(raw)


def single_point_faults(tree: FaultTree) -> List[str]:
    """Basic events that alone trigger the top event (order-1 cut sets)."""
    return sorted(next(iter(cs)) for cs in minimal_cut_sets(tree) if len(cs) == 1)


def cut_set_order_histogram(tree: FaultTree) -> dict:
    """Map cut-set order -> count; the classic FTA summary table."""
    hist: dict = {}
    for cs in minimal_cut_sets(tree):
        hist[len(cs)] = hist.get(len(cs), 0) + 1
    return hist


def path_sets(tree: FaultTree, limit: int = 100000) -> List[CutSet]:
    """Minimal path sets (success paths) via the dual tree.

    The dual swaps AND and OR; its minimal cut sets are this tree's minimal
    path sets.  KOFN(k of n) dualizes to KOFN(n-k+1 of n).
    """

    def dualize(node):
        if isinstance(node, BasicEvent):
            return node
        assert isinstance(node, Gate)
        children = [dualize(c) for c in node.children]
        if node.gate_type is GateType.AND:
            return Gate(node.name, GateType.OR, children)
        if node.gate_type is GateType.OR:
            return Gate(node.name, GateType.AND, children)
        if node.gate_type is GateType.KOFN:
            n = len(children)
            return Gate(node.name, GateType.KOFN, children, k=n - (node.k or 1) + 1)
        raise FaultTreeError("cannot dualize non-coherent trees")

    dual = FaultTree(dualize(tree.top))
    return minimal_cut_sets(dual, limit)
