"""Dynamic fault trees (Dugan et al., paper ref. [33]) via Markov chains.

Static FTA cannot express order-dependent failure logic: priority-AND
(fires only if inputs fail in order) and spares (a standby component with
reduced dormant failure rate takes over when the primary dies).  The
standard solution is to compile the dynamic fault tree into a
continuous-time Markov chain over failure states and solve it
transiently.  This module implements that compilation for exponential
basic events and gates {AND, OR, KOFN, PAND, WSP}, with the CTMC solved by
uniformization (no scipy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import FaultTreeError


@dataclass(frozen=True)
class ExponentialEvent:
    """A basic event with an exponential time-to-failure."""

    name: str
    rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultTreeError("event name must be non-empty")
        if self.rate <= 0.0:
            raise FaultTreeError(f"event {self.name!r}: rate must be positive")


class DynamicGate:
    """A gate of the dynamic fault tree; children are events or gates."""

    TYPES = ("and", "or", "kofn", "pand", "wsp")

    def __init__(self, name: str, gate_type: str, children: Sequence,
                 k: Optional[int] = None, dormancy: float = 0.0):
        if gate_type not in self.TYPES:
            raise FaultTreeError(f"unknown gate type {gate_type!r}")
        children = list(children)
        if len(children) < 1:
            raise FaultTreeError(f"gate {name!r} needs children")
        if gate_type == "pand" and len(children) != 2:
            raise FaultTreeError("PAND gates are binary in this analyzer")
        if gate_type == "wsp":
            if len(children) < 2:
                raise FaultTreeError("WSP needs a primary and >=1 spare")
            if not all(isinstance(c, ExponentialEvent) for c in children):
                raise FaultTreeError("WSP children must be basic events")
            if not 0.0 <= dormancy <= 1.0:
                raise FaultTreeError("dormancy must be in [0, 1]")
        if gate_type == "kofn":
            if k is None or not 1 <= k <= len(children):
                raise FaultTreeError(f"kofn gate {name!r}: invalid k={k}")
        self.name = name
        self.gate_type = gate_type
        self.children = children
        self.k = k
        self.dormancy = dormancy

    def basic_events(self) -> List[ExponentialEvent]:
        out: List[ExponentialEvent] = []
        for c in self.children:
            if isinstance(c, ExponentialEvent):
                out.append(c)
            else:
                out.extend(c.basic_events())
        return out

    def pand_gates(self) -> List["DynamicGate"]:
        out = [self] if self.gate_type == "pand" else []
        for c in self.children:
            if isinstance(c, DynamicGate):
                out.extend(c.pand_gates())
        return out

    def wsp_gates(self) -> List["DynamicGate"]:
        out = [self] if self.gate_type == "wsp" else []
        for c in self.children:
            if isinstance(c, DynamicGate):
                out.extend(c.wsp_gates())
        return out

    def evaluate(self, failed: FrozenSet[str],
                 pand_fired: Mapping[str, bool]) -> bool:
        """Is the gate output failed, given failed events + PAND order flags."""
        if self.gate_type == "pand":
            return pand_fired[self.name]

        def child_failed(c) -> bool:
            if isinstance(c, ExponentialEvent):
                return c.name in failed
            return c.evaluate(failed, pand_fired)

        flags = [child_failed(c) for c in self.children]
        if self.gate_type == "and":
            return all(flags)
        if self.gate_type == "or":
            return any(flags)
        if self.gate_type == "kofn":
            return sum(flags) >= (self.k or 1)
        # wsp: failed when all (primary + spares) have failed.
        return all(flags)

    def __repr__(self) -> str:
        return f"DynamicGate({self.name!r}, {self.gate_type})"


# One Markov state: which events failed, and which PAND gates have fired
# (order matters, so the flag cannot be derived from the failed set alone).
State = Tuple[FrozenSet[str], FrozenSet[str]]


class DynamicFaultTree:
    """A dynamic fault tree compiled to a CTMC for transient analysis."""

    def __init__(self, top: DynamicGate):
        self.top = top
        events = top.basic_events()
        names = [e.name for e in events]
        if len(set(names)) != len(names):
            raise FaultTreeError(f"duplicate basic events: {names}")
        self._events: Dict[str, ExponentialEvent] = {e.name: e for e in events}
        self._pands = top.pand_gates()
        pand_names = [g.name for g in self._pands]
        if len(set(pand_names)) != len(pand_names):
            raise FaultTreeError("duplicate PAND gate names")
        self._wsps = top.wsp_gates()

    # -- rate model -------------------------------------------------------------

    def _event_rate(self, name: str, failed: FrozenSet[str]) -> float:
        """Current failure rate, accounting for spare dormancy."""
        rate = self._events[name].rate
        for wsp in self._wsps:
            members = [c.name for c in wsp.children]
            if name in members[1:]:
                # A spare is dormant while anything before it still works.
                position = members.index(name)
                predecessors_alive = any(m not in failed
                                         for m in members[:position])
                if predecessors_alive:
                    rate *= wsp.dormancy
        return rate

    def _pand_update(self, fired: FrozenSet[str], failed_before: FrozenSet[str],
                     failing_now: str) -> FrozenSet[str]:
        """Recompute PAND fired-flags after one failure."""
        new_fired = set(fired)
        for gate in self._pands:
            if gate.name in new_fired:
                continue
            left, right = gate.children

            def is_failed(c, failed_set):
                if isinstance(c, ExponentialEvent):
                    return c.name in failed_set
                return c.evaluate(frozenset(failed_set),
                                  {g.name: g.name in new_fired
                                   for g in self._pands})

            after = failed_before | {failing_now}
            if is_failed(left, failed_before) and is_failed(right, after) \
                    and not is_failed(right, failed_before):
                # Right input just failed with the left already down: fires.
                new_fired.add(gate.name)
            elif is_failed(left, after) and is_failed(right, after) and \
                    is_failed(left, failed_before) is False and \
                    is_failed(right, failed_before) is False:
                # Both became failed in the same transition (single basic
                # event feeding both sides): treat as simultaneous -> fires
                # only if the left is not strictly later; convention: fires.
                new_fired.add(gate.name)
        return frozenset(new_fired)

    # -- state space -------------------------------------------------------------

    def build_state_space(self) -> Tuple[List[State], Dict[State, int],
                                         List[List[Tuple[int, float]]]]:
        """Enumerate reachable states; absorbing once the top has failed."""
        initial: State = (frozenset(), frozenset())
        states: List[State] = [initial]
        index: Dict[State, int] = {initial: 0}
        transitions: List[List[Tuple[int, float]]] = [[]]
        frontier = [initial]
        while frontier:
            state = frontier.pop()
            failed, fired = state
            i = index[state]
            if self.top.evaluate(failed, {g.name: g.name in fired
                                          for g in self._pands}):
                continue  # absorbing: no outgoing transitions
            for name in self._events:
                if name in failed:
                    continue
                rate = self._event_rate(name, failed)
                if rate <= 0.0:
                    continue  # cold spare: cannot fail while dormant
                new_failed = failed | {name}
                new_fired = self._pand_update(fired, failed, name)
                new_state: State = (frozenset(new_failed), new_fired)
                if new_state not in index:
                    index[new_state] = len(states)
                    states.append(new_state)
                    transitions.append([])
                    frontier.append(new_state)
                transitions[i].append((index[new_state], rate))
        return states, index, transitions

    def top_failure_probability(self, t: float,
                                tol: float = 1e-12) -> float:
        """P(top event failed by time t) by CTMC uniformization."""
        if t < 0.0:
            raise FaultTreeError("t must be non-negative")
        if t == 0.0:
            return 0.0
        states, _, transitions = self.build_state_space()
        n = len(states)
        rates_out = np.zeros(n)
        for i, outs in enumerate(transitions):
            rates_out[i] = sum(r for _, r in outs)
        lam = float(rates_out.max())
        if lam == 0.0:
            return 0.0
        # Uniformized DTMC.
        p = np.zeros((n, n))
        for i, outs in enumerate(transitions):
            for j, r in outs:
                p[i, j] = r / lam
            p[i, i] = 1.0 - rates_out[i] / lam
        pi = np.zeros(n)
        pi[0] = 1.0
        # Sum Poisson(lam*t) weights until the tail is negligible.
        weight = math.exp(-lam * t)
        total = pi * weight
        k = 0
        cumulative = weight
        max_terms = int(lam * t + 10.0 * math.sqrt(lam * t) + 50)
        while cumulative < 1.0 - tol and k < max_terms:
            k += 1
            pi = pi @ p
            weight *= lam * t / k
            total += pi * weight
            cumulative += weight
        # Any missing tail mass sits in the last computed distribution.
        total += pi * max(1.0 - cumulative, 0.0)
        failed_mass = 0.0
        for i, (failed, fired) in enumerate(states):
            if self.top.evaluate(failed, {g.name: g.name in fired
                                          for g in self._pands}):
                failed_mass += float(total[i])
        return min(max(failed_mass, 0.0), 1.0)

    def mean_time_to_failure(self) -> float:
        """MTTF by first-step analysis on the embedded chain."""
        states, _, transitions = self.build_state_space()
        n = len(states)
        absorbing = [not transitions[i] for i in range(n)]
        transient = [i for i in range(n) if not absorbing[i]]
        pos = {i: r for r, i in enumerate(transient)}
        k = len(transient)
        if k == 0:
            return 0.0
        a = np.zeros((k, k))
        b = np.zeros(k)
        for i in transient:
            r = pos[i]
            total_rate = sum(rate for _, rate in transitions[i])
            a[r, r] = total_rate
            b[r] = 1.0
            for j, rate in transitions[i]:
                if j in pos:
                    a[r, pos[j]] -= rate
        solution = np.linalg.solve(a, b)
        return float(solution[pos[0]])

    def __repr__(self) -> str:
        return (f"DynamicFaultTree(top={self.top.name!r}, "
                f"events={len(self._events)}, pands={len(self._pands)}, "
                f"spares={len(self._wsps)})")


# -- closed-form oracles (used by tests and benchmarks) -----------------------

def and_gate_probability(rate_a: float, rate_b: float, t: float) -> float:
    """P(both exponentials failed by t)."""
    return (1.0 - math.exp(-rate_a * t)) * (1.0 - math.exp(-rate_b * t))


def pand_probability(rate_a: float, rate_b: float, t: float) -> float:
    """P(A fails before B and both by t), exponential A ~ a, B ~ b."""
    ab = rate_a + rate_b
    return (1.0 - math.exp(-rate_b * t)) - rate_b / ab * (
        1.0 - math.exp(-ab * t))


def cold_spare_probability(rate_a: float, rate_b: float, t: float) -> float:
    """P(primary then cold spare both failed by t): Ta + Tb <= t."""
    if abs(rate_a - rate_b) < 1e-12:
        lam = rate_a
        return 1.0 - math.exp(-lam * t) * (1.0 + lam * t)
    return 1.0 - (rate_b * math.exp(-rate_a * t) -
                  rate_a * math.exp(-rate_b * t)) / (rate_b - rate_a)
