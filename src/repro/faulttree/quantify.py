"""Quantitative fault tree evaluation and importance measures.

Exact top-event probability uses inclusion-exclusion over minimal cut sets
(assuming independent basic events); the rare-event approximation and the
min-cut upper bound (MCUB) are provided both as cheap alternatives and as
benchmark baselines.  Importance measures rank basic events for
*uncertainty prevention* prioritization.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import FaultTreeError
from repro.faulttree.cutsets import CutSet, minimal_cut_sets
from repro.faulttree.tree import FaultTree
from repro.probability.intervals import IntervalProbability


def _cut_set_probability(cs: CutSet, probs: Mapping[str, float]) -> float:
    p = 1.0
    for event in cs:
        p *= probs[event]
    return p


def top_event_probability(tree: FaultTree,
                          probabilities: Optional[Mapping[str, float]] = None,
                          max_exact_cut_sets: int = 22) -> float:
    """Exact P(top) by inclusion-exclusion over minimal cut sets.

    Falls back to the complementation product when the number of cut sets
    exceeds ``max_exact_cut_sets`` (inclusion-exclusion is O(2^m)); the
    fallback is exact only for disjoint-variable cut sets and otherwise a
    tight upper bound, so a :class:`FaultTreeError` is raised instead when
    variables repeat across cut sets.
    """
    probs = dict(probabilities or tree.probabilities())
    missing = set(tree.basic_events) - set(probs)
    if missing:
        raise FaultTreeError(f"missing probabilities for {sorted(missing)}")
    cut_sets = minimal_cut_sets(tree)
    if not cut_sets:
        return 0.0
    m = len(cut_sets)
    if m <= max_exact_cut_sets:
        total = 0.0
        for r in range(1, m + 1):
            sign = 1.0 if r % 2 == 1 else -1.0
            for combo in combinations(cut_sets, r):
                union: FrozenSet[str] = frozenset().union(*combo)
                total += sign * _cut_set_probability(union, probs)
        return min(max(total, 0.0), 1.0)
    # Large trees: MCUB is exact iff no basic event repeats across cut sets.
    counts: Dict[str, int] = {}
    for cs in cut_sets:
        for e in cs:
            counts[e] = counts.get(e, 0) + 1
    if all(c == 1 for c in counts.values()):
        q = 1.0
        for cs in cut_sets:
            q *= 1.0 - _cut_set_probability(cs, probs)
        return 1.0 - q
    raise FaultTreeError(
        f"{m} cut sets with shared events exceed the exact inclusion-"
        f"exclusion limit ({max_exact_cut_sets}); use "
        "rare_event_approximation, mcub, or monte_carlo_top_probability")


def rare_event_approximation(tree: FaultTree,
                             probabilities: Optional[Mapping[str, float]] = None) -> float:
    """First-order bound: sum of cut-set probabilities (upper bound)."""
    probs = dict(probabilities or tree.probabilities())
    return float(min(1.0, sum(_cut_set_probability(cs, probs)
                              for cs in minimal_cut_sets(tree))))


def mcub(tree: FaultTree,
         probabilities: Optional[Mapping[str, float]] = None) -> float:
    """Min-cut upper bound: 1 - prod(1 - P(cs)). Tighter than rare-event."""
    probs = dict(probabilities or tree.probabilities())
    q = 1.0
    for cs in minimal_cut_sets(tree):
        q *= 1.0 - _cut_set_probability(cs, probs)
    return 1.0 - q


def monte_carlo_top_probability(tree: FaultTree, rng: np.random.Generator,
                                n: int,
                                probabilities: Optional[Mapping[str, float]] = None
                                ) -> float:
    """Monte-Carlo estimate of P(top); works for any gate logic incl. NOT."""
    if n <= 0:
        raise FaultTreeError("n must be positive")
    probs = dict(probabilities or tree.probabilities())
    names = sorted(tree.basic_events)
    p = np.array([probs[name] for name in names])
    draws = rng.random((n, len(names))) < p
    hits = 0
    for row in draws:
        state = dict(zip(names, (bool(v) for v in row)))
        if tree.evaluate(state):
            hits += 1
    return hits / n


def birnbaum_importance(tree: FaultTree, event: str,
                        probabilities: Optional[Mapping[str, float]] = None) -> float:
    """Birnbaum importance: dP(top)/dp_e = P(top | e) - P(top | not e)."""
    probs = dict(probabilities or tree.probabilities())
    if event not in tree.basic_events:
        raise FaultTreeError(f"unknown basic event {event!r}")
    hi = dict(probs)
    hi[event] = 1.0
    lo = dict(probs)
    lo[event] = 0.0
    return top_event_probability(tree, hi) - top_event_probability(tree, lo)


def fussell_vesely_importance(tree: FaultTree, event: str,
                              probabilities: Optional[Mapping[str, float]] = None
                              ) -> float:
    """Fussell-Vesely: fraction of top-event risk flowing through ``event``."""
    probs = dict(probabilities or tree.probabilities())
    if event not in tree.basic_events:
        raise FaultTreeError(f"unknown basic event {event!r}")
    top = top_event_probability(tree, probs)
    if top <= 0.0:
        return 0.0
    containing = [cs for cs in minimal_cut_sets(tree) if event in cs]
    if not containing:
        return 0.0
    # Probability of the union of cut sets containing the event
    # (inclusion-exclusion; the count here is small in practice).
    m = len(containing)
    union_p = 0.0
    for r in range(1, m + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for combo in combinations(containing, r):
            union: FrozenSet[str] = frozenset().union(*combo)
            union_p += sign * _cut_set_probability(union, probs)
    return min(union_p / top, 1.0)


def risk_achievement_worth(tree: FaultTree, event: str,
                           probabilities: Optional[Mapping[str, float]] = None
                           ) -> float:
    """RAW = P(top | p_e = 1) / P(top): how bad if the event were certain."""
    probs = dict(probabilities or tree.probabilities())
    top = top_event_probability(tree, probs)
    if top <= 0.0:
        return float("inf")
    hi = dict(probs)
    hi[event] = 1.0
    return top_event_probability(tree, hi) / top


def risk_reduction_worth(tree: FaultTree, event: str,
                         probabilities: Optional[Mapping[str, float]] = None
                         ) -> float:
    """RRW = P(top) / P(top | p_e = 0): gain from eliminating the event."""
    probs = dict(probabilities or tree.probabilities())
    top = top_event_probability(tree, probs)
    lo = dict(probs)
    lo[event] = 0.0
    denom = top_event_probability(tree, lo)
    if denom <= 0.0:
        return float("inf")
    return top / denom


def interval_top_probability(tree: FaultTree,
                             intervals: Mapping[str, IntervalProbability]
                             ) -> IntervalProbability:
    """P(top) bounds when basic events carry interval probabilities.

    For coherent trees P(top) is monotone in every basic-event probability,
    so the bounds are attained at the interval endpoints.
    """
    missing = set(tree.basic_events) - set(intervals)
    if missing:
        raise FaultTreeError(f"missing intervals for {sorted(missing)}")
    lows = {name: iv.lower for name, iv in intervals.items()}
    highs = {name: iv.upper for name, iv in intervals.items()}
    return IntervalProbability(top_event_probability(tree, lows),
                               top_event_probability(tree, highs))


def importance_ranking(tree: FaultTree,
                       probabilities: Optional[Mapping[str, float]] = None,
                       measure: str = "birnbaum") -> List:
    """Rank all basic events by an importance measure (descending)."""
    measures = {
        "birnbaum": birnbaum_importance,
        "fussell_vesely": fussell_vesely_importance,
        "raw": risk_achievement_worth,
        "rrw": risk_reduction_worth,
    }
    if measure not in measures:
        raise FaultTreeError(f"unknown measure {measure!r}; choose from {sorted(measures)}")
    fn = measures[measure]
    scored = [(name, fn(tree, name, probabilities)) for name in tree.basic_events]
    return sorted(scored, key=lambda t: -t[1])
