"""Exception hierarchy shared across the :mod:`repro` framework.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch framework errors without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class ModelError(ReproError):
    """A formal model is ill-defined or used outside its validity domain."""


class DistributionError(ReproError):
    """A probability distribution received invalid parameters or inputs."""


class GraphError(ReproError):
    """A graph structure violates a required property (e.g. acyclicity)."""


class InferenceError(ReproError):
    """A probabilistic inference query cannot be answered."""


class EngineError(InferenceError):
    """An inference-engine handle could not be obtained or misbehaved.

    Subclasses :class:`InferenceError` so callers catching the broader
    inference failure keep working; raised by the engine seam itself
    (e.g. :func:`repro.bayesnet.engine.as_engine` on unsupported input).
    """


class EvidenceError(ReproError):
    """An evidence-theory object (mass function, combination) is invalid."""


class FaultTreeError(ReproError):
    """A fault tree is structurally or numerically invalid."""


class SimulationError(ReproError):
    """A physical or perception simulation was configured inconsistently."""


class StrategyError(ReproError):
    """An uncertainty-handling strategy cannot be derived or applied."""


class InjectionError(ReproError):
    """A fault-injection model or campaign was configured inconsistently."""


class SupervisorError(ReproError):
    """The runtime degradation supervisor was misconfigured or misused."""


class TelemetryError(ReproError):
    """A telemetry instrument or tracer was configured inconsistently."""


class ParallelError(ReproError):
    """A parallel executor was misconfigured or a dispatch went wrong."""


class ServingError(ReproError):
    """The inference service runtime was misconfigured or misbehaved."""


class OverloadError(ServingError):
    """Admission control shed the request: the service is at capacity.

    Carries the observed queue depth so callers (and the HTTP layer's
    429 response) can report how overloaded the service was.
    """

    def __init__(self, message: str, queue_depth: int = 0):
        super().__init__(message)
        self.queue_depth = int(queue_depth)


class DeadlineExceededError(ServingError):
    """A request's deadline budget expired before an answer was produced.

    With the degradation ladder enabled this is routed to a cheaper
    fallback tier; with the ladder off it surfaces to the caller.
    """


class CircuitOpenError(ServingError):
    """A circuit breaker is open: the guarded backend is being rested."""
