"""Particle filtering: state estimation beyond the linear-Gaussian case.

When the dynamics or measurement model is nonlinear (bearing-only
observations, switching behaviors), the Kalman filter's Gaussian belief
is the wrong epistemic representation.  A particle filter carries the
belief as a weighted sample set instead: sequential importance resampling
with systematic resampling and an effective-sample-size trigger, plus the
same model-consistency diagnostics (log likelihood) the KF exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError

TransitionFn = Callable[[np.ndarray, np.random.Generator], np.ndarray]
LikelihoodFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


class ParticleFilter:
    """Sequential importance resampling (SIR) filter.

    Parameters
    ----------
    transition:
        ``f(particles, rng) -> new particles``; operates on the (n, d)
        particle array and injects its own process noise.
    likelihood:
        ``g(particles, measurement) -> per-particle likelihood`` (n,).
    initial_particles:
        (n, d) samples of the prior belief.
    resample_threshold:
        Resample when ESS / n drops below this fraction.
    """

    def __init__(self, transition: TransitionFn, likelihood: LikelihoodFn,
                 initial_particles: np.ndarray,
                 resample_threshold: float = 0.5):
        particles = np.asarray(initial_particles, dtype=float)
        if particles.ndim != 2 or particles.shape[0] < 2:
            raise ModelError("initial_particles must be (n >= 2, d)")
        if not 0.0 < resample_threshold <= 1.0:
            raise ModelError("resample_threshold must be in (0, 1]")
        self.transition = transition
        self.likelihood = likelihood
        self.particles = particles
        self.weights = np.full(particles.shape[0],
                               1.0 / particles.shape[0])
        self.resample_threshold = resample_threshold
        self.n_resamples = 0

    @property
    def n_particles(self) -> int:
        return int(self.particles.shape[0])

    def effective_sample_size(self) -> float:
        return float(1.0 / np.sum(self.weights ** 2))

    def mean(self) -> np.ndarray:
        return self.weights @ self.particles

    def covariance(self) -> np.ndarray:
        centered = self.particles - self.mean()
        return (self.weights[:, None] * centered).T @ centered

    def epistemic_trace(self) -> float:
        """Trace of the belief covariance (matches the KF diagnostic)."""
        return float(np.trace(self.covariance()))

    def _systematic_resample(self, rng: np.random.Generator) -> None:
        n = self.n_particles
        positions = (rng.random() + np.arange(n)) / n
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        indexes = np.searchsorted(cumulative, positions)
        self.particles = self.particles[indexes]
        self.weights = np.full(n, 1.0 / n)
        self.n_resamples += 1

    def step(self, measurement: np.ndarray,
             rng: np.random.Generator) -> float:
        """Predict + weight + (maybe) resample; returns the step's
        log marginal likelihood contribution."""
        self.particles = np.asarray(
            self.transition(self.particles, rng), dtype=float)
        lik = np.asarray(self.likelihood(self.particles,
                                         np.asarray(measurement, dtype=float)),
                         dtype=float)
        if lik.shape != (self.n_particles,):
            raise ModelError("likelihood must return one value per particle")
        if np.any(lik < 0.0):
            raise ModelError("likelihoods must be non-negative")
        unnormalized = self.weights * lik
        marginal = float(unnormalized.sum())
        if marginal <= 0.0:
            raise ModelError(
                "all particle weights vanished — measurement impossible "
                "under the model (or particle set degenerated)")
        self.weights = unnormalized / marginal
        if self.effective_sample_size() < self.resample_threshold * self.n_particles:
            self._systematic_resample(rng)
        return float(np.log(marginal))

    def run(self, measurements: Sequence[np.ndarray],
            rng: np.random.Generator) -> Tuple[List[np.ndarray], float]:
        """Filter a sequence; returns per-step means and total log lik."""
        means, total = [], 0.0
        for z in measurements:
            total += self.step(z, rng)
            means.append(self.mean())
        return means, total

    def __repr__(self) -> str:
        return (f"ParticleFilter(n={self.n_particles}, "
                f"ESS={self.effective_sample_size():.1f})")


def gaussian_likelihood(observation_fn: Callable[[np.ndarray], np.ndarray],
                        noise_std: float) -> LikelihoodFn:
    """Likelihood factory: z = h(x) + N(0, noise_std^2 I)."""
    if noise_std <= 0.0:
        raise ModelError("noise_std must be positive")

    def likelihood(particles: np.ndarray, z: np.ndarray) -> np.ndarray:
        predicted = np.asarray(observation_fn(particles), dtype=float)
        if predicted.ndim == 1:
            predicted = predicted[:, None]
        z = np.atleast_1d(z)
        sq = ((predicted - z[None, :]) ** 2).sum(axis=1)
        # Keep the normalization constant: it cancels within one filter's
        # weights but is essential for comparing marginal likelihoods
        # across competing noise models.
        norm = (2.0 * np.pi * noise_std ** 2) ** (-0.5 * z.size)
        return norm * np.exp(-0.5 * sq / noise_std ** 2)

    return likelihood


def random_walk_transition(process_std: float) -> TransitionFn:
    """Simple diffusion dynamics (the default motion prior)."""
    if process_std <= 0.0:
        raise ModelError("process_std must be positive")

    def transition(particles: np.ndarray,
                   rng: np.random.Generator) -> np.ndarray:
        return particles + rng.normal(0.0, process_std,
                                      size=particles.shape)

    return transition
