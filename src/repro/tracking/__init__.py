"""State estimation: Kalman filtering with innovation-based monitoring.

The paper notes models "can also be a mixture of deterministic and
probabilistic elements" (§II-A); the Kalman filter is the canonical such
mixture — deterministic dynamics plus Gaussian noise — and its innovation
sequence is a calibrated surprise signal: white and chi-square-sized when
the model is right, biased when the model is structurally wrong.  The NIS
(normalized innovation squared) monitor here is the principled version of
the residual surprise monitor, and is applied to both the orbital
third-planet scenario and object tracking in the perception chain.
"""

from repro.tracking.hmm import HiddenMarkovModel, degradation_hmm
from repro.tracking.kalman import KalmanFilter, NISMonitor, constant_velocity_model

__all__ = ["KalmanFilter", "NISMonitor", "constant_velocity_model",
           "HiddenMarkovModel", "degradation_hmm"]
