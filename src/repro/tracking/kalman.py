"""Linear Kalman filter and innovation-based model monitoring.

Implemented from scratch on numpy: predict/update recursions, log
likelihood, and the normalized-innovation-squared (NIS) consistency test.
The filter's error covariance is an explicit, self-assessed *epistemic*
uncertainty; the NIS test checks whether that self-assessment is honest —
persistent NIS inflation is the filter-world signature of a missing model
term (the paper's ontological case), while a merely miscalibrated noise
level shows up as a constant NIS offset (epistemic).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


def _validate_matrix(name: str, m: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    m = np.asarray(m, dtype=float)
    if m.shape != shape:
        raise ModelError(f"{name} must have shape {shape}, got {m.shape}")
    return m


def _validate_covariance(name: str, m: np.ndarray, n: int) -> np.ndarray:
    m = _validate_matrix(name, m, (n, n))
    if not np.allclose(m, m.T, atol=1e-9):
        raise ModelError(f"{name} must be symmetric")
    eigenvalues = np.linalg.eigvalsh(m)
    if np.any(eigenvalues < -1e-9):
        raise ModelError(f"{name} must be positive semi-definite")
    return m


@dataclass
class KalmanStep:
    """Diagnostics of one filter update."""

    state: np.ndarray
    covariance: np.ndarray
    innovation: np.ndarray
    innovation_covariance: np.ndarray
    nis: float
    log_likelihood: float


class KalmanFilter:
    """Linear-Gaussian filter: x' = F x + w,  z = H x + v."""

    def __init__(self, transition: np.ndarray, observation: np.ndarray,
                 process_noise: np.ndarray, measurement_noise: np.ndarray,
                 initial_state: np.ndarray, initial_covariance: np.ndarray):
        self.f = np.asarray(transition, dtype=float)
        if self.f.ndim != 2 or self.f.shape[0] != self.f.shape[1]:
            raise ModelError("transition matrix must be square")
        self.n = self.f.shape[0]
        self.h = np.asarray(observation, dtype=float)
        if self.h.ndim != 2 or self.h.shape[1] != self.n:
            raise ModelError(
                f"observation matrix must have {self.n} columns")
        self.m = self.h.shape[0]
        self.q = _validate_covariance("process_noise", process_noise, self.n)
        self.r = _validate_covariance("measurement_noise", measurement_noise,
                                      self.m)
        self.x = np.asarray(initial_state, dtype=float).reshape(self.n)
        self.p = _validate_covariance("initial_covariance",
                                      initial_covariance, self.n)

    # -- recursions ------------------------------------------------------------

    def predict(self) -> Tuple[np.ndarray, np.ndarray]:
        """Time update; returns the predicted (state, covariance)."""
        self.x = self.f @ self.x
        self.p = self.f @ self.p @ self.f.T + self.q
        return self.x.copy(), self.p.copy()

    def update(self, measurement: np.ndarray) -> KalmanStep:
        """Measurement update; returns full step diagnostics."""
        z = np.asarray(measurement, dtype=float).reshape(self.m)
        innovation = z - self.h @ self.x
        s = self.h @ self.p @ self.h.T + self.r
        s_inv = np.linalg.inv(s)
        gain = self.p @ self.h.T @ s_inv
        self.x = self.x + gain @ innovation
        identity = np.eye(self.n)
        # Joseph form for numerical symmetry.
        factor = identity - gain @ self.h
        self.p = factor @ self.p @ factor.T + gain @ self.r @ gain.T
        nis = float(innovation @ s_inv @ innovation)
        sign, logdet = np.linalg.slogdet(s)
        if sign <= 0:
            raise ModelError("innovation covariance lost positive definiteness")
        log_likelihood = -0.5 * (nis + logdet + self.m * np.log(2 * np.pi))
        return KalmanStep(state=self.x.copy(), covariance=self.p.copy(),
                          innovation=innovation.copy(),
                          innovation_covariance=s, nis=nis,
                          log_likelihood=float(log_likelihood))

    def step(self, measurement: np.ndarray) -> KalmanStep:
        """Predict then update with one measurement."""
        self.predict()
        return self.update(measurement)

    def filter_sequence(self, measurements: Sequence[np.ndarray]
                        ) -> List[KalmanStep]:
        return [self.step(z) for z in measurements]

    def epistemic_trace(self) -> float:
        """Trace of the error covariance — the filter's own uncertainty."""
        return float(np.trace(self.p))

    def __repr__(self) -> str:
        return f"KalmanFilter(n={self.n}, m={self.m})"


def constant_velocity_model(dt: float, process_std: float,
                            measurement_std: float,
                            dims: int = 2) -> Tuple[np.ndarray, np.ndarray,
                                                    np.ndarray, np.ndarray]:
    """(F, H, Q, R) of the standard constant-velocity tracker.

    State per spatial dimension: [position, velocity]; measurements are
    positions.  Q uses the white-acceleration discretization.
    """
    if dt <= 0:
        raise ModelError("dt must be positive")
    if process_std < 0 or measurement_std <= 0:
        raise ModelError("noise levels must be positive")
    f1 = np.array([[1.0, dt], [0.0, 1.0]])
    q1 = process_std ** 2 * np.array([[dt ** 4 / 4, dt ** 3 / 2],
                                      [dt ** 3 / 2, dt ** 2]])
    f = np.kron(np.eye(dims), f1)
    q = np.kron(np.eye(dims), q1)
    h = np.kron(np.eye(dims), np.array([[1.0, 0.0]]))
    r = measurement_std ** 2 * np.eye(dims)
    return f, h, q, r


class NISMonitor:
    """Chi-square consistency test on the innovation sequence.

    Under a correct model, NIS values are chi-square with ``dim`` degrees
    of freedom; the windowed mean times the window size is chi-square with
    ``window * dim`` degrees.  The monitor flags:

    - ``epistemic_alarm`` — windowed mean outside the two-sided band
      (mis-sized noise model: re-estimate Q/R);
    - ``ontological_alarm`` — windowed mean above the one-sided band for
      ``persistence`` consecutive windows (a biased innovation mean, the
      structural-error signature).
    """

    def __init__(self, dim: int, window: int = 20,
                 confidence: float = 0.99, persistence: int = 3):
        if dim < 1 or window < 2 or persistence < 1:
            raise ModelError("invalid monitor configuration")
        if not 0.5 < confidence < 1.0:
            raise ModelError("confidence must be in (0.5, 1)")
        self.dim = dim
        self.window = window
        self.persistence = persistence
        self._recent: Deque[float] = deque(maxlen=window)
        self._exceed_streak = 0
        self._step = 0
        self.epistemic_alarm = False
        self.ontological_alarm_step: Optional[int] = None
        # Chi-square band via the Wilson-Hilferty approximation.
        k = window * dim
        from repro.probability.distributions import normal_ppf
        z = float(normal_ppf(confidence))
        self._upper = k * (1 - 2 / (9 * k) + z * (2 / (9 * k)) ** 0.5) ** 3
        z2 = float(normal_ppf(1 - confidence))
        self._lower = k * (1 - 2 / (9 * k) + z2 * (2 / (9 * k)) ** 0.5) ** 3

    def observe(self, nis: float) -> bool:
        """Feed one NIS value; returns True when any alarm is active.

        Windows are *non-overlapping*: the statistic is evaluated once per
        ``window`` samples, so consecutive evaluations are independent
        under the null and ``persistence`` has its nominal false-alarm
        rate (band miss probability ** persistence).
        """
        if nis < 0:
            raise ModelError("NIS must be non-negative")
        self._step += 1
        self._recent.append(float(nis))
        if len(self._recent) < self.window:
            return self.ontological_alarm_step is not None
        total = sum(self._recent)
        self._recent.clear()
        high = total > self._upper
        low = total < self._lower
        self.epistemic_alarm = high or low
        if high:
            self._exceed_streak += 1
            if (self._exceed_streak >= self.persistence and
                    self.ontological_alarm_step is None):
                self.ontological_alarm_step = self._step
        else:
            self._exceed_streak = 0
        return self.epistemic_alarm or self.ontological_alarm_step is not None

    @property
    def windowed_mean_nis(self) -> float:
        if not self._recent:
            return 0.0
        return float(np.mean(self._recent))
