"""Hidden Markov models: runtime mode estimation under uncertainty.

The SuD's health mode (nominal / degraded / faulty) is not directly
observable; only symptoms are.  An HMM filter maintains the belief over
modes (the runtime twin of the BN diagnostic queries), supporting:

- ``filter``: forward algorithm (online belief),
- ``smooth``: forward-backward (post-drive analysis),
- ``most_likely_path``: Viterbi (incident reconstruction),
- log likelihood (model selection between competing health models).

All from scratch on numpy, in normalized (scaled) form for numerical
stability on long traces.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


class HiddenMarkovModel:
    """Discrete HMM over named hidden states and observation symbols."""

    def __init__(self, states: Sequence[str], symbols: Sequence[str],
                 transition: Mapping[str, Mapping[str, float]],
                 emission: Mapping[str, Mapping[str, float]],
                 initial: Mapping[str, float], *, atol: float = 1e-9):
        self._states = [str(s) for s in states]
        self._symbols = [str(o) for o in symbols]
        if len(set(self._states)) != len(self._states) or not self._states:
            raise ModelError("states must be unique and non-empty")
        if len(set(self._symbols)) != len(self._symbols) or not self._symbols:
            raise ModelError("symbols must be unique and non-empty")
        self._sidx = {s: i for i, s in enumerate(self._states)}
        self._oidx = {o: i for i, o in enumerate(self._symbols)}
        n, m = len(self._states), len(self._symbols)

        self._t = np.zeros((n, n))
        for s, row in transition.items():
            self._require_state(s)
            for dst, p in row.items():
                self._require_state(dst)
                self._t[self._sidx[s], self._sidx[dst]] = float(p)
        self._e = np.zeros((n, m))
        for s, row in emission.items():
            self._require_state(s)
            for symbol, p in row.items():
                if symbol not in self._oidx:
                    raise ModelError(f"unknown symbol {symbol!r}")
                self._e[self._sidx[s], self._oidx[symbol]] = float(p)
        self._pi = np.zeros(n)
        for s, p in initial.items():
            self._require_state(s)
            self._pi[self._sidx[s]] = float(p)

        for name, matrix in (("transition", self._t), ("emission", self._e)):
            if np.any(matrix < -atol):
                raise ModelError(f"{name} has negative probabilities")
            sums = matrix.sum(axis=1)
            if not np.allclose(sums, 1.0, atol=max(atol, 1e-6)):
                raise ModelError(f"{name} rows must sum to 1, got {sums}")
        if abs(self._pi.sum() - 1.0) > max(atol, 1e-6) or np.any(self._pi < -atol):
            raise ModelError("initial distribution must be a distribution")

    def _require_state(self, s: str) -> None:
        if s not in self._sidx:
            raise ModelError(f"unknown state {s!r}")

    @property
    def states(self) -> List[str]:
        return list(self._states)

    def _encode(self, observations: Sequence[str]) -> np.ndarray:
        try:
            return np.array([self._oidx[o] for o in observations], dtype=int)
        except KeyError as exc:
            raise ModelError(
                f"observation {exc} outside the symbol set — an ontological "
                "event for this health model") from None

    # -- inference ----------------------------------------------------------------

    def filter(self, observations: Sequence[str]
               ) -> Tuple[List[Dict[str, float]], float]:
        """Forward algorithm; returns per-step beliefs and log likelihood."""
        obs = self._encode(observations)
        if obs.size == 0:
            raise ModelError("need at least one observation")
        beliefs: List[Dict[str, float]] = []
        log_likelihood = 0.0
        alpha = self._pi * self._e[:, obs[0]]
        for t, o in enumerate(obs):
            if t > 0:
                alpha = (alpha @ self._t) * self._e[:, o]
            total = alpha.sum()
            if total <= 0.0:
                raise ModelError(
                    f"observation sequence impossible under the model at "
                    f"step {t}")
            alpha = alpha / total
            log_likelihood += float(np.log(total))
            beliefs.append({s: float(alpha[i])
                            for i, s in enumerate(self._states)})
        return beliefs, log_likelihood

    def smooth(self, observations: Sequence[str]) -> List[Dict[str, float]]:
        """Forward-backward posterior marginals per step."""
        obs = self._encode(observations)
        n_steps = obs.size
        if n_steps == 0:
            raise ModelError("need at least one observation")
        n = len(self._states)
        alphas = np.zeros((n_steps, n))
        scales = np.zeros(n_steps)
        alpha = self._pi * self._e[:, obs[0]]
        for t in range(n_steps):
            if t > 0:
                alpha = (alpha @ self._t) * self._e[:, obs[t]]
            scales[t] = alpha.sum()
            if scales[t] <= 0.0:
                raise ModelError("impossible observation sequence")
            alpha = alpha / scales[t]
            alphas[t] = alpha
        beta = np.ones(n)
        out: List[Dict[str, float]] = [dict()] * n_steps
        for t in range(n_steps - 1, -1, -1):
            gamma = alphas[t] * beta
            gamma = gamma / gamma.sum()
            out[t] = {s: float(gamma[i]) for i, s in enumerate(self._states)}
            if t > 0:
                beta = (self._t @ (self._e[:, obs[t]] * beta)) / scales[t]
        return out

    def most_likely_path(self, observations: Sequence[str]) -> List[str]:
        """Viterbi decoding in log space."""
        obs = self._encode(observations)
        if obs.size == 0:
            raise ModelError("need at least one observation")
        with np.errstate(divide="ignore"):
            log_t = np.log(self._t)
            log_e = np.log(self._e)
            log_pi = np.log(self._pi)
        n_steps, n = obs.size, len(self._states)
        delta = log_pi + log_e[:, obs[0]]
        back = np.zeros((n_steps, n), dtype=int)
        for t in range(1, n_steps):
            candidate = delta[:, None] + log_t
            back[t] = np.argmax(candidate, axis=0)
            delta = candidate[back[t], np.arange(n)] + log_e[:, obs[t]]
        path = [int(np.argmax(delta))]
        for t in range(n_steps - 1, 0, -1):
            path.append(int(back[t, path[-1]]))
        return [self._states[i] for i in reversed(path)]

    def log_likelihood(self, observations: Sequence[str]) -> float:
        return self.filter(observations)[1]

    def sample(self, rng: np.random.Generator, n_steps: int
               ) -> Tuple[List[str], List[str]]:
        """Generate (hidden path, observations)."""
        if n_steps <= 0:
            raise ModelError("n_steps must be positive")
        states, symbols = [], []
        i = int(rng.choice(len(self._states), p=self._pi))
        for _ in range(n_steps):
            states.append(self._states[i])
            o = int(rng.choice(len(self._symbols), p=self._e[i]))
            symbols.append(self._symbols[o])
            i = int(rng.choice(len(self._states), p=self._t[i]))
        return states, symbols

    def __repr__(self) -> str:
        return (f"HiddenMarkovModel(states={len(self._states)}, "
                f"symbols={len(self._symbols)})")


def degradation_hmm(p_degrade: float = 0.02, p_fail: float = 0.05,
                    p_repair: float = 0.1,
                    symptom_rates: Optional[Mapping[str, float]] = None
                    ) -> HiddenMarkovModel:
    """A standard 3-mode health model: nominal -> degraded -> faulty.

    ``symptom_rates[s]`` is P(symptom | mode s); the default makes
    symptoms rare in nominal, common in degraded, near-certain in faulty.
    """
    rates = dict(symptom_rates or
                 {"nominal": 0.02, "degraded": 0.4, "faulty": 0.95})
    for mode in ("nominal", "degraded", "faulty"):
        if mode not in rates or not 0.0 <= rates[mode] <= 1.0:
            raise ModelError(f"symptom rate for {mode!r} must be in [0, 1]")
    return HiddenMarkovModel(
        states=["nominal", "degraded", "faulty"],
        symbols=["ok", "symptom"],
        transition={
            "nominal": {"nominal": 1 - p_degrade, "degraded": p_degrade},
            "degraded": {"nominal": p_repair,
                         "degraded": 1 - p_repair - p_fail,
                         "faulty": p_fail},
            "faulty": {"faulty": 1.0},
        },
        emission={mode: {"symptom": rates[mode], "ok": 1 - rates[mode]}
                  for mode in ("nominal", "degraded", "faulty")},
        initial={"nominal": 1.0},
    )
