"""repro — a reproduction of "System Theoretic View on Uncertainties".

Gansch & Adee, DATE 2020.  An uncertainty-engineering framework for
safety-critical autonomous systems: the aleatory / epistemic / ontological
taxonomy and its means (prevention, removal, tolerance, forecasting),
together with every substrate the paper builds on — Bayesian networks,
Dempster-Shafer evidence theory, fault tree analysis, an orbital-mechanics
two-planet universe, and a perception-chain simulator.

Quick start::

    from repro.perception import build_fig4_network
    bn = build_fig4_network()                      # the paper's Fig. 4 / Table I
    bn.query("ground_truth", {"perception": "none"})

See README.md for the architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

from repro.core.strategy import StrategyPlan, derive_strategy
from repro.core.taxonomy import (
    LifecycleStage,
    Means,
    Method,
    MethodRegistry,
    UncertaintyType,
    builtin_registry,
)
from repro.core.uncertainty import (
    AleatoryUncertainty,
    EpistemicUncertainty,
    OntologicalUncertainty,
    Uncertainty,
    UncertaintyBudget,
)

__version__ = "1.0.0"

__all__ = [
    "LifecycleStage",
    "Means",
    "Method",
    "MethodRegistry",
    "UncertaintyType",
    "builtin_registry",
    "AleatoryUncertainty",
    "EpistemicUncertainty",
    "OntologicalUncertainty",
    "Uncertainty",
    "UncertaintyBudget",
    "StrategyPlan",
    "derive_strategy",
    "__version__",
]
