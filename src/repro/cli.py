"""Command-line interface: regenerate paper artifacts without pytest.

``python -m repro <command>`` (or the ``repro`` console script):

- ``fig4``        — the Fig. 4 forward and diagnostic tables;
- ``table1``      — Table I, elicited vs repaired, with the defect note;
- ``strategy``    — the builtin-registry strategy for the paper's budget;
- ``matrix``      — the Fig. 3 means x type coverage matrix;
- ``dossier``     — a full uncertainty dossier for the demo SuD;
- ``experiments`` — list every experiment id and its benchmark module;
- ``inject``      — inject one fault model into the perception stack;
- ``campaign``    — the full fault-injection campaign (EXT-N report);
- ``trace``       — run a command under tracing, print its span tree;
- ``metrics``     — run a command, emit Prometheus-text (or JSON) metrics;
- ``serve``       — run the resilient inference service over HTTP;
- ``slo``         — drive the service locally and print SLO burn rates;
- ``flightrec``   — replay a flight-recorder JSONL dump.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple


def _print_table(header: List[str], rows: List[tuple]) -> None:
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(header)]
    line = " | ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def cmd_fig4(args: argparse.Namespace) -> None:
    from repro.bayesnet.engine import CompiledNetwork
    from repro.perception.chain import build_fig4_network
    engine = CompiledNetwork(build_fig4_network(),
                             cache_size=getattr(args, "engine_cache_size",
                                                None),
                             batch_dtype=getattr(args, "batch_dtype",
                                                 "float64"))
    route = bool(getattr(args, "route", False))
    budget = getattr(args, "error_budget", None)
    print("Fig. 4 network:", engine.network)
    print("\nForward P(perception):")
    _print_table(["state", "probability"],
                 list(engine.query("perception").items()))
    print("\nDiagnostic P(ground truth | perception):")
    outputs = ("car", "pedestrian", "car/pedestrian", "none")
    rows_in = [{"perception": o} for o in outputs]
    if route or budget is not None:
        posts = engine.query_batch("ground_truth", rows_in,
                                   route=True, error_budget=budget)
    else:
        posts = engine.query_batch("ground_truth", rows_in)
    rows = [(o, post["car"], post["pedestrian"], post["unknown"])
            for o, post in zip(outputs, posts)]
    _print_table(["evidence", "P(car)", "P(ped)", "P(unknown)"], rows)
    stats = engine.stats
    print(f"\nengine: {stats.queries} scalar + {stats.batch_queries} batched "
          f"queries ({stats.batch_rows} rows), plan hit rate "
          f"{stats.plan_hit_rate:.2f}, evidence-cache hit rate "
          f"{stats.evidence_cache_hit_rate:.2f}, "
          f"{stats.recompiles} compile(s)")
    if route or budget is not None:
        snap = engine.planner().snapshot()
        routed = ", ".join(f"{backend}={count}" for backend, count
                           in sorted(snap["routes"].items()))
        print(f"planner: routes [{routed}], "
              f"{snap['fallbacks']} fallback(s), "
              f"error budget {budget if budget is not None else 0.0:g}")


def cmd_table1(_: argparse.Namespace) -> None:
    from repro.perception.chain import PAPER_TABLE1_RAW, table1_cpt_rows
    print("Table I as printed (NOTE: the unknown row sums to 0.9 — a "
          "published defect; see EXPERIMENTS.md):")
    states = ("car", "pedestrian", "car/pedestrian", "none")
    rows = [(truth, *(row[s] for s in states))
            for truth, row in PAPER_TABLE1_RAW.items()]
    _print_table(["ground truth", *states], rows)
    print("\nRepaired (renormalize):")
    repaired = table1_cpt_rows("renormalize")
    rows = [(truth[0], *(row[s] for s in states))
            for truth, row in repaired.items()]
    _print_table(["ground truth", *states], rows)


def cmd_strategy(_: argparse.Namespace) -> None:
    from repro.core.strategy import derive_strategy
    from repro.core.taxonomy import builtin_registry
    from repro.core.uncertainty import (
        AleatoryUncertainty,
        EpistemicUncertainty,
        OntologicalUncertainty,
        UncertaintyBudget,
    )
    from repro.probability.distributions import Categorical, Dirichlet
    budget = UncertaintyBudget("HAD perception chain")
    budget.add(AleatoryUncertainty(
        "encounter_distribution",
        Categorical({"car": 0.6, "pedestrian": 0.3, "unknown": 0.1})))
    budget.add(EpistemicUncertainty(
        "classifier_performance", Dirichlet({"hit": 9.0, "miss": 1.0})))
    budget.add(OntologicalUncertainty("unknown_objects", 0.1))
    plan = derive_strategy(budget, builtin_registry(),
                           max_methods_per_uncertainty=2)
    print("\n".join(plan.summary_lines()))


def cmd_matrix(_: argparse.Namespace) -> None:
    from repro.core.taxonomy import Means, UncertaintyType, builtin_registry
    reg = builtin_registry()
    matrix = reg.coverage_matrix()
    rows = []
    for means in Means:
        for utype in UncertaintyType:
            names = matrix[(means, utype)]
            rows.append((means.value, utype.value,
                         ", ".join(sorted(names)) or "--- GAP ---"))
    _print_table(["means", "uncertainty type", "methods"], rows)


def cmd_dossier(_: argparse.Namespace) -> None:
    import subprocess
    # The example script is the canonical dossier demo; reuse it.
    from pathlib import Path
    example = Path(__file__).resolve().parents[2] / "examples" / \
        "uncertainty_dossier.py"
    if example.exists():
        subprocess.run([sys.executable, str(example)], check=True)
    else:  # installed without the examples tree: inline minimal dossier
        from repro.core.report import UncertaintyDossier
        from repro.means.removal import SafetyAnalysisWithUncertainty
        dossier = UncertaintyDossier("demo SuD")
        dossier.attach_safety_analysis(SafetyAnalysisWithUncertainty())
        print(dossier.to_markdown())


def cmd_experiments(_: argparse.Namespace) -> None:
    experiments = [
        ("FIG1", "cybernetic development loop", "test_bench_fig1_lifecycle"),
        ("FIG2", "modeling relation, models A & B",
         "test_bench_fig2_modeling_relation"),
        ("FIG3", "means x type taxonomy", "test_bench_fig3_means_taxonomy"),
        ("FIG4", "perception-chain BN", "test_bench_fig4_bayesnet"),
        ("TAB1", "Table I re-estimation", "test_bench_table1_cpt"),
        ("EXT-A", "epistemic convergence", "test_bench_epistemic_convergence"),
        ("EXT-B", "ontological surprise", "test_bench_ontological_surprise"),
        ("EXT-C", "evidential vs Bayesian", "test_bench_evidential_network"),
        ("EXT-D", "FTA vs fuzzy vs BN", "test_bench_fta_comparison"),
        ("EXT-E", "diverse redundancy", "test_bench_redundancy"),
        ("EXT-F", "forecasting / release", "test_bench_forecasting"),
        ("EXT-G", "good regulator theorem", "test_bench_good_regulator"),
        ("EXT-H", "BN scalability", "test_bench_bn_scalability"),
        ("EXT-I", "probabilistic verification", "test_bench_verification"),
        ("EXT-J", "calibration + tornado", "test_bench_calibration"),
        ("EXT-K", "dynamic FTA + CCF", "test_bench_dynamic_fta"),
        ("EXT-L", "scenario falsification", "test_bench_falsification"),
        ("EXT-M", "runtime health management",
         "test_bench_health_management"),
        ("EXT-N", "fault-injection campaign",
         "test_bench_fault_injection"),
        ("EXT-O", "compiled-engine query cache",
         "test_bench_engine_cache"),
        ("EXT-P", "telemetry overhead",
         "test_bench_telemetry"),
        ("EXT-Q", "vectorized sampling + parallel scaling",
         "test_bench_parallel_sampling"),
        ("EXT-R", "incremental evidence propagation",
         "test_bench_incremental_evidence"),
        ("EXT-S", "serving availability under faults",
         "test_bench_serving"),
        ("EXT-T", "batched clique calibration",
         "test_bench_batched_calibration"),
        ("EXT-U", "observability overhead (correlation + SLO)",
         "test_bench_observe"),
        ("EXT-V", "adaptive query planner routing",
         "test_bench_router"),
    ]
    _print_table(["id", "artifact", "benchmark module"], experiments)
    print("\nRun one with:  pytest benchmarks/<module>.py --benchmark-only -s")


def cmd_inject(args: argparse.Namespace) -> None:
    from repro.robustness.campaign import (
        CampaignConfig,
        fault_uncertainty_type,
        run_cell,
    )
    config = CampaignConfig(seed=args.seed, trials=args.trials,
                            fault_names=(args.fault,),
                            intensities=(args.intensity,),
                            n_channels=args.channels, fusion=args.fusion)
    cell = run_cell(config, args.fault, args.intensity)
    print(f"Fault {args.fault!r} (emulates "
          f"{fault_uncertainty_type(args.fault)} uncertainty) at intensity "
          f"{args.intensity:g}, {args.trials} trials, seed {args.seed}:\n")
    _print_table(
        ["architecture", "hazard rate", "degraded rate", "availability",
         "timeout rate"],
        [("single chain (unsupervised)", cell.single.hazard_rate,
          cell.single.degraded_rate, cell.single.availability,
          cell.single.timeout_rate),
         (f"redundant x{args.channels} + supervisor",
          cell.supervised.hazard_rate, cell.supervised.degraded_rate,
          cell.supervised.availability, cell.supervised.timeout_rate)])
    print(f"\nhazard reduction: {cell.hazard_reduction:+.4f}")


def _parse_shard_spec(spec: Optional[str]) -> Optional[Tuple[int, int]]:
    """Parse an ``I/M`` shard spec (validated fully by run_campaign)."""
    if spec is None:
        return None
    from repro.errors import InjectionError
    index, sep, count = spec.partition("/")
    try:
        if not sep:
            raise ValueError(spec)
        return int(index), int(count)
    except ValueError:
        raise InjectionError(
            f"--shard must look like I/M (e.g. 0/4), got {spec!r}") from None


def cmd_campaign(args: argparse.Namespace) -> None:
    from repro.bayesnet.engine import CompiledNetwork
    from repro.perception.chain import build_fig4_network
    from repro.robustness.campaign import CampaignConfig, run_campaign
    cache_size = getattr(args, "engine_cache_size", None)
    config = CampaignConfig(seed=args.seed, trials=args.trials,
                            intensities=tuple(args.intensities),
                            n_channels=args.channels, fusion=args.fusion,
                            workers=getattr(args, "workers", 1),
                            backend=getattr(args, "backend", None),
                            shards=getattr(args, "shards", None),
                            engine_cache_size=cache_size,
                            error_budget=getattr(args, "error_budget", None))
    engine = CompiledNetwork(build_fig4_network(), cache_size=cache_size)
    shard = _parse_shard_spec(getattr(args, "shard", None))
    report = run_campaign(config, engine=engine, shard=shard)
    if getattr(args, "json", False):
        print(report.to_json())
    else:
        print(report.to_markdown())


def cmd_trace(args: argparse.Namespace) -> None:
    from repro import telemetry
    target = args.target
    with telemetry.session(max_spans=args.max_spans) as tracer:
        with tracer.span("trace:" + target):
            COMMANDS[target](args)
    print()
    print(tracer.render_tree())
    if args.jsonl:
        n = telemetry.write_spans_jsonl(args.jsonl, tracer.finished)
        print(f"\nwrote {n} span(s) to {args.jsonl}")


def cmd_metrics(args: argparse.Namespace) -> None:
    import contextlib
    import io
    import json
    from repro import telemetry
    if args.target:
        # Run the target under an active tracing session so gated
        # instruments (engine counters/histograms) record, but keep only
        # the metrics: the command's own stdout is swallowed.
        with telemetry.session():
            with contextlib.redirect_stdout(io.StringIO()):
                COMMANDS[args.target](args)
    if getattr(args, "json", False):
        print(json.dumps(telemetry.metrics_to_dict(), indent=2,
                         sort_keys=True))
    else:
        print(telemetry.prometheus_text(), end="")


def cmd_serve(args: argparse.Namespace) -> None:
    from repro import telemetry
    from repro.perception.chain import build_fig4_network
    from repro.robustness.faults import LatencyFault
    from repro.serving import InferenceService
    from repro.serving.http import serve
    faults = []
    if args.inject_latency > 0.0:
        faults.append(LatencyFault(intensity=args.inject_latency,
                                   seed=args.seed,
                                   mean_delay=args.mean_delay))
    service = InferenceService(
        build_fig4_network(), pool_size=args.pool_size,
        max_queue=args.max_queue,
        default_deadline=args.deadline_ms / 1000.0,
        ladder=not args.no_ladder, fault_injector=faults, seed=args.seed,
        microbatch_window=args.microbatch_window / 1000.0,
        flight_dump_path=args.flight_jsonl,
        error_budget=getattr(args, "error_budget", None),
        disabled_tiers=tuple(getattr(args, "kill_tier", None) or ()))
    tracer = telemetry.activate() if args.trace_jsonl else None
    profiler = None
    if args.profile:
        profiler = telemetry.SamplingProfiler().start()
    server = serve(service, host=args.host, port=args.port,
                   max_requests=args.max_requests)
    ladder = "on" if service.ladder_enabled else "off"
    chaos = (f", chaos latency intensity {args.inject_latency:g} "
             f"(mean {args.mean_delay:g}s)" if faults else "")
    if service.disabled_tiers:
        chaos += f", killed tiers {sorted(service.disabled_tiers)}"
    if service.default_error_budget is not None:
        chaos += f", error budget {service.default_error_budget:g}"
    coalesce = (f", microbatch window {args.microbatch_window:g}ms"
                if args.microbatch_window > 0.0 else "")
    print(f"repro serve: {service._network.name} on "
          f"http://{args.host}:{server.port}  "
          f"(pool={args.pool_size}, deadline={args.deadline_ms:g}ms, "
          f"ladder {ladder}{chaos}{coalesce})")
    print("endpoints: POST /query   POST /batch   GET /health   GET /metrics")

    import signal

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    # Install explicitly: a backgrounded server inherits SIGINT ignored
    # from non-interactive shells (CI), which would make `kill -INT` a
    # no-op instead of a clean shutdown.
    signal.signal(signal.SIGTERM, _interrupt)
    signal.signal(signal.SIGINT, _interrupt)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()  # dumps the flight ring when --flight-jsonl is set
        if args.flight_jsonl:
            print(f"wrote flight events to {args.flight_jsonl}")
        if tracer is not None:
            telemetry.deactivate()
            n = telemetry.write_spans_jsonl(args.trace_jsonl,
                                            tracer.finished)
            print(f"wrote {n} span(s) to {args.trace_jsonl}")
        if profiler is not None:
            profiler.stop()
            stacks = profiler.write_collapsed(args.profile)
            print(f"wrote {stacks} collapsed stack(s) "
                  f"({profiler.samples} samples) to {args.profile}")


def cmd_slo(args: argparse.Namespace) -> None:
    import json
    from repro.errors import ReproError
    from repro.perception.chain import build_fig4_network
    from repro.robustness.faults import LatencyFault
    from repro.serving import InferenceService
    faults = []
    if args.inject_latency > 0.0:
        faults.append(LatencyFault(intensity=args.inject_latency,
                                   seed=args.seed,
                                   mean_delay=args.mean_delay))
    service = InferenceService(
        build_fig4_network(), default_deadline=args.deadline_ms / 1000.0,
        fault_injector=faults, seed=args.seed)
    outputs = ("car", "pedestrian", "car/pedestrian", "none")
    try:
        for i in range(args.requests):
            try:
                service.submit("ground_truth",
                               {"perception": outputs[i % len(outputs)]})
            except ReproError:
                pass  # sheds/errors still charge the SLOs
        snapshot = service.slo.snapshot()
    finally:
        service.close()
    if getattr(args, "json", False):
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return
    print(f"SLOs after {args.requests} request(s) "
          f"(deadline {args.deadline_ms:g}ms"
          + (f", chaos latency intensity {args.inject_latency:g}"
             if faults else "") + "):\n")
    rows = []
    for entry in snapshot["objectives"]:
        burns = entry["burn_rates"]
        detail = (f"budget={entry['budget']:g} spent={entry['spent']:g}"
                  if entry["kind"] == "uncertainty"
                  else f"target={entry['target']:g} bad={entry['bad_events']}")
        rows.append((entry["name"], entry["kind"], entry["events"],
                     burns.get("300s", 0.0), burns.get("3600s", 0.0),
                     entry["budget_remaining"], detail))
    _print_table(["objective", "kind", "events", "burn 300s", "burn 3600s",
                  "budget left", "detail"], rows)
    totals = snapshot["totals"]
    print(f"\ntotals: {totals['events']} event(s), uncertainty spent "
          f"{totals['uncertainty_spent']:g}")
    print("alert rule of thumb: page when burn 300s AND burn 3600s "
          "both exceed 14.4 (2% of budget per hour)")


def cmd_flightrec(args: argparse.Namespace) -> None:
    from repro.telemetry.observe import load_flight_jsonl
    events = load_flight_jsonl(args.path)
    if args.kind:
        events = [e for e in events if e.get("kind") == args.kind]
    if args.request_id:
        events = [e for e in events
                  if e.get("request_id") == args.request_id]
    if not events:
        print("no matching flight events")
        return
    if args.counts:
        counts: Dict[str, int] = {}
        for event in events:
            kind = str(event.get("kind"))
            counts[kind] = counts.get(kind, 0) + 1
        _print_table(["kind", "events"], sorted(counts.items()))
        return
    t0 = events[0].get("wall", 0.0)
    rows = []
    for event in events:
        data = " ".join(f"{k}={v}" for k, v in
                        sorted(event.get("data", {}).items()))
        rows.append((event.get("seq"),
                     f"+{event.get('wall', t0) - t0:.3f}s",
                     event.get("kind"), event.get("request_id") or "-",
                     data))
    _print_table(["seq", "t", "kind", "request_id", "data"], rows)
    print(f"\n{len(rows)} event(s) replayed from {args.path}")


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig4": cmd_fig4,
    "table1": cmd_table1,
    "strategy": cmd_strategy,
    "matrix": cmd_matrix,
    "dossier": cmd_dossier,
    "experiments": cmd_experiments,
    "inject": cmd_inject,
    "campaign": cmd_campaign,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "serve": cmd_serve,
    "slo": cmd_slo,
    "flightrec": cmd_flightrec,
}

#: Commands that can run under ``trace`` / ``metrics``.
_TRACEABLE_COMMANDS = ("fig4", "table1", "strategy", "matrix",
                       "experiments", "campaign")

#: Commands that take no options (a bare subparser each).
_SIMPLE_COMMANDS = ("table1", "strategy", "matrix", "dossier",
                    "experiments")


def _build_parser() -> argparse.ArgumentParser:
    # Imported here, like the command bodies, to keep module import light.
    from repro.robustness.campaign import FAULT_CATALOG
    from repro.perception.redundancy import RedundantPerceptionSystem
    parser = argparse.ArgumentParser(
        prog="repro",
        description="System Theoretic View on Uncertainties — reproduction "
                    "CLI (DATE 2020)")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    for name in _SIMPLE_COMMANDS:
        sub.add_parser(name, help=f"regenerate the {name} artifact")

    fig4 = sub.add_parser(
        "fig4", help="regenerate the fig4 artifact")

    inject = sub.add_parser(
        "inject", help="inject one fault model into the perception stack")
    inject.add_argument("--fault", required=True,
                        choices=sorted(FAULT_CATALOG),
                        help="fault model to inject")
    inject.add_argument("--intensity", type=float, default=0.5,
                        help="fault intensity in [0, 1] (default 0.5)")

    campaign = sub.add_parser(
        "campaign", help="run the full fault-injection campaign (EXT-N)")
    campaign.add_argument("--intensities", type=float, nargs="+",
                          default=[0.25, 0.5, 1.0],
                          help="intensity sweep (default: 0.25 0.5 1.0)")
    campaign.add_argument("--shard", default=None, metavar="I/M",
                          help="run only shard I of M (0-based; e.g. 0/4) "
                               "and print that fragment; merge fragments "
                               "with repro.robustness.campaign."
                               "merge_campaign_reports")
    campaign.add_argument("--json", action="store_true",
                          help="print the canonical JSON report instead of "
                               "markdown (byte-identical across backends, "
                               "worker and shard counts)")

    trace = sub.add_parser(
        "trace", help="run a command under tracing and print its span tree")
    trace.add_argument("target", choices=_TRACEABLE_COMMANDS,
                       help="command to run under the tracer")
    trace.add_argument("--max-spans", type=int, default=4096,
                       help="span ring-buffer capacity (default 4096)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also dump the finished spans as JSON lines")

    metrics = sub.add_parser(
        "metrics", help="emit Prometheus-text metrics, optionally after "
                        "running a command")
    metrics.add_argument("target", nargs="?", default=None,
                         choices=_TRACEABLE_COMMANDS,
                         help="command to run before scraping the registry")
    metrics.add_argument("--json", action="store_true",
                         help="emit the registry as a JSON document instead "
                              "of Prometheus text")

    slo = sub.add_parser(
        "slo", help="drive the service locally and print SLO burn rates")
    slo.add_argument("--requests", type=int, default=50,
                     help="queries to drive through the service "
                          "(default 50)")
    slo.add_argument("--deadline-ms", type=float, default=100.0,
                     help="per-request budget in ms (default 100)")
    slo.add_argument("--inject-latency", type=float, default=0.0,
                     metavar="INTENSITY",
                     help="chaos hook: LatencyFault firing probability "
                          "(default 0 = off)")
    slo.add_argument("--mean-delay", type=float, default=0.25,
                     help="mean injected latency spike in seconds "
                          "(default 0.25)")
    slo.add_argument("--seed", type=int, default=0,
                     help="chaos / sampler seed (default 0)")
    slo.add_argument("--json", action="store_true",
                     help="emit the SLO snapshot as JSON")

    flightrec = sub.add_parser(
        "flightrec", help="replay a flight-recorder JSONL dump")
    flightrec.add_argument("path", help="flight-recorder JSONL file "
                                        "(serve --flight-jsonl)")
    flightrec.add_argument("--kind", default=None,
                           help="only events of this kind (admit, shed, "
                                "ladder, deadline, breaker, microbatch, "
                                "error)")
    flightrec.add_argument("--request-id", default=None,
                           help="only events correlated to this request id")
    flightrec.add_argument("--counts", action="store_true",
                           help="print per-kind counts instead of the "
                                "event log")

    serve_p = sub.add_parser(
        "serve", help="run the resilient inference service over HTTP")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8731,
                         help="bind port (default 8731; 0 = ephemeral)")
    serve_p.add_argument("--pool-size", type=int, default=2,
                         help="prewarmed engine forks (default 2)")
    serve_p.add_argument("--max-queue", type=int, default=8,
                         help="bounded lease-wait queue; arrivals beyond "
                              "it are shed with 429 (default 8)")
    serve_p.add_argument("--deadline-ms", type=float, default=100.0,
                         help="default per-request budget in ms "
                              "(default 100)")
    serve_p.add_argument("--no-ladder", action="store_true",
                         help="disable graceful degradation: deadline and "
                              "backend failures surface as errors")
    serve_p.add_argument("--inject-latency", type=float, default=0.0,
                         metavar="INTENSITY",
                         help="chaos hook: LatencyFault firing probability "
                              "in [0, 1] against the exact backend "
                              "(default 0 = off)")
    serve_p.add_argument("--mean-delay", type=float, default=0.25,
                         help="mean injected latency spike in seconds "
                              "(default 0.25)")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="seed for chaos faults and the approximate "
                              "tier's sampler (default 0)")
    serve_p.add_argument("--max-requests", type=int, default=None,
                         metavar="N",
                         help="shut down after N /query requests "
                              "(smoke tests; default: run forever)")
    serve_p.add_argument("--microbatch-window", type=float, default=0.0,
                         metavar="MS",
                         help="coalesce concurrent exact queries arriving "
                              "within this window (ms) into one batched "
                              "calibration (default 0 = off)")
    serve_p.add_argument("--trace-jsonl", default=None, metavar="PATH",
                         help="run under tracing; dump request-correlated "
                              "spans as JSON lines on shutdown")
    serve_p.add_argument("--flight-jsonl", default=None, metavar="PATH",
                         help="dump the flight-recorder ring here on "
                              "shutdown and after hard failures")
    serve_p.add_argument("--profile", default=None, metavar="PATH",
                         help="run under the sampling profiler; write "
                              "collapsed stacks here on shutdown")
    serve_p.add_argument("--kill-tier", action="append", default=None,
                         metavar="TIER",
                         choices=("exact", "cache", "approximate"),
                         help="chaos hook: disable a ladder tier so it "
                              "refuses every request (repeatable; the "
                              "stale floor cannot be killed)")

    fig4.add_argument("--route", action="store_true",
                      help="answer the diagnostic sweep through the "
                           "adaptive query planner (cost-model-driven "
                           "backend routing)")
    for p in (fig4, campaign, serve_p):
        p.add_argument("--error-budget", type=float, default=None,
                       metavar="E",
                       help="max acceptable posterior error: the planner "
                            "picks the cheapest backend whose predicted "
                            "error fits E (default: exact-only)")

    for p in (trace, metrics):
        p.add_argument("--intensities", type=float, nargs="+",
                       default=[0.25, 0.5, 1.0],
                       help="intensity sweep when target is 'campaign'")

    for p in (fig4, campaign, trace, metrics):
        p.add_argument("--engine-cache-size", type=int, default=None,
                       metavar="N",
                       help="evidence-keyed posterior cache capacity "
                            "(default: engine default; 0 disables)")

    fig4.add_argument("--batch-dtype", choices=("float32", "float64"),
                      default="float64",
                      help="dtype of stacked batched calibration "
                           "(float32 trades ~1e-6 accuracy for half the "
                           "memory bandwidth; default float64)")

    for p in (campaign, trace, metrics):
        p.add_argument("--workers", type=int, default=1,
                       help="parallel workers for the campaign grid "
                            "(default 1 = serial)")
        p.add_argument("--backend", default=None,
                       choices=("serial", "thread", "process"),
                       help="parallel backend (default: serial for 1 "
                            "worker, thread otherwise); results are "
                            "byte-identical across backends")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="split the campaign grid into exactly N "
                            "cost-balanced chunks (default: adaptive); "
                            "results are byte-identical at every count")

    for p in (inject, campaign, trace, metrics):
        p.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
        p.add_argument("--trials", type=int, default=200,
                       help="encounters per cell (default 200)")
        p.add_argument("--channels", type=int, default=3,
                       help="redundant channels in the tolerant stack")
        p.add_argument("--fusion", default="conservative",
                       choices=RedundantPerceptionSystem.FUSIONS,
                       help="fusion rule of the tolerant stack")
    return parser


def main(argv: List[str] = None) -> int:
    from repro.errors import ReproError
    args = _build_parser().parse_args(argv)
    try:
        COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
