"""Command-line interface: regenerate paper artifacts without pytest.

``python -m repro <command>`` (or the ``repro`` console script):

- ``fig4``        — the Fig. 4 forward and diagnostic tables;
- ``table1``      — Table I, elicited vs repaired, with the defect note;
- ``strategy``    — the builtin-registry strategy for the paper's budget;
- ``matrix``      — the Fig. 3 means x type coverage matrix;
- ``dossier``     — a full uncertainty dossier for the demo SuD;
- ``experiments`` — list every experiment id and its benchmark module.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _print_table(header: List[str], rows: List[tuple]) -> None:
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(header)]
    line = " | ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def cmd_fig4(_: argparse.Namespace) -> None:
    from repro.perception.chain import build_fig4_network
    bn = build_fig4_network()
    print("Fig. 4 network:", bn)
    print("\nForward P(perception):")
    _print_table(["state", "probability"],
                 list(bn.query("perception").items()))
    print("\nDiagnostic P(ground truth | perception):")
    rows = []
    for output in ("car", "pedestrian", "car/pedestrian", "none"):
        post = bn.query("ground_truth", {"perception": output})
        rows.append((output, post["car"], post["pedestrian"],
                     post["unknown"]))
    _print_table(["evidence", "P(car)", "P(ped)", "P(unknown)"], rows)


def cmd_table1(_: argparse.Namespace) -> None:
    from repro.perception.chain import PAPER_TABLE1_RAW, table1_cpt_rows
    print("Table I as printed (NOTE: the unknown row sums to 0.9 — a "
          "published defect; see EXPERIMENTS.md):")
    states = ("car", "pedestrian", "car/pedestrian", "none")
    rows = [(truth, *(row[s] for s in states))
            for truth, row in PAPER_TABLE1_RAW.items()]
    _print_table(["ground truth", *states], rows)
    print("\nRepaired (renormalize):")
    repaired = table1_cpt_rows("renormalize")
    rows = [(truth[0], *(row[s] for s in states))
            for truth, row in repaired.items()]
    _print_table(["ground truth", *states], rows)


def cmd_strategy(_: argparse.Namespace) -> None:
    from repro.core.strategy import derive_strategy
    from repro.core.taxonomy import builtin_registry
    from repro.core.uncertainty import (
        AleatoryUncertainty,
        EpistemicUncertainty,
        OntologicalUncertainty,
        UncertaintyBudget,
    )
    from repro.probability.distributions import Categorical, Dirichlet
    budget = UncertaintyBudget("HAD perception chain")
    budget.add(AleatoryUncertainty(
        "encounter_distribution",
        Categorical({"car": 0.6, "pedestrian": 0.3, "unknown": 0.1})))
    budget.add(EpistemicUncertainty(
        "classifier_performance", Dirichlet({"hit": 9.0, "miss": 1.0})))
    budget.add(OntologicalUncertainty("unknown_objects", 0.1))
    plan = derive_strategy(budget, builtin_registry(),
                           max_methods_per_uncertainty=2)
    print("\n".join(plan.summary_lines()))


def cmd_matrix(_: argparse.Namespace) -> None:
    from repro.core.taxonomy import Means, UncertaintyType, builtin_registry
    reg = builtin_registry()
    matrix = reg.coverage_matrix()
    rows = []
    for means in Means:
        for utype in UncertaintyType:
            names = matrix[(means, utype)]
            rows.append((means.value, utype.value,
                         ", ".join(sorted(names)) or "--- GAP ---"))
    _print_table(["means", "uncertainty type", "methods"], rows)


def cmd_dossier(_: argparse.Namespace) -> None:
    import subprocess
    # The example script is the canonical dossier demo; reuse it.
    from pathlib import Path
    example = Path(__file__).resolve().parents[2] / "examples" / \
        "uncertainty_dossier.py"
    if example.exists():
        subprocess.run([sys.executable, str(example)], check=True)
    else:  # installed without the examples tree: inline minimal dossier
        from repro.core.report import UncertaintyDossier
        from repro.means.removal import SafetyAnalysisWithUncertainty
        dossier = UncertaintyDossier("demo SuD")
        dossier.attach_safety_analysis(SafetyAnalysisWithUncertainty())
        print(dossier.to_markdown())


def cmd_experiments(_: argparse.Namespace) -> None:
    experiments = [
        ("FIG1", "cybernetic development loop", "test_bench_fig1_lifecycle"),
        ("FIG2", "modeling relation, models A & B",
         "test_bench_fig2_modeling_relation"),
        ("FIG3", "means x type taxonomy", "test_bench_fig3_means_taxonomy"),
        ("FIG4", "perception-chain BN", "test_bench_fig4_bayesnet"),
        ("TAB1", "Table I re-estimation", "test_bench_table1_cpt"),
        ("EXT-A", "epistemic convergence", "test_bench_epistemic_convergence"),
        ("EXT-B", "ontological surprise", "test_bench_ontological_surprise"),
        ("EXT-C", "evidential vs Bayesian", "test_bench_evidential_network"),
        ("EXT-D", "FTA vs fuzzy vs BN", "test_bench_fta_comparison"),
        ("EXT-E", "diverse redundancy", "test_bench_redundancy"),
        ("EXT-F", "forecasting / release", "test_bench_forecasting"),
        ("EXT-G", "good regulator theorem", "test_bench_good_regulator"),
        ("EXT-H", "BN scalability", "test_bench_bn_scalability"),
        ("EXT-I", "probabilistic verification", "test_bench_verification"),
        ("EXT-J", "calibration + tornado", "test_bench_calibration"),
        ("EXT-K", "dynamic FTA + CCF", "test_bench_dynamic_fta"),
        ("EXT-L", "scenario falsification", "test_bench_falsification"),
        ("EXT-M", "runtime health management",
         "test_bench_health_management"),
    ]
    _print_table(["id", "artifact", "benchmark module"], experiments)
    print("\nRun one with:  pytest benchmarks/<module>.py --benchmark-only -s")


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig4": cmd_fig4,
    "table1": cmd_table1,
    "strategy": cmd_strategy,
    "matrix": cmd_matrix,
    "dossier": cmd_dossier,
    "experiments": cmd_experiments,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="System Theoretic View on Uncertainties — reproduction "
                    "CLI (DATE 2020)")
    parser.add_argument("command", choices=sorted(COMMANDS),
                        help="artifact to regenerate")
    args = parser.parse_args(argv)
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
