"""Uncertainty removal, at design time and during use (§IV, §V).

- :class:`SafetyAnalysisWithUncertainty` — the paper's §V method: a
  Bayesian network plus an evidential (belief/plausibility) twin over the
  perception chain, with queries that *separate* the three uncertainty
  types and point to the fitting removal measure.
- :class:`FieldObservationMonitor` — removal during use: a streaming
  monitor over deployed encounters that distinguishes epistemic drift from
  ontological events and maintains a Good-Turing forecast of what remains
  unseen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.engine import InferenceEngine
from repro.bayesnet.network import BayesianNetwork
from repro.errors import StrategyError
from repro.evidence.evidential_network import EvidentialNetwork, EvidentialNode
from repro.evidence.mass_function import FrameOfDiscernment, MassFunction
from repro.information.surprise import SurpriseMonitor
from repro.perception.chain import (
    PAPER_PRIOR,
    build_fig4_network,
    table1_cpt_rows,
)
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
)
from repro.probability.distributions import Categorical
from repro.probability.estimation import GoodTuringEstimator


class SafetyAnalysisWithUncertainty:
    """The §V safety analysis: BN + evidence theory on the perception chain.

    The Bayesian network answers point-probability queries; the evidential
    twin answers the same queries as [Bel, Pl] intervals whose width is the
    *epistemic* content, while the ``unknown`` ground-truth state carries
    the *ontological* content and the priors the *aleatory* content —
    "for each node and CPT the corresponding aleatory, epistemic and
    ontological uncertainty can be included as required".
    """

    def __init__(self, prior: Optional[Mapping[str, float]] = None,
                 cpt_rows: Optional[Mapping[Tuple[str, ...],
                                            Mapping[str, float]]] = None):
        self.prior = dict(prior or PAPER_PRIOR)
        self.rows = {tuple(k): dict(v) for k, v in
                     (cpt_rows or table1_cpt_rows()).items()}
        self.network = build_fig4_network(self.prior, self.rows)
        #: Compiled engine handle shared by every query of this analysis;
        #: its stats record what the removal sweep actually cost.
        self.engine: InferenceEngine = self.network.engine()
        self.evidential = self._build_evidential_twin()

    def _build_evidential_twin(self) -> EvidentialNetwork:
        gt_frame = FrameOfDiscernment([CAR, PEDESTRIAN, UNKNOWN])
        pc_frame = FrameOfDiscernment([CAR, PEDESTRIAN, NONE_LABEL])
        gt_node = EvidentialNode("ground_truth", gt_frame,
                                 [[CAR], [PEDESTRIAN], [UNKNOWN]])
        pc_node = EvidentialNode("perception", pc_frame,
                                 [[CAR], [PEDESTRIAN], [CAR, PEDESTRIAN],
                                  [NONE_LABEL]])
        en = EvidentialNetwork("fig4-evidential")
        en.add_root(gt_node, MassFunction.from_probabilities(gt_frame, self.prior))
        ev_rows = {}
        for (truth,), row in self.rows.items():
            masses = {}
            if row.get(CAR, 0.0) > 0:
                masses[(CAR,)] = row[CAR]
            if row.get(PEDESTRIAN, 0.0) > 0:
                masses[(PEDESTRIAN,)] = row[PEDESTRIAN]
            if row.get(UNCERTAIN_LABEL, 0.0) > 0:
                masses[(CAR, PEDESTRIAN)] = row[UNCERTAIN_LABEL]
            if row.get(NONE_LABEL, 0.0) > 0:
                masses[(NONE_LABEL,)] = row[NONE_LABEL]
            ev_rows[(truth,)] = MassFunction(pc_frame, masses)
        en.add_child(pc_node, ["ground_truth"], ev_rows)
        return en

    # -- queries --------------------------------------------------------------

    def diagnostic_posterior(self, perception_state: str) -> Dict[str, float]:
        """P(ground truth | perception output) — the BN point answer."""
        return self.engine.query("ground_truth",
                                 {"perception": perception_state})

    def diagnostic_posterior_table(self, perception_states: Sequence[str]
                                   ) -> Dict[str, Dict[str, float]]:
        """Diagnostic posteriors for a whole sweep of perception outputs.

        One batched engine call over the cached plan — the Fig. 4
        diagnostic table costs one elimination regardless of sweep size.
        """
        rows = [{"perception": s} for s in perception_states]
        posts = self.engine.query_batch("ground_truth", rows)
        return dict(zip(perception_states, posts))

    def diagnostic_intervals(self, perception_state: str
                             ) -> Dict[str, Tuple[float, float]]:
        """[Bel, Pl] of each ground truth given the perception output."""
        return self.evidential.singleton_intervals(
            "ground_truth", {"perception": perception_state})

    def predicted_output_distribution(self) -> Dict[str, float]:
        """Marginal perception-output distribution (the Table I forward pass)."""
        return self.engine.query("perception")

    def uncertainty_report(self) -> Dict[str, float]:
        """Scalar decomposition of the model's uncertainty content.

        - ``aleatory_entropy``: entropy of the ground-truth prior;
        - ``epistemic_mass``: prior-weighted mass elicited on the
          car/pedestrian set-state (the Table I epistemic column);
        - ``ontological_mass``: prior mass on the unknown state.
        """
        from repro.information.entropy import entropy
        prior = self.prior
        epistemic = sum(prior[t] * self.rows[(t,)].get(UNCERTAIN_LABEL, 0.0)
                        for t in prior)
        return {
            "aleatory_entropy": entropy(list(prior.values())),
            "epistemic_mass": epistemic,
            "ontological_mass": prior.get(UNKNOWN, 0.0),
        }

    def removal_recommendations(self) -> List[str]:
        """Map dominant uncertainty content to the fitting removal measure
        (the §V closing argument)."""
        report = self.uncertainty_report()
        recs = []
        if report["epistemic_mass"] > 0.01:
            recs.append(
                "epistemic: further observation and refinement of the existing "
                "perception models (reduce the car/pedestrian ambiguity mass "
                f"of {report['epistemic_mass']:.3f})")
        if report["ontological_mass"] > 0.01:
            recs.append(
                "ontological: more thorough domain analysis and extension of "
                "the perception model (unknown-object prior of "
                f"{report['ontological_mass']:.3f})")
        if not recs:
            recs.append("no dominant reducible uncertainty; monitor in the field")
        return recs

    def __repr__(self) -> str:
        return "SafetyAnalysisWithUncertainty(fig4)"


@dataclass
class MonitorSnapshot:
    """State of the field monitor after some number of encounters."""

    n_encounters: int
    ontological_events: int
    ontological_event_rate: float
    estimated_missing_mass: float
    epistemic_alarm: bool


class FieldObservationMonitor:
    """Removal during use: watch deployed encounters, classify surprises.

    Consumes ground-truth kind labels of field encounters (in practice
    these come from triage of disengagements/near-misses; in our simulator
    they are exact).  Maintains:

    - a :class:`SurpriseMonitor` against the organization's world model
      (epistemic drift detection);
    - a :class:`GoodTuringEstimator` over fine-grained kinds (residual
      ontological mass);
    - the list of novel kinds for ontology extension.
    """

    def __init__(self, believed_model: Categorical, *,
                 epistemic_threshold_nats: float = 0.3, window: int = 100):
        self._surprise = SurpriseMonitor(
            believed_model, epistemic_threshold_nats=epistemic_threshold_nats,
            window=window)
        self._good_turing = GoodTuringEstimator()
        self._novel: List[str] = []
        self._n = 0
        self._events = 0

    @property
    def novel_kinds(self) -> List[str]:
        return list(self._novel)

    def observe(self, coarse_label: str, fine_kind: str) -> None:
        """Record one encounter: its coarse label and true fine kind."""
        self._n += 1
        report = self._surprise.score(coarse_label)
        self._good_turing.observe(fine_kind)
        if report.ontological_alarm:
            self._events += 1
        if (fine_kind not in (CAR, PEDESTRIAN)
                and fine_kind not in self._novel):
            self._novel.append(fine_kind)

    def snapshot(self) -> MonitorSnapshot:
        return MonitorSnapshot(
            n_encounters=self._n,
            ontological_events=self._events,
            ontological_event_rate=(self._events / self._n) if self._n else 0.0,
            estimated_missing_mass=self._good_turing.missing_mass(),
            epistemic_alarm=any(r.epistemic_alarm
                                for r in self._surprise.history[-1:]),
        )

    def extended_model(self, smoothing: float = 1.0) -> Categorical:
        """Re-modeled world distribution including observed novel kinds —
        the 'continuous updates' removal output."""
        counts: Dict[str, float] = {}
        for report in self._surprise.history:
            counts[report.observation] = counts.get(report.observation, 0.0) + 1
        for kind in self._novel:
            counts.setdefault(kind, 0.0)
        total = sum(counts.values()) + smoothing * len(counts)
        if total <= 0:
            raise StrategyError("no observations recorded yet")
        return Categorical({k: (v + smoothing) / total for k, v in counts.items()})

    def __repr__(self) -> str:
        return (f"FieldObservationMonitor(n={self._n}, "
                f"novel={len(self._novel)})")
