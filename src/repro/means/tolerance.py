"""Uncertainty tolerance: cope at runtime with what remains (§IV).

"Uncertainty tolerance can typically be obtained by using redundant
architectures ... or using components that can detect uncertainty."

Two mechanisms, composable:

- diverse redundancy (:mod:`repro.perception.redundancy`), and
- an uncertainty-aware *fallback policy*: when the system knows it does
  not know (the ``car/pedestrian`` output, or a high epistemic score), it
  degrades to a safe behavior instead of acting on a guess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StrategyError
from repro.perception.chain import PerceptionChain
from repro.perception.redundancy import RedundantPerceptionSystem, make_diverse_chains
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
    ObjectInstance,
    WorldModel,
)

#: Vehicle-level reactions a perception output can trigger.
ACT_NORMALLY = "act_normally"
CAUTIOUS_MODE = "cautious_mode"
MINIMAL_RISK = "minimal_risk_maneuver"


class FallbackPolicy:
    """Map perception outputs (and epistemic scores) to vehicle behavior.

    The hazard semantics change once a fallback exists: an encounter that
    ends in ``cautious_mode`` is degraded but *safe* — the system tolerated
    its uncertainty.  Only acting normally on a wrong belief, or not
    reacting to a real object, counts as hazardous.
    """

    def __init__(self, epistemic_threshold: float = 0.4,
                 treat_uncertain_as: str = CAUTIOUS_MODE):
        if not 0.0 <= epistemic_threshold <= 1.0:
            raise StrategyError("epistemic_threshold must be in [0, 1]")
        if treat_uncertain_as not in (CAUTIOUS_MODE, MINIMAL_RISK):
            raise StrategyError(
                "treat_uncertain_as must be a degraded mode")
        self.epistemic_threshold = epistemic_threshold
        self.treat_uncertain_as = treat_uncertain_as

    def decide(self, output: str, epistemic_score: float = 0.0) -> str:
        score = float(epistemic_score)
        if math.isnan(score) or not 0.0 <= score <= 1.0:
            raise StrategyError(
                f"epistemic_score must be a number in [0, 1], got "
                f"{epistemic_score!r}")
        if output == UNCERTAIN_LABEL:
            return self.treat_uncertain_as
        if score >= self.epistemic_threshold:
            return CAUTIOUS_MODE
        return ACT_NORMALLY

    def is_hazardous(self, obj: ObjectInstance, output: str,
                     action: str) -> bool:
        """Hazard under fallback semantics."""
        if action in (CAUTIOUS_MODE, MINIMAL_RISK):
            return False  # degraded but safe
        if output == NONE_LABEL:
            return True  # real object, no reaction
        if obj.label == UNKNOWN and output in (CAR, PEDESTRIAN):
            return True  # confident misbelief about a novel object
        return False


@dataclass(frozen=True)
class ToleranceOutcome:
    """Measured effect of a tolerance architecture."""

    hazard_rate: float
    degraded_rate: float
    n_encounters: int

    @property
    def availability(self) -> float:
        """Fraction of encounters handled at full capability."""
        return 1.0 - self.degraded_rate


def evaluate_tolerance(world: WorldModel, rng: np.random.Generator,
                       *, n_channels: int = 3, diversity: float = 0.12,
                       fusion: str = "conservative",
                       policy: Optional[FallbackPolicy] = None,
                       n_eval: int = 3000) -> ToleranceOutcome:
    """Measure hazard/availability of a redundant + fallback architecture.

    With ``n_channels=1`` and no diversity this degenerates to the single
    uncertainty-aware chain — the baseline of the EXT-E benchmark.
    """
    if n_eval <= 0:
        raise StrategyError("n_eval must be positive")
    policy = policy or FallbackPolicy()
    chains = make_diverse_chains(n_channels, rng, diversity=diversity)
    system = RedundantPerceptionSystem(chains, fusion=fusion)
    hazards = 0
    degraded = 0
    for _ in range(n_eval):
        obj = world.sample_object(rng)
        output = system.perceive(obj, rng)
        action = policy.decide(output)
        if action != ACT_NORMALLY:
            degraded += 1
        if policy.is_hazardous(obj, output, action):
            hazards += 1
    return ToleranceOutcome(hazard_rate=hazards / n_eval,
                            degraded_rate=degraded / n_eval,
                            n_encounters=n_eval)


def evaluate_single_chain(world: WorldModel, rng: np.random.Generator,
                          *, uncertainty_aware: bool = True,
                          policy: Optional[FallbackPolicy] = None,
                          n_eval: int = 3000) -> ToleranceOutcome:
    """Baseline: one chain, with or without uncertainty awareness."""
    if n_eval <= 0:
        raise StrategyError("n_eval must be positive")
    policy = policy or FallbackPolicy()
    chain = PerceptionChain(uncertainty_aware=uncertainty_aware)
    hazards = 0
    degraded = 0
    for _ in range(n_eval):
        obj = world.sample_object(rng)
        output, score = chain.perceive_with_score(obj, rng)
        action = policy.decide(output, score)
        if action != ACT_NORMALLY:
            degraded += 1
        if policy.is_hazardous(obj, output, action):
            hazards += 1
    return ToleranceOutcome(hazard_rate=hazards / n_eval,
                            degraded_rate=degraded / n_eval,
                            n_encounters=n_eval)
