"""Uncertainty forecasting and the release decision (§IV).

"Uncertainty forecasting is based on estimating the present level and
future occurrence of uncertainties.  These are relevant to make a decision
about the release of a product by e.g. arguing about a sufficiently low
ontological uncertainty."

The forecast combines:

- an *aleatory/epistemic* hazard-rate posterior (Gamma-Poisson over field
  exposure) with its one-sided upper credible bound, and
- an *ontological* residual: the Good-Turing bound on the unseen-kind
  probability mass of the operational domain.

Release is granted only when both bounds are under their targets — the
paper's "sufficiently low ontological uncertainty" made precise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.engine import as_engine
from repro.errors import StrategyError
from repro.probability.estimation import BayesianRateEstimator, GoodTuringEstimator
from repro.telemetry import tracing


def model_based_hazard_rate(network_or_engine, *, target: str,
                            hazard_states: Sequence[str],
                            evidence_rows: Sequence[Mapping[str, str]],
                            weights: Optional[Sequence[float]] = None
                            ) -> float:
    """The *present level* of hazard implied by the analysis model.

    Sweeps an operational profile (one evidence row per scenario, with
    optional scenario weights) through the compiled inference engine in a
    single batched call and returns the weighted mean posterior mass on
    the hazardous target states.  This is the model-side complement to the
    field-data bounds of :class:`ResidualUncertaintyForecast`: forecasting
    "the present level ... of uncertainties" before exposure accumulates.
    """
    engine = as_engine(network_or_engine)
    rows = [dict(r) for r in evidence_rows]
    if not rows:
        raise StrategyError("at least one evidence row required")
    if weights is None:
        w = np.full(len(rows), 1.0 / len(rows))
    else:
        w = np.asarray(list(weights), dtype=float)
        if w.shape != (len(rows),) or np.any(w < 0.0) or w.sum() <= 0.0:
            raise StrategyError(
                "weights must be non-negative, one per row, with positive sum")
        w = w / w.sum()
    hazard = set(hazard_states)
    with tracing.span("forecasting.model_hazard", target=target,
                      n_rows=len(rows)):
        posteriors = engine.query_batch(target, rows)
    masses = [sum(p for s, p in post.items() if s in hazard)
              for post in posteriors]
    return float(np.dot(w, masses))


@dataclass(frozen=True)
class ReleaseCriteria:
    """Acceptance targets for the release decision."""

    max_hazard_rate: float = 1e-3      # hazards per encounter, upper bound
    max_missing_mass: float = 0.01     # residual ontological mass
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.max_hazard_rate <= 0.0:
            raise StrategyError("max_hazard_rate must be positive")
        if not 0.0 < self.max_missing_mass <= 1.0:
            raise StrategyError("max_missing_mass must be in (0, 1]")
        if not 0.0 < self.confidence < 1.0:
            raise StrategyError("confidence must be in (0, 1)")


@dataclass(frozen=True)
class ReleaseDecision:
    """Outcome of a release assessment."""

    release: bool
    hazard_rate_bound: float
    missing_mass_bound: float
    hazard_ok: bool
    ontology_ok: bool
    exposure: float
    n_hazards: int

    def blocking_reasons(self) -> List[str]:
        reasons = []
        if not self.hazard_ok:
            reasons.append(
                f"hazard-rate upper bound {self.hazard_rate_bound:.3g} exceeds target")
        if not self.ontology_ok:
            reasons.append(
                f"residual ontological mass bound {self.missing_mass_bound:.3g} "
                "exceeds target")
        return reasons


class ResidualUncertaintyForecast:
    """Accumulates field evidence and issues release assessments."""

    def __init__(self, criteria: Optional[ReleaseCriteria] = None,
                 prior_shape: float = 0.5, prior_rate: float = 10.0):
        self.criteria = criteria or ReleaseCriteria()
        self._rate = BayesianRateEstimator(prior_shape=prior_shape,
                                           prior_rate=prior_rate)
        self._good_turing = GoodTuringEstimator()

    @property
    def exposure(self) -> float:
        return self._rate.exposure

    def observe_campaign(self, n_encounters: int, n_hazards: int,
                         encountered_kinds: Sequence[str]) -> None:
        """Fold one observation campaign into the forecast."""
        if n_encounters <= 0:
            raise StrategyError("n_encounters must be positive")
        if n_hazards < 0 or n_hazards > n_encounters:
            raise StrategyError("n_hazards must be in [0, n_encounters]")
        self._rate.observe(n_hazards, float(n_encounters))
        self._good_turing.observe_sequence(encountered_kinds)

    def hazard_rate_bound(self) -> float:
        return self._rate.upper_bound(self.criteria.confidence)

    def missing_mass_bound(self) -> float:
        return self._good_turing.missing_mass_confidence_bound(
            self.criteria.confidence)

    def assess(self) -> ReleaseDecision:
        hz = self.hazard_rate_bound()
        mm = self.missing_mass_bound()
        hazard_ok = hz <= self.criteria.max_hazard_rate
        ontology_ok = mm <= self.criteria.max_missing_mass
        return ReleaseDecision(
            release=hazard_ok and ontology_ok,
            hazard_rate_bound=hz,
            missing_mass_bound=mm,
            hazard_ok=hazard_ok,
            ontology_ok=ontology_ok,
            exposure=self._rate.exposure,
            n_hazards=self._rate.events,
        )

    def required_exposure_estimate(self) -> float:
        """Rough additional exposure needed for the ontological criterion.

        From the McAllester-Schapire slack term: with zero further novel
        singletons, the bound reaches the target when
        ``sqrt(2 ln(1/delta) / N) <= target`` — solve for N.  Returns 0
        when already satisfied.  This is the quantitative face of the
        long-tail validation challenge (refs [30], [31]).
        """
        import math
        target = self.criteria.max_missing_mass
        current = self._good_turing.missing_mass()
        if current >= target:
            return float("inf")  # new singletons keep arriving; no finite bound
        delta = 1.0 - self.criteria.confidence
        needed = 2.0 * math.log(1.0 / delta) / (target - current) ** 2
        return max(0.0, needed - self._good_turing.total)

    def __repr__(self) -> str:
        return (f"ResidualUncertaintyForecast(exposure={self.exposure}, "
                f"hazards={self._rate.events})")
