"""Uncertainty prevention: avoid complexity, restrict the domain (§IV).

"Uncertainty prevention can e.g. be achieved by avoiding complexity in the
system.  This can be done by using simple architectures not prone to
emergent behavior or restriction of the operational design domain."

Two tools:

- :func:`apply_odd_prevention` — quantify the hazard-vs-availability trade
  of an ODD restriction on a given world and chain;
- :class:`ArchitectureComplexity` — an interaction-count complexity budget
  for architectures, flagging emergent-behavior-prone designs before they
  are built.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import StrategyError
from repro.perception.chain import PerceptionChain, hazardous_misperception_rate
from repro.perception.odd import OperationalDesignDomain
from repro.perception.world import WorldModel


@dataclass(frozen=True)
class PreventionOutcome:
    """Measured effect of a prevention measure."""

    hazard_rate_before: float
    hazard_rate_after: float
    availability: float

    @property
    def hazard_reduction(self) -> float:
        """Relative hazard reduction achieved by prevention."""
        if self.hazard_rate_before <= 0.0:
            return 0.0
        return 1.0 - self.hazard_rate_after / self.hazard_rate_before

    @property
    def cost_effectiveness(self) -> float:
        """Hazard reduction per unit availability given up (inf if free)."""
        given_up = 1.0 - self.availability
        if given_up <= 0.0:
            return float("inf") if self.hazard_reduction > 0 else 0.0
        return self.hazard_reduction / given_up


def apply_odd_prevention(world: WorldModel, chain: PerceptionChain,
                         odd: OperationalDesignDomain,
                         rng: np.random.Generator,
                         n_eval: int = 3000) -> PreventionOutcome:
    """Measure an ODD restriction's prevention effect by simulation."""
    if n_eval <= 0:
        raise StrategyError("n_eval must be positive")
    before = hazardous_misperception_rate(chain, world, rng, n_eval)
    restricted = odd.restricted_world(world)
    after = hazardous_misperception_rate(chain, restricted, rng, n_eval)
    availability = odd.availability(world, rng, n_samples=min(n_eval, 2000))
    return PreventionOutcome(hazard_rate_before=before,
                             hazard_rate_after=after,
                             availability=availability)


class ArchitectureComplexity:
    """An interaction-graph complexity budget for system architectures.

    Emergent behavior risk grows with the number of *interaction paths*
    between components, not with component count per se.  The metric here
    is deliberately simple — pairwise interface count, feedback-loop count
    and maximum fan-in — because prevention happens at the whiteboard,
    before anything is measurable.
    """

    def __init__(self) -> None:
        self._components: Set[str] = set()
        self._interfaces: Set[Tuple[str, str]] = set()

    def add_component(self, name: str) -> None:
        if not name:
            raise StrategyError("component name must be non-empty")
        self._components.add(name)

    def add_interface(self, source: str, target: str) -> None:
        """A directed interaction source -> target."""
        if source == target:
            raise StrategyError("self-interfaces are not counted")
        for n in (source, target):
            if n not in self._components:
                raise StrategyError(f"unknown component {n!r}")
        self._interfaces.add((source, target))

    @property
    def n_components(self) -> int:
        return len(self._components)

    @property
    def n_interfaces(self) -> int:
        return len(self._interfaces)

    def feedback_pairs(self) -> int:
        """Count of mutual (A->B and B->A) interaction pairs — the basic
        emergent-behavior generator."""
        return sum(1 for (a, b) in self._interfaces
                   if (b, a) in self._interfaces and a < b)

    def max_fan_in(self) -> int:
        fan: Dict[str, int] = {}
        for _, target in self._interfaces:
            fan[target] = fan.get(target, 0) + 1
        return max(fan.values(), default=0)

    def interface_density(self) -> float:
        """Interfaces / possible directed pairs in [0, 1]."""
        n = self.n_components
        possible = n * (n - 1)
        if possible == 0:
            return 0.0
        return self.n_interfaces / possible

    def emergence_score(self) -> float:
        """Composite [0, 1] emergent-behavior-proneness score."""
        density = self.interface_density()
        feedback = self.feedback_pairs()
        n = max(self.n_components, 1)
        feedback_norm = min(1.0, 2.0 * feedback / n)
        fanin_norm = min(1.0, self.max_fan_in() / max(n - 1, 1))
        return float(np.clip(0.5 * density + 0.3 * feedback_norm +
                             0.2 * fanin_norm, 0.0, 1.0))

    def within_budget(self, max_score: float = 0.4) -> bool:
        """Prevention gate: is the architecture simple enough to build?"""
        if not 0.0 <= max_score <= 1.0:
            raise StrategyError("max_score must be in [0, 1]")
        return self.emergence_score() <= max_score

    def __repr__(self) -> str:
        return (f"ArchitectureComplexity(components={self.n_components}, "
                f"interfaces={self.n_interfaces}, "
                f"score={self.emergence_score():.3f})")
