"""The four means to cope with uncertainty (paper §IV), as working code.

Each submodule operationalizes one column of the taxonomy:

- :mod:`repro.means.prevention` — ODD restriction and architectural
  complexity budgets;
- :mod:`repro.means.removal` — design of experiments, the §V BN+evidence
  safety analysis, and the field-observation monitor;
- :mod:`repro.means.tolerance` — diverse redundancy and uncertainty-aware
  fallback behavior;
- :mod:`repro.means.forecasting` — residual-uncertainty estimation and the
  release decision.
"""

from repro.means.forecasting import ReleaseCriteria, ReleaseDecision, ResidualUncertaintyForecast
from repro.means.prevention import ArchitectureComplexity, PreventionOutcome, apply_odd_prevention
from repro.means.removal import FieldObservationMonitor, SafetyAnalysisWithUncertainty
from repro.means.tolerance import FallbackPolicy, ToleranceOutcome, evaluate_tolerance

__all__ = [
    "ReleaseCriteria",
    "ReleaseDecision",
    "ResidualUncertaintyForecast",
    "ArchitectureComplexity",
    "PreventionOutcome",
    "apply_odd_prevention",
    "FieldObservationMonitor",
    "SafetyAnalysisWithUncertainty",
    "FallbackPolicy",
    "ToleranceOutcome",
    "evaluate_tolerance",
]
