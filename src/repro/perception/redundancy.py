"""Redundant perception architectures with diverse uncertainties.

The paper's §V closes: "it can also be demonstrated that redundant
architectures with diverse uncertainties can be used to build uncertainty
tolerant systems", and §IV lists "redundant architectures (e.g.
overlapping field of views of sensors)" as a tolerance mean.  This module
builds multi-channel perception systems whose channels have *different*
confusion profiles (diversity) and fuses them by voting or by
Dempster-Shafer combination.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.evidence.combination import combine_many
from repro.evidence.mass_function import FrameOfDiscernment, MassFunction
from repro.perception.chain import PerceptionChain
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
    ObjectInstance,
    WorldModel,
)

PERCEPTION_FRAME = FrameOfDiscernment([CAR, PEDESTRIAN, NONE_LABEL])

#: Deterministic tie-break order for fused decisions.  On an exact score
#: tie the *most conservative* interpretation wins: ``pedestrian`` (the
#: most vulnerable road user) over ``car`` over ``none`` — a tie never
#: silently suppresses an object.  Fixing this order makes campaign
#: results bit-for-bit reproducible across runs with the same seed.
TIE_BREAK_ORDER = (PEDESTRIAN, CAR, NONE_LABEL)


def _argmax_tiebreak(scores: Mapping[str, float]) -> str:
    """Label with the maximal score; exact ties resolved by
    :data:`TIE_BREAK_ORDER` instead of dict insertion order."""
    best = max(scores.values())
    for label in TIE_BREAK_ORDER:
        if label in scores and scores[label] == best:
            return label
    # Labels outside the documented order (defensive): first maximal key.
    return max(scores, key=lambda k: scores[k])


def output_to_mass(output: str, reliability: float = 0.9) -> MassFunction:
    """Encode one channel's output as a discounted mass function.

    ``car/pedestrian`` maps to mass on the *set* {car, pedestrian} — the
    epistemic output becomes first-class evidence rather than being forced
    into a point label.
    """
    if not 0.0 < reliability <= 1.0:
        raise SimulationError("reliability must be in (0, 1]")
    if output == UNCERTAIN_LABEL:
        focal = [CAR, PEDESTRIAN]
    elif output in (CAR, PEDESTRIAN, NONE_LABEL):
        focal = [output]
    else:
        raise SimulationError(f"invalid channel output {output!r}")
    return MassFunction.simple_support(PERCEPTION_FRAME, focal, reliability)


class RedundantPerceptionSystem:
    """N diverse perception chains + a fusion rule.

    Fusion rules
    ------------
    - ``majority``: plain vote over {car, pedestrian, none};
      ``car/pedestrian`` outputs count half for each.
    - ``conservative``: any channel reporting an object (car/pedestrian/
      uncertain) wins over ``none`` — prioritizes not missing objects.
    - ``dempster`` / ``yager``: evidential fusion of the channels' mass
      functions, decided by maximum pignistic probability.

    Exact score ties (majority and pignistic decisions alike) are broken
    by the fixed :data:`TIE_BREAK_ORDER` — pedestrian > car > none — so
    fusion is a deterministic function of the channel outputs.
    """

    FUSIONS = ("majority", "conservative", "dempster", "yager")

    def __init__(self, chains: Sequence[PerceptionChain],
                 fusion: str = "dempster",
                 channel_reliability: float = 0.9):
        if not chains:
            raise SimulationError("at least one chain required")
        if fusion not in self.FUSIONS:
            raise SimulationError(f"unknown fusion {fusion!r}; "
                                  f"choose from {self.FUSIONS}")
        self.chains = list(chains)
        self.fusion = fusion
        self.channel_reliability = channel_reliability

    @property
    def n_channels(self) -> int:
        return len(self.chains)

    def channel_outputs(self, obj: ObjectInstance,
                        rng: np.random.Generator) -> List[str]:
        return [chain.perceive(obj, rng) for chain in self.chains]

    def fuse(self, outputs: Sequence[str]) -> str:
        if self.fusion == "majority":
            scores = {CAR: 0.0, PEDESTRIAN: 0.0, NONE_LABEL: 0.0}
            for out in outputs:
                if out == UNCERTAIN_LABEL:
                    scores[CAR] += 0.5
                    scores[PEDESTRIAN] += 0.5
                else:
                    scores[out] += 1.0
            return _argmax_tiebreak(scores)
        if self.fusion == "conservative":
            object_votes = [o for o in outputs if o != NONE_LABEL]
            if not object_votes:
                return NONE_LABEL
            if all(o == CAR for o in object_votes):
                return CAR
            if all(o == PEDESTRIAN for o in object_votes):
                return PEDESTRIAN
            return UNCERTAIN_LABEL
        # Evidential fusion.
        masses = [output_to_mass(o, self.channel_reliability) for o in outputs]
        rule = "dempster" if self.fusion == "dempster" else "yager"
        combined = combine_many(masses, rule=rule)
        pig = combined.to_categorical_pignistic().probabilities
        return _argmax_tiebreak(pig)

    def perceive(self, obj: ObjectInstance, rng: np.random.Generator) -> str:
        return self.fuse(self.channel_outputs(obj, rng))

    def hazard_rate(self, world: WorldModel, rng: np.random.Generator,
                    n_objects: int) -> float:
        """Hazardous-misperception rate of the fused system.

        Same hazard definition as
        :func:`repro.perception.chain.hazardous_misperception_rate`.
        """
        if n_objects <= 0:
            raise SimulationError("n_objects must be positive")
        hazards = 0
        for _ in range(n_objects):
            obj = world.sample_object(rng)
            output = self.perceive(obj, rng)
            if output == NONE_LABEL:
                hazards += 1
            elif obj.label == UNKNOWN and output in (CAR, PEDESTRIAN):
                hazards += 1
        return hazards / n_objects

    def __repr__(self) -> str:
        return (f"RedundantPerceptionSystem(channels={self.n_channels}, "
                f"fusion={self.fusion!r})")


def make_diverse_chains(n: int, rng: np.random.Generator,
                        diversity: float = 0.1,
                        uncertainty_aware: bool = True) -> List[PerceptionChain]:
    """Build ``n`` chains with perturbed (diverse) confusion profiles.

    ``diversity`` controls how different the channels' uncertainty
    profiles are; 0 reproduces identical (common-cause-prone) channels —
    the EXT-E ablation axis.
    """
    if n < 1:
        raise SimulationError("n must be at least 1")
    from repro.perception.classifier import ConfusionMatrixClassifier
    base = ConfusionMatrixClassifier()
    chains = []
    for i in range(n):
        clf = base.perturbed(rng, diversity) if diversity > 0 else base
        chains.append(PerceptionChain(classifier=clf,
                                      uncertainty_aware=uncertainty_aware,
                                      ensemble_seed=1000 + i))
    return chains
