"""Sensor (camera) simulation for the perception chain.

The camera degrades with distance, occlusion, night and rain; its output
is an abstract feature-quality score that the downstream classifier
consumes.  This keeps the chain faithful to the paper's abstraction level
(a CPT) while giving the context attributes a causal path into
misclassification — the hook for ODD-restriction experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.perception.world import ObjectInstance


@dataclass(frozen=True)
class SensorReading:
    """Output of one camera exposure on one object."""

    detected: bool
    quality: float  # feature quality in [0, 1]; 0 when not detected
    true_class: str
    label: str


class CameraModel:
    """A camera with distance/occlusion/weather-dependent performance.

    Parameters
    ----------
    max_range:
        Distance at which detection probability reaches its floor.
    base_detection:
        Detection probability for a close, unoccluded object in daylight.
    night_penalty, rain_penalty:
        Multiplicative quality penalties for adverse conditions.
    """

    def __init__(self, max_range: float = 150.0, base_detection: float = 0.995,
                 night_penalty: float = 0.8, rain_penalty: float = 0.9):
        if max_range <= 0.0:
            raise SimulationError("max_range must be positive")
        for name, v in (("base_detection", base_detection),
                        ("night_penalty", night_penalty),
                        ("rain_penalty", rain_penalty)):
            if not 0.0 <= v <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {v}")
        self.max_range = max_range
        self.base_detection = base_detection
        self.night_penalty = night_penalty
        self.rain_penalty = rain_penalty

    def quality_of(self, obj: ObjectInstance) -> float:
        """Deterministic expected feature quality for an object's context."""
        distance_factor = max(0.15, 1.0 - 0.7 * obj.distance / self.max_range)
        quality = distance_factor * (1.0 - 0.8 * obj.occlusion)
        if obj.night:
            quality *= self.night_penalty
        if obj.rain:
            quality *= self.rain_penalty
        return float(np.clip(quality, 0.0, 1.0))

    def detection_probability(self, obj: ObjectInstance) -> float:
        """P(object detected at all) as a function of feature quality."""
        q = self.quality_of(obj)
        return self.base_detection * (0.7 + 0.3 * q)

    def sense(self, obj: ObjectInstance, rng: np.random.Generator) -> SensorReading:
        """One stochastic exposure."""
        p_det = self.detection_probability(obj)
        detected = bool(rng.random() < p_det)
        if not detected:
            return SensorReading(detected=False, quality=0.0,
                                 true_class=obj.true_class, label=obj.label)
        # Beta noise around the deterministic quality.
        q = self.quality_of(obj)
        concentration = 30.0
        a = max(q * concentration, 1e-3)
        b = max((1.0 - q) * concentration, 1e-3)
        noisy_q = float(rng.beta(a, b))
        return SensorReading(detected=True, quality=noisy_q,
                             true_class=obj.true_class, label=obj.label)

    def __repr__(self) -> str:
        return (f"CameraModel(max_range={self.max_range}, "
                f"base_detection={self.base_detection})")
