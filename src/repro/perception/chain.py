"""The perception chain and the paper's Fig. 4 / Table I artifacts.

Combines camera and classifier into an end-to-end chain, provides the
exact Table I CPT (with the published normalization defect documented and
repaired), builds the Fig. 4 Bayesian network, and re-estimates the CPT
from simulation — the TAB1 reproduction experiment.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.variable import Variable
from repro.errors import SimulationError
from repro.telemetry.metrics import PERCEPTION_ENCOUNTERS
from repro.telemetry.tracing import active as _trace_active
from repro.perception.classifier import (
    ASSESSMENT_LABELS,
    ConfusionMatrixClassifier,
    UncertaintyAwareClassifier,
)
from repro.perception.sensors import CameraModel
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
    ObjectInstance,
    WorldModel,
)

GROUND_TRUTH_STATES = (CAR, PEDESTRIAN, UNKNOWN)
PERCEPTION_STATES = ASSESSMENT_LABELS  # car, pedestrian, car/pedestrian, none

#: The paper's ground-truth prior: "P_car = 0.6, P_ped = 0.3, P_unknown = 0.1".
PAPER_PRIOR: Dict[str, float] = {CAR: 0.6, PEDESTRIAN: 0.3, UNKNOWN: 0.1}

#: Table I exactly as printed.  NOTE a published defect: the "unknown" row
#: sums to 0.9 (0 + 0 + 0.2 + 0.7), not 1.0.  ``table1_cpt_rows`` repairs it
#: by proportional renormalization (documented in EXPERIMENTS.md).
PAPER_TABLE1_RAW: Dict[str, Dict[str, float]] = {
    CAR: {CAR: 0.9, PEDESTRIAN: 0.005, UNCERTAIN_LABEL: 0.05, NONE_LABEL: 0.045},
    PEDESTRIAN: {CAR: 0.005, PEDESTRIAN: 0.9, UNCERTAIN_LABEL: 0.05,
                 NONE_LABEL: 0.045},
    UNKNOWN: {CAR: 0.0, PEDESTRIAN: 0.0, UNCERTAIN_LABEL: 0.2, NONE_LABEL: 0.7},
}


def table1_cpt_rows(repair: str = "renormalize") -> Dict[Tuple[str, ...],
                                                         Dict[str, float]]:
    """The Table I CPT rows, with the unknown-row defect repaired.

    Parameters
    ----------
    repair:
        ``"renormalize"`` scales the unknown row by 1/0.9 (preserves the
        printed 2:7 odds); ``"none_absorbs"`` adds the missing 0.1 to the
        ``none`` state (assumes a typo for 0.8).
    """
    if repair not in ("renormalize", "none_absorbs"):
        raise SimulationError(f"unknown repair mode {repair!r}")
    rows: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for truth, row in PAPER_TABLE1_RAW.items():
        fixed = dict(row)
        total = sum(fixed.values())
        if abs(total - 1.0) > 1e-9:
            if repair == "renormalize":
                fixed = {k: v / total for k, v in fixed.items()}
            else:
                fixed[NONE_LABEL] += 1.0 - total
        rows[(truth,)] = fixed
    return rows


def ground_truth_variable() -> Variable:
    return Variable("ground_truth", GROUND_TRUTH_STATES)


def perception_variable() -> Variable:
    return Variable("perception", PERCEPTION_STATES)


def build_fig4_network(prior: Optional[Mapping[str, float]] = None,
                       cpt_rows: Optional[Mapping[Tuple[str, ...],
                                                  Mapping[str, float]]] = None,
                       repair: str = "renormalize") -> BayesianNetwork:
    """The Fig. 4 Bayesian network: ground_truth -> perception."""
    gt = ground_truth_variable()
    pc = perception_variable()
    bn = BayesianNetwork("fig4-perception-chain")
    bn.add_cpt(CPT.prior(gt, dict(prior or PAPER_PRIOR)))
    rows = {tuple(k): dict(v) for k, v in
            (cpt_rows or table1_cpt_rows(repair)).items()}
    bn.add_cpt(CPT.from_dict(pc, [gt], rows))
    return bn


class PerceptionChain:
    """Camera + classifier end-to-end, with uncertainty-aware option.

    ``perceive`` returns one of the four Fig. 4 perception states: the
    uncertainty-aware classifier can emit the epistemic ``car/pedestrian``
    state, a plain classifier never does.
    """

    def __init__(self, camera: Optional[CameraModel] = None,
                 classifier: Optional[ConfusionMatrixClassifier] = None,
                 uncertainty_aware: bool = True,
                 ensemble_seed: int = 1234):
        self.camera = camera or CameraModel()
        base = classifier or ConfusionMatrixClassifier()
        self.base_classifier = base
        self.uncertainty_aware = uncertainty_aware
        self._ensemble = (UncertaintyAwareClassifier(base, seed=ensemble_seed)
                          if uncertainty_aware else None)

    def perceive(self, obj: ObjectInstance, rng: np.random.Generator) -> str:
        return self.perceive_with_score(obj, rng)[0]

    def classify_reading(self, reading, rng: np.random.Generator
                         ) -> Tuple[str, float]:
        """Classify an already-sensed reading: (label, epistemic score).

        Separated from :meth:`perceive_with_score` so wrappers (e.g. the
        fault-injection engine) can transform the sensor reading between
        sensing and classification.
        """
        if self._ensemble is not None:
            return self._ensemble.classify(reading, rng)
        return self.base_classifier.classify(reading, rng), 0.0

    def perceive_with_score(self, obj: ObjectInstance,
                            rng: np.random.Generator) -> Tuple[str, float]:
        """(label, epistemic score); score is 0 for the plain classifier."""
        reading = self.camera.sense(obj, rng)
        return self.classify_reading(reading, rng)

    def run_campaign(self, world: WorldModel, rng: np.random.Generator,
                     n_objects: int) -> List[Tuple[ObjectInstance, str]]:
        """Simulate ``n_objects`` encounters; returns (object, output) pairs."""
        if n_objects > 0:
            PERCEPTION_ENCOUNTERS.inc(n_objects)
        tracer = _trace_active()
        if tracer is None:
            return self._run_campaign(world, rng, n_objects)
        with tracer.span("perception.run_campaign", n_objects=n_objects,
                         uncertainty_aware=self.uncertainty_aware):
            return self._run_campaign(world, rng, n_objects)

    def _run_campaign(self, world: WorldModel, rng: np.random.Generator,
                      n_objects: int) -> List[Tuple[ObjectInstance, str]]:
        out = []
        for _ in range(n_objects):
            obj = world.sample_object(rng)
            out.append((obj, self.perceive(obj, rng)))
        return out

    def __repr__(self) -> str:
        return (f"PerceptionChain(uncertainty_aware={self.uncertainty_aware})")


def estimate_cpt_from_simulation(chain: PerceptionChain, world: WorldModel,
                                 rng: np.random.Generator, n_objects: int,
                                 pseudocount: float = 1.0) -> CPT:
    """Re-estimate the Table I CPT empirically from simulated encounters.

    This is the TAB1 experiment: how close does a measured perception CPT
    come to the elicited one, and how do its credible intervals shrink.
    """
    if n_objects <= 0:
        raise SimulationError("n_objects must be positive")
    counts = {truth: {out: pseudocount for out in PERCEPTION_STATES}
              for truth in GROUND_TRUTH_STATES}
    for obj, output in chain.run_campaign(world, rng, n_objects):
        counts[obj.label][output] += 1.0
    rows: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for truth, row in counts.items():
        total = sum(row.values())
        rows[(truth,)] = {out: c / total for out, c in row.items()}
    return CPT.from_dict(perception_variable(), [ground_truth_variable()], rows)


def empirical_label_counts(chain: PerceptionChain, world: WorldModel,
                           rng: np.random.Generator,
                           n_objects: int) -> Dict[str, Dict[str, int]]:
    """Raw (ground truth x output) counts from a simulated campaign."""
    counts = {truth: {out: 0 for out in PERCEPTION_STATES}
              for truth in GROUND_TRUTH_STATES}
    for obj, output in chain.run_campaign(world, rng, n_objects):
        counts[obj.label][output] += 1
    return counts


def hazardous_misperception_rate(chain: PerceptionChain, world: WorldModel,
                                 rng: np.random.Generator,
                                 n_objects: int) -> float:
    """Fraction of encounters ending in a hazardous misperception.

    Hazard definition used across the means benchmarks: a real object
    (any label) perceived as ``none`` — the vehicle would not react —
    or an ``unknown`` object confidently classified as car/pedestrian
    (the system believes it understands something it does not).
    """
    if n_objects <= 0:
        raise SimulationError("n_objects must be positive")
    hazards = 0
    for obj, output in chain.run_campaign(world, rng, n_objects):
        if output == NONE_LABEL:
            hazards += 1
        elif obj.label == UNKNOWN and output in (CAR, PEDESTRIAN):
            hazards += 1
    return hazards / n_objects
