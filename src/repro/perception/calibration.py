"""Calibration analysis of uncertainty-aware classifiers.

"Machine learning with epistemic uncertainty outputs" (paper §IV) is only
an uncertainty-*tolerance* mean if the reported uncertainty is honest:
when the ensemble says 80% confidence, it should be right ~80% of the
time.  This module measures that — reliability diagrams, expected
calibration error (ECE), and Brier score — for the chain's confidence
signal, plus a selective-prediction (risk-coverage) analysis that shows
what honest uncertainty buys at the vehicle level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.perception.chain import PerceptionChain
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
    WorldModel,
)


@dataclass
class CalibrationReport:
    """Binned reliability statistics of a confidence signal."""

    bin_edges: np.ndarray
    bin_confidence: np.ndarray   # mean predicted confidence per bin
    bin_accuracy: np.ndarray     # empirical accuracy per bin
    bin_counts: np.ndarray
    ece: float
    brier: float
    n: int

    def reliability_rows(self) -> List[Tuple[float, float, int]]:
        """(mean confidence, accuracy, count) per non-empty bin."""
        return [(float(c), float(a), int(n))
                for c, a, n in zip(self.bin_confidence, self.bin_accuracy,
                                   self.bin_counts) if n > 0]


def calibration_report(confidences: Sequence[float],
                       correct: Sequence[bool],
                       n_bins: int = 10) -> CalibrationReport:
    """ECE / Brier / reliability bins for (confidence, correctness) pairs."""
    conf = np.asarray(confidences, dtype=float)
    corr = np.asarray(correct, dtype=bool)
    if conf.shape != corr.shape or conf.size == 0:
        raise SimulationError("confidences and correct must be equal-length, non-empty")
    if np.any((conf < 0.0) | (conf > 1.0)):
        raise SimulationError("confidences must be in [0, 1]")
    if n_bins < 2:
        raise SimulationError("n_bins must be >= 2")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    which = np.clip(np.digitize(conf, edges) - 1, 0, n_bins - 1)
    bin_conf = np.zeros(n_bins)
    bin_acc = np.zeros(n_bins)
    counts = np.zeros(n_bins, dtype=int)
    for b in range(n_bins):
        mask = which == b
        counts[b] = int(mask.sum())
        if counts[b]:
            bin_conf[b] = conf[mask].mean()
            bin_acc[b] = corr[mask].mean()
    weights = counts / conf.size
    ece = float(np.sum(weights * np.abs(bin_acc - bin_conf)))
    brier = float(np.mean((conf - corr.astype(float)) ** 2))
    return CalibrationReport(bin_edges=edges, bin_confidence=bin_conf,
                             bin_accuracy=bin_acc, bin_counts=counts,
                             ece=ece, brier=brier, n=conf.size)


def chain_calibration(chain: PerceptionChain, world: WorldModel,
                      rng: np.random.Generator, n: int,
                      n_bins: int = 10) -> CalibrationReport:
    """Calibration of the chain's confidence (1 - epistemic score).

    Scope: only *classification claims* are calibrated — outputs of
    ``car``, ``pedestrian`` or the explicit ``car/pedestrian`` set-claim.
    A ``none`` output is a detection outcome, not a confidence-bearing
    claim about an object's class, so it is excluded here (its risk is
    measured by the hazard-rate analyses instead).  The set-claim is
    graded as correct iff the truth is one of the two classes.
    """
    if n <= 0:
        raise SimulationError("n must be positive")
    confidences, correct = [], []
    while len(confidences) < n:
        obj = world.sample_object(rng)
        output, score = chain.perceive_with_score(obj, rng)
        if output == NONE_LABEL:
            continue
        confidence = 1.0 - score
        if output == UNCERTAIN_LABEL:
            is_correct = obj.label in (CAR, PEDESTRIAN)
        else:
            is_correct = output == obj.label
        confidences.append(confidence)
        correct.append(is_correct)
    return calibration_report(confidences, correct, n_bins)


@dataclass
class RiskCoveragePoint:
    threshold: float
    coverage: float
    selective_risk: float


def risk_coverage_curve(chain: PerceptionChain, world: WorldModel,
                        rng: np.random.Generator, n: int,
                        thresholds: Sequence[float] = (0.0, 0.1, 0.2, 0.3,
                                                       0.4, 0.5)
                        ) -> List[RiskCoveragePoint]:
    """Selective prediction: refuse to commit when the epistemic score
    exceeds a threshold; report (coverage, risk-on-accepted) per threshold.

    The tolerance argument in one curve: honest uncertainty lets the
    system trade coverage for a lower committed-error rate.
    """
    if n <= 0:
        raise SimulationError("n must be positive")
    samples = []
    while len(samples) < n:
        obj = world.sample_object(rng)
        output, score = chain.perceive_with_score(obj, rng)
        if output == NONE_LABEL:
            continue  # detection outcome, not a classification claim
        committed_wrong = (output in (CAR, PEDESTRIAN) and
                           output != obj.label)
        samples.append((score, output, committed_wrong))
    curve = []
    for threshold in thresholds:
        accepted = [(s, o, w) for s, o, w in samples
                    if s <= threshold and o != UNCERTAIN_LABEL]
        coverage = len(accepted) / n
        risk = (sum(w for _, _, w in accepted) / len(accepted)
                if accepted else 0.0)
        curve.append(RiskCoveragePoint(threshold=threshold,
                                       coverage=coverage,
                                       selective_risk=risk))
    return curve
