"""Perception-chain simulation: the paper's §V-B worked example as a system.

"Consider we want to develop a perception chain consisting of a camera
with a machine learning algorithm that classifies objects."  This package
provides:

- a world/scenario generator whose ground-truth ontology is *larger* than
  the deployed model's (cars, pedestrians, and a long tail of novel
  objects — the controllable unknown-unknown rate),
- sensor and classifier simulations parameterized by confusion matrices,
- an uncertainty-aware ensemble classifier (epistemic output, refs [5,6]),
- redundant diverse chains with voting and evidential fusion,
- operational-design-domain (ODD) restriction, the prevention mean.
"""

from repro.perception.chain import (
    PerceptionChain,
    build_fig4_network,
    estimate_cpt_from_simulation,
    table1_cpt_rows,
)
from repro.perception.classifier import (
    ConfusionMatrixClassifier,
    UncertaintyAwareClassifier,
)
from repro.perception.odd import OperationalDesignDomain
from repro.perception.redundancy import RedundantPerceptionSystem
from repro.perception.sensors import CameraModel, SensorReading
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
    ObjectInstance,
    WorldModel,
)

__all__ = [
    "PerceptionChain",
    "build_fig4_network",
    "estimate_cpt_from_simulation",
    "table1_cpt_rows",
    "ConfusionMatrixClassifier",
    "UncertaintyAwareClassifier",
    "OperationalDesignDomain",
    "RedundantPerceptionSystem",
    "CameraModel",
    "SensorReading",
    "ObjectInstance",
    "WorldModel",
    "CAR",
    "PEDESTRIAN",
    "UNKNOWN",
    "NONE_LABEL",
    "UNCERTAIN_LABEL",
]
