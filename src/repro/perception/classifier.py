"""Classifier simulations: plain confusion-matrix and uncertainty-aware.

The plain classifier reproduces the abstraction of the paper's Table I — a
stochastic map from ground truth to an output label.  The
uncertainty-aware variant simulates the "machine learning with epistemic
uncertainty outputs" the paper lists as an uncertainty-*tolerance* means
(refs [5], [6]): an ensemble whose member disagreement is surfaced as an
explicit "car/pedestrian" (don't-know-which) output.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.perception.sensors import SensorReading
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
)

OUTPUT_LABELS = (CAR, PEDESTRIAN, NONE_LABEL)
ASSESSMENT_LABELS = (CAR, PEDESTRIAN, UNCERTAIN_LABEL, NONE_LABEL)


def _validate_confusion(confusion: Mapping[str, Mapping[str, float]]) -> None:
    for truth, row in confusion.items():
        extra = set(row) - set(OUTPUT_LABELS)
        if extra:
            raise SimulationError(
                f"confusion row {truth!r} has invalid outputs {sorted(extra)}")
        total = sum(row.values())
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(
                f"confusion row {truth!r} sums to {total}, expected 1")
        if any(p < 0 for p in row.values()):
            raise SimulationError(f"confusion row {truth!r} has negative entries")


DEFAULT_CONFUSION: Dict[str, Dict[str, float]] = {
    # Rows consistent with the spirit of Table I (collapsing the paper's
    # epistemic 'car/pedestrian' column back into the error budget).
    CAR: {CAR: 0.93, PEDESTRIAN: 0.02, NONE_LABEL: 0.05},
    PEDESTRIAN: {CAR: 0.02, PEDESTRIAN: 0.93, NONE_LABEL: 0.05},
    UNKNOWN: {CAR: 0.12, PEDESTRIAN: 0.12, NONE_LABEL: 0.76},
}


class ConfusionMatrixClassifier:
    """A classifier defined by per-ground-truth output distributions.

    Feature quality modulates the confusion: at quality 1 the nominal
    matrix applies; as quality drops, mass shifts toward errors and
    ``none``.  Undetected objects are always ``none``.
    """

    def __init__(self, confusion: Optional[Mapping[str, Mapping[str, float]]] = None,
                 quality_sensitivity: float = 0.35):
        confusion = {k: dict(v) for k, v in (confusion or DEFAULT_CONFUSION).items()}
        _validate_confusion(confusion)
        missing = {CAR, PEDESTRIAN, UNKNOWN} - set(confusion)
        if missing:
            raise SimulationError(f"confusion matrix missing rows {sorted(missing)}")
        if not 0.0 <= quality_sensitivity <= 1.0:
            raise SimulationError("quality_sensitivity must be in [0, 1]")
        self.confusion = confusion
        self.quality_sensitivity = quality_sensitivity

    def output_distribution(self, label: str, quality: float) -> Dict[str, float]:
        """Output distribution for a ground-truth label at given quality."""
        if label not in self.confusion:
            raise SimulationError(f"unknown ground-truth label {label!r}")
        if not 0.0 <= quality <= 1.0:
            raise SimulationError("quality must be in [0, 1]")
        nominal = self.confusion[label]
        # Blend toward the 'degraded' distribution (mostly none + confusion).
        degraded = {CAR: 0.15, PEDESTRIAN: 0.15, NONE_LABEL: 0.70}
        w = 1.0 - self.quality_sensitivity * (1.0 - quality)
        return {out: w * nominal[out] + (1.0 - w) * degraded[out]
                for out in OUTPUT_LABELS}

    def classify(self, reading: SensorReading, rng: np.random.Generator) -> str:
        if not reading.detected:
            return NONE_LABEL
        dist = self.output_distribution(reading.label, reading.quality)
        labels = list(dist)
        probs = np.array([dist[l] for l in labels])
        return labels[int(rng.choice(len(labels), p=probs / probs.sum()))]

    def perturbed(self, rng: np.random.Generator, scale: float = 0.05
                  ) -> "ConfusionMatrixClassifier":
        """A randomly perturbed copy (ensemble member / diverse channel)."""
        if scale < 0.0:
            raise SimulationError("scale must be non-negative")
        new_conf: Dict[str, Dict[str, float]] = {}
        for truth, row in self.confusion.items():
            probs = np.array([row[l] for l in OUTPUT_LABELS])
            noise = rng.normal(0.0, scale, size=probs.shape)
            perturbed = np.clip(probs + noise, 1e-4, None)
            perturbed = perturbed / perturbed.sum()
            new_conf[truth] = dict(zip(OUTPUT_LABELS, (float(p) for p in perturbed)))
        return ConfusionMatrixClassifier(new_conf, self.quality_sensitivity)

    def __repr__(self) -> str:
        return f"ConfusionMatrixClassifier(sensitivity={self.quality_sensitivity})"


class UncertaintyAwareClassifier:
    """Ensemble classifier that exposes epistemic uncertainty.

    Runs ``n_members`` perturbed confusion classifiers; when members
    disagree between ``car`` and ``pedestrian`` beyond
    ``disagreement_threshold``, it outputs the paper's explicit epistemic
    state ``car/pedestrian`` instead of committing.  This realizes
    "components that can detect uncertainty" (uncertainty tolerance, §IV).
    """

    def __init__(self, base: Optional[ConfusionMatrixClassifier] = None,
                 n_members: int = 7, perturbation: float = 0.06,
                 disagreement_threshold: float = 0.3,
                 seed: int = 1234):
        if n_members < 2:
            raise SimulationError("ensemble needs at least 2 members")
        if not 0.0 <= disagreement_threshold <= 1.0:
            raise SimulationError("disagreement_threshold must be in [0, 1]")
        base = base or ConfusionMatrixClassifier()
        member_rng = np.random.default_rng(seed)
        self.members = [base.perturbed(member_rng, perturbation)
                        for _ in range(n_members)]
        self.disagreement_threshold = disagreement_threshold

    def classify(self, reading: SensorReading,
                 rng: np.random.Generator) -> Tuple[str, float]:
        """Return (assessment label, epistemic disagreement score)."""
        if not reading.detected:
            return NONE_LABEL, 0.0
        votes = [m.classify(reading, rng) for m in self.members]
        counts = {l: votes.count(l) for l in OUTPUT_LABELS}
        n = len(votes)
        top_label = max(counts, key=lambda l: counts[l])
        # Epistemic score: 1 - margin of the winning label.
        disagreement = 1.0 - counts[top_label] / n
        cp = counts[CAR] + counts[PEDESTRIAN]
        if (cp > counts[NONE_LABEL] and
                min(counts[CAR], counts[PEDESTRIAN]) / n >= self.disagreement_threshold / 2
                and disagreement >= self.disagreement_threshold):
            return UNCERTAIN_LABEL, disagreement
        return top_label, disagreement

    def __repr__(self) -> str:
        return (f"UncertaintyAwareClassifier(members={len(self.members)}, "
                f"threshold={self.disagreement_threshold})")
