"""Operational design domain (ODD) restriction — uncertainty prevention.

"Uncertainty prevention can e.g. be achieved by ... restriction of the
operational design domain" (paper §IV).  An ODD is a predicate over
scenario attributes; restricting it changes the encounter distribution the
deployed system faces, trading availability for a lower unknown-unknown
rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.perception.world import ObjectInstance, WorldModel


@dataclass(frozen=True)
class OperationalDesignDomain:
    """Constraints on the conditions under which the system may operate."""

    allow_night: bool = True
    allow_rain: bool = True
    max_distance: float = float("inf")
    max_occlusion: float = 1.0
    unknown_exposure_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.max_distance <= 0.0:
            raise SimulationError("max_distance must be positive")
        if not 0.0 <= self.max_occlusion <= 1.0:
            raise SimulationError("max_occlusion must be in [0, 1]")
        if not 0.0 <= self.unknown_exposure_factor <= 1.0:
            raise SimulationError("unknown_exposure_factor must be in [0, 1]")

    def admits(self, obj: ObjectInstance) -> bool:
        """Is this encounter inside the ODD?"""
        if obj.night and not self.allow_night:
            return False
        if obj.rain and not self.allow_rain:
            return False
        if obj.distance > self.max_distance:
            return False
        if obj.occlusion > self.max_occlusion:
            return False
        return True

    def restricted_world(self, world: WorldModel) -> WorldModel:
        """The encounter distribution inside the ODD.

        Condition rates collapse for excluded conditions; the unknown rate
        scales by ``unknown_exposure_factor`` (a geo-fenced domain exposes
        the vehicle to fewer novel object kinds).
        """
        return world.restricted(
            p_unknown=world.p_unknown * self.unknown_exposure_factor,
            night_rate=world.night_rate if self.allow_night else 0.0,
            rain_rate=world.rain_rate if self.allow_rain else 0.0,
        )

    def availability(self, world: WorldModel, rng: np.random.Generator,
                     n_samples: int = 2000) -> float:
        """Fraction of unrestricted encounters the ODD admits — the cost of
        prevention (a tighter ODD means the function is available less)."""
        if n_samples <= 0:
            raise SimulationError("n_samples must be positive")
        admitted = sum(self.admits(world.sample_object(rng))
                       for _ in range(n_samples))
        return admitted / n_samples


FULL_ODD = OperationalDesignDomain()

#: A conservative launch ODD: daytime, dry, close range, geo-fenced.
RESTRICTED_ODD = OperationalDesignDomain(
    allow_night=False, allow_rain=False, max_distance=60.0,
    max_occlusion=0.5, unknown_exposure_factor=0.3)
