"""Ground-truth world model and scenario generation.

The deployed perception model's ontology is {car, pedestrian}; the *world*
additionally contains a long tail of novel object kinds (the paper's
"unknown" state, §V-B, and the "long furry tail of unlikely events" of
refs [30, 31]).  The generator makes the unknown-unknown rate an explicit,
controllable parameter so ontological uncertainty becomes measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.probability.distributions import Categorical

CAR = "car"
PEDESTRIAN = "pedestrian"
UNKNOWN = "unknown"  # aggregate label for everything outside the ontology
NONE_LABEL = "none"
UNCERTAIN_LABEL = "car/pedestrian"  # the paper's epistemic assessment state

KNOWN_CLASSES = (CAR, PEDESTRIAN)

# A long tail of concrete novel object kinds aggregated as "unknown".
DEFAULT_NOVEL_KINDS = (
    "kangaroo", "deer", "moose", "debris", "shopping_cart", "wheelchair",
    "horse_carriage", "construction_barrel", "couch", "ladder",
    "tumbleweed", "escaped_zoo_animal",
)


@dataclass(frozen=True)
class ObjectInstance:
    """One object encountered by the vehicle.

    ``true_class`` is the fine-grained reality ("kangaroo"); ``label`` is
    its coarse ground-truth category ("car"/"pedestrian"/"unknown") — the
    resolution at which the paper's Fig. 4 BN operates.  Context attributes
    modulate sensor performance.
    """

    true_class: str
    label: str
    distance: float
    occlusion: float
    night: bool
    rain: bool

    def __post_init__(self) -> None:
        if self.label not in (CAR, PEDESTRIAN, UNKNOWN):
            raise SimulationError(f"invalid label {self.label!r}")
        if self.distance <= 0.0:
            raise SimulationError("distance must be positive")
        if not 0.0 <= self.occlusion <= 1.0:
            raise SimulationError("occlusion must be in [0, 1]")


class WorldModel:
    """The aleatory model of what the vehicle encounters.

    Parameters mirror the paper's priors: P(car)=0.6, P(pedestrian)=0.3,
    P(unknown)=0.1.  The unknown mass is spread over ``novel_kinds`` with a
    Zipf (power-law) tail so that some kinds stay unobserved for a long
    time — the substrate for Good-Turing forecasting experiments.
    """

    def __init__(self, p_car: float = 0.6, p_pedestrian: float = 0.3,
                 p_unknown: float = 0.1,
                 novel_kinds: Sequence[str] = DEFAULT_NOVEL_KINDS,
                 zipf_exponent: float = 1.5,
                 night_rate: float = 0.3, rain_rate: float = 0.2):
        total = p_car + p_pedestrian + p_unknown
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(f"class priors must sum to 1, got {total}")
        if p_unknown > 0 and not novel_kinds:
            raise SimulationError("p_unknown > 0 requires novel kinds")
        if not 0.0 <= night_rate <= 1.0 or not 0.0 <= rain_rate <= 1.0:
            raise SimulationError("rates must be in [0, 1]")
        self.p_car = p_car
        self.p_pedestrian = p_pedestrian
        self.p_unknown = p_unknown
        self.novel_kinds = tuple(novel_kinds)
        self.night_rate = night_rate
        self.rain_rate = rain_rate
        if self.novel_kinds:
            ranks = np.arange(1, len(self.novel_kinds) + 1, dtype=float)
            weights = ranks ** (-zipf_exponent)
            self._novel_probs = weights / weights.sum()
        else:
            self._novel_probs = np.array([])

    def label_prior(self) -> Categorical:
        """The coarse ground-truth prior of the paper's Fig. 4 root node."""
        return Categorical({CAR: self.p_car, PEDESTRIAN: self.p_pedestrian,
                            UNKNOWN: self.p_unknown})

    def fine_grained_prior(self) -> Categorical:
        """The full aleatory world distribution over concrete kinds."""
        probs: Dict[str, float] = {CAR: self.p_car, PEDESTRIAN: self.p_pedestrian}
        for kind, w in zip(self.novel_kinds, self._novel_probs):
            probs[kind] = self.p_unknown * float(w)
        return Categorical(probs)

    def sample_object(self, rng: np.random.Generator) -> ObjectInstance:
        u = rng.random()
        if u < self.p_car:
            true_class, label = CAR, CAR
        elif u < self.p_car + self.p_pedestrian:
            true_class, label = PEDESTRIAN, PEDESTRIAN
        else:
            idx = int(rng.choice(len(self.novel_kinds), p=self._novel_probs))
            true_class, label = self.novel_kinds[idx], UNKNOWN
        distance = float(rng.uniform(5.0, 100.0))
        occlusion = float(np.clip(rng.beta(1.2, 4.0), 0.0, 1.0))
        night = bool(rng.random() < self.night_rate)
        rain = bool(rng.random() < self.rain_rate)
        return ObjectInstance(true_class=true_class, label=label,
                              distance=distance, occlusion=occlusion,
                              night=night, rain=rain)

    def sample_scene(self, rng: np.random.Generator,
                     n_objects: int) -> List[ObjectInstance]:
        if n_objects < 0:
            raise SimulationError("n_objects must be non-negative")
        return [self.sample_object(rng) for _ in range(n_objects)]

    def restricted(self, *, p_unknown: Optional[float] = None,
                   night_rate: Optional[float] = None,
                   rain_rate: Optional[float] = None) -> "WorldModel":
        """A re-weighted world (used by ODD restriction).

        Lowering ``p_unknown`` renormalizes the known-class mass up —
        restricting where the vehicle drives changes what it encounters.
        """
        new_unknown = self.p_unknown if p_unknown is None else p_unknown
        if not 0.0 <= new_unknown < 1.0:
            raise SimulationError("p_unknown must be in [0, 1)")
        known = self.p_car + self.p_pedestrian
        scale = (1.0 - new_unknown) / known
        return WorldModel(
            p_car=self.p_car * scale,
            p_pedestrian=self.p_pedestrian * scale,
            p_unknown=new_unknown,
            novel_kinds=self.novel_kinds,
            night_rate=self.night_rate if night_rate is None else night_rate,
            rain_rate=self.rain_rate if rain_rate is None else rain_rate,
        )

    def __repr__(self) -> str:
        return (f"WorldModel(car={self.p_car}, ped={self.p_pedestrian}, "
                f"unknown={self.p_unknown}, kinds={len(self.novel_kinds)})")
