"""Information-theoretic measures: entropy, divergences, and surprise.

The paper grounds the epistemic/ontological distinction in information
theory: "Mathematically the conditional entropy between the system and its
model can be used as a formal expression for the surprise factor"
(§III-C, refs [28], [29]).  This package provides those measures and a
runtime surprise monitor built on them.
"""

from repro.information.entropy import (
    conditional_entropy,
    cross_entropy,
    entropy,
    entropy_categorical,
    jensen_shannon_divergence,
    joint_entropy,
    kl_divergence,
    kl_divergence_categorical,
    mutual_information,
)
from repro.information.surprise import SurpriseMonitor, SurpriseReport, model_system_gap

__all__ = [
    "conditional_entropy",
    "cross_entropy",
    "entropy",
    "entropy_categorical",
    "jensen_shannon_divergence",
    "joint_entropy",
    "kl_divergence",
    "kl_divergence_categorical",
    "mutual_information",
    "SurpriseMonitor",
    "SurpriseReport",
    "model_system_gap",
]
