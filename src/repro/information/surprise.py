"""Surprise monitoring: detecting when observations contradict the model.

The paper (§III-C) characterizes the epistemic/ontological boundary
"subjectively ... by the surprise factor when we observe new behavior" and
formally by the conditional entropy between system and model.  This module
implements a runtime monitor that scores each observation's surprisal under
the current model and flags two regimes:

- *epistemic surprise*: the observation is inside the model's ontology but
  improbable — parameters should be updated;
- *ontological surprise*: the observation is outside the model's support
  (infinite surprisal) or a persistent residual trend indicates a missing
  phenomenon — the model's structure must be extended.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DistributionError
from repro.information.entropy import entropy_categorical
from repro.probability.distributions import Categorical


@dataclass
class SurpriseReport:
    """Result of scoring one observation against the model."""

    observation: str
    surprisal: float
    in_ontology: bool
    epistemic_alarm: bool
    ontological_alarm: bool

    @property
    def any_alarm(self) -> bool:
        return self.epistemic_alarm or self.ontological_alarm


class SurpriseMonitor:
    """Streaming surprise monitor over categorical observations.

    Parameters
    ----------
    model:
        The Categorical the deployed model assigns to observations.
    epistemic_threshold_nats:
        Alarm when the rolling mean surprisal exceeds the model entropy by
        this margin (the model is *miscalibrated*: epistemic drift).
    window:
        Rolling-window length for the epistemic test.
    """

    def __init__(self, model: Categorical, *,
                 epistemic_threshold_nats: float = 0.5,
                 window: int = 50):
        if epistemic_threshold_nats <= 0:
            raise DistributionError("epistemic_threshold_nats must be positive")
        if window < 2:
            raise DistributionError("window must be at least 2")
        self.model = model
        self.epistemic_threshold_nats = epistemic_threshold_nats
        self.window = window
        self._recent: Deque[float] = deque(maxlen=window)
        self._n_seen = 0
        self._n_outside = 0
        self.history: List[SurpriseReport] = []

    @property
    def n_seen(self) -> int:
        return self._n_seen

    @property
    def n_outside_ontology(self) -> int:
        return self._n_outside

    def expected_surprisal(self) -> float:
        """The model's own entropy: baseline surprisal if it is correct."""
        return entropy_categorical(self.model)

    def rolling_mean_surprisal(self) -> float:
        if not self._recent:
            return 0.0
        return float(np.mean(self._recent))

    def score(self, observation: str) -> SurpriseReport:
        """Score one observation; updates rolling statistics."""
        self._n_seen += 1
        p = self.model.prob(observation)
        in_ontology = observation in self.model.outcomes
        if not in_ontology or p <= 0.0:
            # Infinite surprisal: ontological event (outside the support).
            self._n_outside += 1
            report = SurpriseReport(observation=observation, surprisal=math.inf,
                                    in_ontology=in_ontology,
                                    epistemic_alarm=False, ontological_alarm=True)
            self.history.append(report)
            return report
        surprisal = -math.log(p)
        self._recent.append(surprisal)
        epistemic_alarm = (len(self._recent) == self.window and
                           self.rolling_mean_surprisal() >
                           self.expected_surprisal() + self.epistemic_threshold_nats)
        report = SurpriseReport(observation=observation, surprisal=surprisal,
                                in_ontology=True,
                                epistemic_alarm=epistemic_alarm,
                                ontological_alarm=False)
        self.history.append(report)
        return report

    def score_sequence(self, observations: Sequence[str]) -> List[SurpriseReport]:
        return [self.score(o) for o in observations]

    def ontological_event_rate(self) -> float:
        """Fraction of observations outside the model's ontology."""
        if self._n_seen == 0:
            return 0.0
        return self._n_outside / self._n_seen

    def update_model(self, model: Categorical) -> None:
        """Swap in a refined model (uncertainty removal during use)."""
        self.model = model
        self._recent.clear()


class ResidualSurpriseMonitor:
    """Surprise monitor over continuous prediction residuals.

    Used in the orbital third-planet experiment: a deterministic model
    predicts a trajectory; residuals between prediction and observation are
    scored against the model's declared noise level.  A persistent
    standardized-residual drift beyond ``z_threshold`` flags a *model-form*
    (ontological) problem, while white heavy-tailed residuals suggest an
    underestimated noise model (epistemic).
    """

    def __init__(self, noise_std: float, *, z_threshold: float = 4.0,
                 window: int = 20):
        if noise_std <= 0:
            raise DistributionError("noise_std must be positive")
        if window < 2:
            raise DistributionError("window must be at least 2")
        self.noise_std = noise_std
        self.z_threshold = z_threshold
        self.window = window
        self._recent: Deque[float] = deque(maxlen=window)
        self._alarm_step: Optional[int] = None
        self._step = 0

    @property
    def alarm_step(self) -> Optional[int]:
        """Step index at which the ontological alarm first fired."""
        return self._alarm_step

    def score(self, residual: float) -> bool:
        """Feed one residual; returns True if the ontological alarm is raised."""
        self._step += 1
        self._recent.append(float(residual) / self.noise_std)
        if len(self._recent) < self.window:
            return False
        # Mean of n standardized residuals ~ N(0, 1/n) under the model;
        # compare against z_threshold / sqrt(n).
        z_mean = float(np.mean(self._recent)) * math.sqrt(len(self._recent))
        alarmed = abs(z_mean) > self.z_threshold
        if alarmed and self._alarm_step is None:
            self._alarm_step = self._step
        return alarmed


def model_system_gap(system: Categorical, model: Categorical) -> Dict[str, float]:
    """Decompose the system/model mismatch into epistemic and ontological parts.

    Returns a dict with:

    - ``ontological_mass``: probability the system puts on outcomes missing
      from the model's ontology (the unknown-unknown mass);
    - ``epistemic_kl``: KL divergence of the overlapping (renormalized)
      parts — the reducible, parameter-level mismatch;
    - ``system_entropy``: the aleatory content of the system itself.
    """
    model_support = set(model.outcomes)
    p_sys = system.probabilities
    onto_mass = sum(p for o, p in p_sys.items()
                    if o not in model_support or model.prob(o) <= 0.0)
    overlap = {o: p for o, p in p_sys.items()
               if o in model_support and model.prob(o) > 0.0 and p > 0.0}
    if overlap and onto_mass < 1.0:
        norm = sum(overlap.values())
        epi = 0.0
        # Renormalized model over the overlap support.
        q_norm = sum(model.prob(o) for o in overlap)
        for o, p in overlap.items():
            pi = p / norm
            qi = model.prob(o) / q_norm
            epi += pi * math.log(pi / qi)
    else:
        epi = 0.0
    return {
        "ontological_mass": float(onto_mass),
        "epistemic_kl": float(max(epi, 0.0)),
        "system_entropy": entropy_categorical(system),
    }
