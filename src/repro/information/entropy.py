"""Shannon entropy, conditional entropy, and divergences (all in nats).

All functions accept probability vectors/matrices as numpy arrays (or
nested sequences) and validate normalization.  Categorical-distribution
convenience wrappers interoperate with :mod:`repro.probability`.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Union

import numpy as np

from repro.errors import DistributionError
from repro.probability.distributions import Categorical

ArrayLike = Union[Sequence[float], np.ndarray]


def _validate_pmf(p: ArrayLike, name: str = "p", atol: float = 1e-6) -> np.ndarray:
    p = np.asarray(p, dtype=float).ravel()
    if p.size == 0:
        raise DistributionError(f"{name} must be non-empty")
    if np.any(p < -1e-12):
        raise DistributionError(f"{name} has negative entries")
    total = float(p.sum())
    if abs(total - 1.0) > atol:
        raise DistributionError(f"{name} must sum to 1, got {total}")
    return np.clip(p, 0.0, 1.0)


def entropy(p: ArrayLike) -> float:
    """Shannon entropy H(p) = -sum p log p, in nats."""
    p = _validate_pmf(p)
    nz = p[p > 0.0]
    return float(-np.sum(nz * np.log(nz)))


def entropy_categorical(dist: Categorical) -> float:
    """Entropy of a :class:`Categorical`."""
    return entropy(list(dist.probabilities.values()))


def joint_entropy(joint: ArrayLike) -> float:
    """Entropy of a joint pmf given as a matrix P[x, y]."""
    j = np.asarray(joint, dtype=float)
    return entropy(j.ravel())


def conditional_entropy(joint: ArrayLike) -> float:
    """Conditional entropy H(Y|X) of a joint pmf matrix P[x, y].

    This is the paper's formal "surprise factor": the residual uncertainty
    about the system (Y) given the model's prediction (X).  Computed as
    H(X, Y) - H(X).
    """
    j = np.asarray(joint, dtype=float)
    if j.ndim != 2:
        raise DistributionError("joint pmf must be a 2-d matrix P[x, y]")
    _validate_pmf(j.ravel(), "joint")
    marginal_x = j.sum(axis=1)
    return joint_entropy(j) - entropy(marginal_x)


def mutual_information(joint: ArrayLike) -> float:
    """Mutual information I(X; Y) = H(Y) - H(Y|X) of a joint pmf matrix."""
    j = np.asarray(joint, dtype=float)
    if j.ndim != 2:
        raise DistributionError("joint pmf must be a 2-d matrix P[x, y]")
    marginal_y = j.sum(axis=0)
    return entropy(marginal_y) - conditional_entropy(j)


def cross_entropy(p: ArrayLike, q: ArrayLike) -> float:
    """Cross entropy H(p, q) = -sum p log q. Infinite if q excludes support of p."""
    p = _validate_pmf(p, "p")
    q = _validate_pmf(q, "q")
    if p.size != q.size:
        raise DistributionError("p and q must have equal length")
    out = 0.0
    for pi, qi in zip(p, q):
        if pi > 0.0:
            if qi <= 0.0:
                return float("inf")
            out -= pi * math.log(qi)
    return out


def kl_divergence(p: ArrayLike, q: ArrayLike) -> float:
    """KL divergence D(p || q) in nats; +inf where q lacks support of p.

    D(p || q) quantifies the *epistemic* penalty of using model q when the
    system behaves as p — the information lost by the inexact encoding.
    """
    ce = cross_entropy(p, q)
    if math.isinf(ce):
        return float("inf")
    return ce - entropy(p)


def kl_divergence_categorical(p: Categorical, q: Categorical) -> float:
    """KL divergence between two Categoricals over a shared outcome set.

    Outcomes present in ``p`` but absent from ``q``'s support yield +inf:
    the signature of an *ontological* gap rather than a merely epistemic
    one — ``q``'s ontology simply does not contain the event.
    """
    out = 0.0
    for outcome, pp in p.probabilities.items():
        if pp <= 0.0:
            continue
        qq = q.prob(outcome)
        if qq <= 0.0:
            return float("inf")
        out += pp * math.log(pp / qq)
    return out


def jensen_shannon_divergence(p: ArrayLike, q: ArrayLike) -> float:
    """Jensen-Shannon divergence (symmetric, bounded by log 2)."""
    p = _validate_pmf(p, "p")
    q = _validate_pmf(q, "q")
    if p.size != q.size:
        raise DistributionError("p and q must have equal length")
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def empirical_pmf(samples: Sequence[str], support: Sequence[str]) -> np.ndarray:
    """Relative frequencies of ``samples`` over an explicit support."""
    support = list(support)
    if not support:
        raise DistributionError("support must be non-empty")
    counts = {s: 0 for s in support}
    unknown = 0
    for s in samples:
        if s in counts:
            counts[s] += 1
        else:
            unknown += 1
    total = len(list(samples))
    if total == 0:
        raise DistributionError("samples must be non-empty")
    if unknown:
        raise DistributionError(
            f"{unknown} samples fall outside the declared support — extend the "
            "support (ontological re-modeling) before computing frequencies")
    return np.array([counts[s] / total for s in support])


def joint_pmf_from_conditionals(prior: Dict[str, float],
                                conditionals: Dict[str, Dict[str, float]]) -> np.ndarray:
    """Build the joint matrix P[x, y] = P(x) P(y|x) from dict inputs.

    Row order follows ``prior`` insertion order; column order follows the
    first conditional row's insertion order.
    """
    xs = list(prior)
    if not xs:
        raise DistributionError("prior must be non-empty")
    ys = list(conditionals[xs[0]])
    joint = np.zeros((len(xs), len(ys)))
    for i, x in enumerate(xs):
        row = conditionals.get(x)
        if row is None:
            raise DistributionError(f"missing conditional row for {x!r}")
        if list(row) != ys:
            raise DistributionError("conditional rows must share outcome order")
        for j, y in enumerate(ys):
            joint[i, j] = prior[x] * row[y]
    _validate_pmf(joint.ravel(), "joint")
    return joint
