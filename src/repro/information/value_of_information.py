"""Value of information: which observation to buy next.

The strategy engine decides *which means*; VoI decides *which concrete
observation* within the removal means: for a decision with costs, the
expected value of observing a variable before deciding is the expected
drop in Bayes risk.  Zero-VoI observations are epistemically idle — data
collection effort belongs on the variables this module ranks highest.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bayesnet.engine import InferenceEngine, as_engine
from repro.bayesnet.network import BayesianNetwork
from repro.errors import InferenceError
from repro.parallel import ParallelExecutor
from repro.telemetry import tracing

#: Consumers accept either and normalize through :func:`as_engine`.
NetworkOrEngine = Union[BayesianNetwork, InferenceEngine]


@dataclass(frozen=True)
class DecisionProblem:
    """A single-shot decision attached to a BN variable.

    ``utilities[(action, state)]`` is the payoff of taking ``action`` when
    the target variable turns out to be ``state``.
    """

    target: str
    actions: Tuple[str, ...]
    utilities: Mapping[Tuple[str, str], float]

    def __post_init__(self) -> None:
        if not self.actions:
            raise InferenceError("at least one action required")

    def utility(self, action: str, state: str) -> float:
        try:
            return float(self.utilities[(action, state)])
        except KeyError:
            raise InferenceError(
                f"no utility for action {action!r} in state {state!r}") from None


def best_action(problem: DecisionProblem,
                posterior: Mapping[str, float]) -> Tuple[str, float]:
    """Max-expected-utility action under a posterior over the target."""
    best, best_eu = None, float("-inf")
    for action in problem.actions:
        eu = sum(p * problem.utility(action, state)
                 for state, p in posterior.items())
        if eu > best_eu:
            best, best_eu = action, eu
    assert best is not None
    return best, best_eu


def expected_value_of_observation(network: NetworkOrEngine,
                                  problem: DecisionProblem,
                                  observable: str,
                                  evidence: Optional[Mapping[str, str]] = None
                                  ) -> float:
    """EVO of observing ``observable`` before deciding about the target.

    EVO = E_over_observation_outcomes[ max_a EU(a | outcome) ]
          - max_a EU(a | current evidence),  always >= 0.

    Accepts a :class:`BayesianNetwork` or an
    :class:`~repro.bayesnet.engine.InferenceEngine`; the per-outcome
    posteriors run as one batched sweep over the engine's compiled plan.
    """
    engine = as_engine(network)
    with tracing.span("voi.evo", observable=observable, target=problem.target):
        return _evo_block(engine, problem, dict(evidence or {}),
                          [observable])[0][1]


def _evo_block(engine: InferenceEngine, problem: DecisionProblem,
               evidence: Dict[str, str],
               observables: Sequence[str]) -> List[Tuple[str, float]]:
    """EVO scores for a block of observables via ONE batched sweep.

    The per-outcome posterior rows of *every* observable in the block
    are concatenated and submitted as a single
    :meth:`~repro.bayesnet.engine.CompiledNetwork.query_batch` call, so
    the whole block shares one stacked calibration / joint-gather pass
    instead of one engine round-trip per observable.  Each row's answer
    depends only on that row (gather rows index the joint
    independently; stacked calibration is batch-invariant), so scores
    are float-identical to scoring observables one at a time — block
    size is purely a throughput knob.
    """
    prior_posterior = engine.query(problem.target, evidence)
    _, eu_now = best_action(problem, prior_posterior)
    dists: List[Tuple[Dict[str, float], List[str]]] = []
    spans: List[Tuple[int, int]] = []
    rows: List[Dict[str, str]] = []
    for observable in observables:
        if observable in evidence:
            raise InferenceError(f"{observable!r} is already observed")
        if observable == problem.target:
            raise InferenceError(
                "observing the target itself is clairvoyance; "
                "use expected_value_of_perfect_information")
        obs_dist = engine.query(observable, evidence)
        outcomes = [o for o, p in obs_dist.items() if p > 0.0]
        start = len(rows)
        rows.extend({**evidence, observable: o} for o in outcomes)
        spans.append((start, len(rows)))
        dists.append((obs_dist, outcomes))
    posteriors = engine.query_batch(problem.target, rows) if rows else []
    scored: List[Tuple[str, float]] = []
    for observable, (obs_dist, outcomes), (start, end) in zip(
            observables, dists, spans):
        eu_with = 0.0
        for outcome, posterior in zip(outcomes, posteriors[start:end]):
            _, eu = best_action(problem, posterior)
            eu_with += obs_dist[outcome] * eu
        scored.append((observable, max(0.0, eu_with - eu_now)))
    return scored


def expected_value_of_perfect_information(
        network: NetworkOrEngine, problem: DecisionProblem,
        evidence: Optional[Mapping[str, str]] = None) -> float:
    """EVPI: the ceiling on what any observation can be worth."""
    engine = as_engine(network)
    evidence = dict(evidence or {})
    posterior = engine.query(problem.target, evidence)
    _, eu_now = best_action(problem, posterior)
    eu_perfect = sum(
        p * max(problem.utility(a, state) for a in problem.actions)
        for state, p in posterior.items())
    return max(0.0, eu_perfect - eu_now)


def _evo_chunk(problem: DecisionProblem,
               evidence: Optional[Mapping[str, str]],
               base: "CompiledNetwork",
               observables: Sequence[str]) -> List[Tuple[str, float]]:
    """EVO scores for one chunk of observables on a forked engine.

    ``base`` is the once-shipped shared context of
    :meth:`~repro.parallel.ParallelExecutor.map_with_context`: a
    prewarmed :class:`~repro.bayesnet.engine.CompiledNetwork` whose
    compiled plans, joint tables and calibrated junction tree arrive in
    every worker ready to use.  Each chunk forks it — sharing the warm
    immutable artifacts, privatizing the mutable caches — so
    thread-backend chunks never race and nothing recompiles per chunk;
    every EVO is exact arithmetic, so chunking changes nothing.
    """
    engine = base.fork()
    return _evo_block(engine, problem, dict(evidence or {}),
                      list(observables))


def rank_observables(network: NetworkOrEngine, problem: DecisionProblem,
                     observables: Sequence[str],
                     evidence: Optional[Mapping[str, str]] = None,
                     executor: Optional[ParallelExecutor] = None
                     ) -> List[Tuple[str, float]]:
    """Observables ranked by EVO (descending) — the data-shopping list.

    Serially the engine handle is resolved once and shared across the
    whole ranking, so every observable's sweep reuses the same compiled
    plans.  With a parallel ``executor`` the observables fan out in
    chunks over one prewarmed engine shipped to workers once
    (:meth:`~repro.parallel.ParallelExecutor.map_with_context`) and
    forked per chunk — on the process backend the engine's factor and
    joint tables travel through the shared-memory arena as read-only
    views, so the warm state is mapped, not copied, into every worker;
    scores are exact either way, so the ranking is identical on every
    backend.
    """
    from repro.bayesnet.engine import CompiledNetwork

    engine = as_engine(network)
    executor = executor or ParallelExecutor()
    with tracing.span("voi.rank", target=problem.target,
                      n_observables=len(observables)):
        underlying = getattr(engine, "network", None)
        if executor.workers > 1:
            base = None
            if isinstance(engine, CompiledNetwork):
                base = engine
            elif isinstance(underlying, BayesianNetwork):
                base = CompiledNetwork(underlying)
            if base is not None:
                scored = executor.map_with_context(
                    partial(_evo_chunk, problem, evidence),
                    base.prewarm(), observables)
            else:
                scored = _evo_block(engine, problem,
                                    dict(evidence or {}), observables)
        else:
            # Whole ranking as one row block: every observable's
            # outcome rows ride a single batched calibration.
            scored = _evo_block(engine, problem, dict(evidence or {}),
                                observables)
    return sorted(scored, key=lambda t: -t[1])
