"""Value of information: which observation to buy next.

The strategy engine decides *which means*; VoI decides *which concrete
observation* within the removal means: for a decision with costs, the
expected value of observing a variable before deciding is the expected
drop in Bayes risk.  Zero-VoI observations are epistemically idle — data
collection effort belongs on the variables this module ranks highest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bayesnet.network import BayesianNetwork
from repro.errors import InferenceError


@dataclass(frozen=True)
class DecisionProblem:
    """A single-shot decision attached to a BN variable.

    ``utilities[(action, state)]`` is the payoff of taking ``action`` when
    the target variable turns out to be ``state``.
    """

    target: str
    actions: Tuple[str, ...]
    utilities: Mapping[Tuple[str, str], float]

    def __post_init__(self) -> None:
        if not self.actions:
            raise InferenceError("at least one action required")

    def utility(self, action: str, state: str) -> float:
        try:
            return float(self.utilities[(action, state)])
        except KeyError:
            raise InferenceError(
                f"no utility for action {action!r} in state {state!r}") from None


def best_action(problem: DecisionProblem,
                posterior: Mapping[str, float]) -> Tuple[str, float]:
    """Max-expected-utility action under a posterior over the target."""
    best, best_eu = None, float("-inf")
    for action in problem.actions:
        eu = sum(p * problem.utility(action, state)
                 for state, p in posterior.items())
        if eu > best_eu:
            best, best_eu = action, eu
    assert best is not None
    return best, best_eu


def expected_value_of_observation(network: BayesianNetwork,
                                  problem: DecisionProblem,
                                  observable: str,
                                  evidence: Optional[Mapping[str, str]] = None
                                  ) -> float:
    """EVO of observing ``observable`` before deciding about the target.

    EVO = E_over_observation_outcomes[ max_a EU(a | outcome) ]
          - max_a EU(a | current evidence),  always >= 0.
    """
    evidence = dict(evidence or {})
    if observable in evidence:
        raise InferenceError(f"{observable!r} is already observed")
    if observable == problem.target:
        raise InferenceError("observing the target itself is clairvoyance; "
                             "use expected_value_of_perfect_information")
    prior_posterior = network.query(problem.target, evidence)
    _, eu_now = best_action(problem, prior_posterior)
    obs_dist = network.query(observable, evidence)
    eu_with = 0.0
    for outcome, p_outcome in obs_dist.items():
        if p_outcome <= 0.0:
            continue
        extended = dict(evidence)
        extended[outcome_key := observable] = outcome
        posterior = network.query(problem.target, extended)
        _, eu = best_action(problem, posterior)
        eu_with += p_outcome * eu
    return max(0.0, eu_with - eu_now)


def expected_value_of_perfect_information(
        network: BayesianNetwork, problem: DecisionProblem,
        evidence: Optional[Mapping[str, str]] = None) -> float:
    """EVPI: the ceiling on what any observation can be worth."""
    evidence = dict(evidence or {})
    posterior = network.query(problem.target, evidence)
    _, eu_now = best_action(problem, posterior)
    eu_perfect = sum(
        p * max(problem.utility(a, state) for a in problem.actions)
        for state, p in posterior.items())
    return max(0.0, eu_perfect - eu_now)


def rank_observables(network: BayesianNetwork, problem: DecisionProblem,
                     observables: Sequence[str],
                     evidence: Optional[Mapping[str, str]] = None
                     ) -> List[Tuple[str, float]]:
    """Observables ranked by EVO (descending) — the data-shopping list."""
    scored = [(name, expected_value_of_observation(network, problem, name,
                                                   evidence))
              for name in observables]
    return sorted(scored, key=lambda t: -t[1])
