"""The supervised perception runtime: channels + fusion + supervisor.

Glues the fault-injected channels, the existing redundant-fusion rules
and the degradation supervisor into one steppable system — the runtime
realization of the paper's tolerance mean that the campaign engine
stresses.  Per encounter:

1. every channel perceives (faults may fire);
2. timed-out channels are retried under the supervisor's bounded-backoff
   :class:`~repro.robustness.supervisor.RetryPolicy` (the watchdog path);
3. in-deadline outputs are fused with the configured rule;
4. the supervisor advances its state machine and emits the vehicle mode;
5. the encounter is scored with the fallback hazard semantics
   (:meth:`FallbackPolicy.is_hazardous`) — scoring uses ground truth,
   the supervisor itself never does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SupervisorError
from repro.means.tolerance import ACT_NORMALLY, FallbackPolicy
from repro.perception.redundancy import RedundantPerceptionSystem
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNKNOWN,
    ObjectInstance,
    WorldModel,
)
from repro.robustness.faults import ChannelTelemetry, FaultInjectedChain
from repro.robustness.report import RunMetrics
from repro.robustness.supervisor import DegradationSupervisor


@dataclass(frozen=True)
class StepResult:
    """Everything observable about one supervised encounter."""

    obj: ObjectInstance
    telemetry: Tuple[ChannelTelemetry, ...]
    fused_output: Optional[str]
    mode: str
    hazardous: bool
    retries: int


class SupervisedPerceptionSystem:
    """Fault-injectable redundant perception under a degradation supervisor."""

    def __init__(self, channels: Sequence[FaultInjectedChain],
                 fusion: str = "conservative",
                 supervisor: Optional[DegradationSupervisor] = None,
                 policy: Optional[FallbackPolicy] = None,
                 channel_reliability: float = 0.9):
        if not channels:
            raise SupervisorError("at least one channel required")
        self.channels = list(channels)
        self.policy = policy or FallbackPolicy()
        self.supervisor = supervisor or DegradationSupervisor(
            len(channels), policy=self.policy)
        if self.supervisor.n_channels != len(self.channels):
            raise SupervisorError(
                f"supervisor expects {self.supervisor.n_channels} channels, "
                f"system has {len(self.channels)}")
        # Reuse the existing fusion rules on the unwrapped chains.
        self._fuser = RedundantPerceptionSystem(
            [c.chain for c in self.channels], fusion=fusion,
            channel_reliability=channel_reliability)

    @property
    def fusion(self) -> str:
        return self._fuser.fusion

    def reset(self) -> None:
        for c in self.channels:
            c.reset()
        self.supervisor.reset()

    def _query_channel(self, index: int, obj: ObjectInstance,
                       rng: np.random.Generator
                       ) -> Tuple[ChannelTelemetry, int]:
        """One channel with watchdog retries; returns (telemetry, retries)."""
        channel = self.channels[index]
        telemetry = channel.perceive_with_telemetry(obj, rng)
        retries = 0
        for attempt, delay in enumerate(self.supervisor.retry.delays(), 1):
            if not telemetry.timed_out:
                break
            self.supervisor.note_retry(index, attempt, delay)
            retries += 1
            telemetry = channel.perceive_with_telemetry(obj, rng)
        return telemetry, retries

    def step(self, obj: ObjectInstance, rng: np.random.Generator) -> StepResult:
        telemetry: List[ChannelTelemetry] = []
        retries = 0
        for i in range(len(self.channels)):
            t, r = self._query_channel(i, obj, rng)
            telemetry.append(t)
            retries += r

        delivered = [t.output for t in telemetry if not t.timed_out]
        fused = self._fuser.fuse(delivered) if delivered else None
        score = max((t.epistemic_score for t in telemetry
                     if not t.timed_out), default=0.0)
        mode = self.supervisor.step(telemetry, fused, score)
        hazardous = self.policy.is_hazardous(
            obj, fused if fused is not None else NONE_LABEL, mode)
        return StepResult(obj=obj, telemetry=tuple(telemetry),
                          fused_output=fused, mode=mode,
                          hazardous=hazardous, retries=retries)

    def run(self, world: WorldModel, rng: np.random.Generator,
            n_encounters: int) -> List[StepResult]:
        if n_encounters <= 0:
            raise SupervisorError("n_encounters must be positive")
        return [self.step(world.sample_object(rng), rng)
                for _ in range(n_encounters)]

    def __repr__(self) -> str:
        return (f"SupervisedPerceptionSystem(channels={len(self.channels)}, "
                f"fusion={self.fusion!r})")


def summarize_run(results: Sequence[StepResult]) -> RunMetrics:
    """Aggregate a supervised run into campaign metrics."""
    if not results:
        raise SupervisorError("cannot summarize an empty run")
    n = len(results)
    hazards = sum(1 for r in results if r.hazardous)
    degraded = sum(1 for r in results if r.mode != ACT_NORMALLY)
    timeouts = sum(1 for r in results
                   if any(t.timed_out for t in r.telemetry))
    retries = sum(r.retries for r in results)
    return RunMetrics(n_encounters=n, hazard_rate=hazards / n,
                      degraded_rate=degraded / n, timeout_rate=timeouts / n,
                      retry_rate=retries / n)


def run_unsupervised(channel: FaultInjectedChain, world: WorldModel,
                     rng: np.random.Generator,
                     n_encounters: int) -> RunMetrics:
    """Baseline: one (possibly fault-injected) chain, no supervisor.

    A missed deadline means no output reached the planner in time — the
    vehicle does not react, which is exactly the ``none`` hazard case of
    :func:`repro.perception.chain.hazardous_misperception_rate`; the same
    hazard semantics apply to delivered outputs.
    """
    if n_encounters <= 0:
        raise SupervisorError("n_encounters must be positive")
    hazards = 0
    timeouts = 0
    for _ in range(n_encounters):
        obj = world.sample_object(rng)
        t = channel.perceive_with_telemetry(obj, rng)
        output = NONE_LABEL if t.timed_out else t.output
        timeouts += t.timed_out
        if output == NONE_LABEL:
            hazards += 1
        elif obj.label == UNKNOWN and output in (CAR, PEDESTRIAN):
            hazards += 1
    return RunMetrics(n_encounters=n_encounters,
                      hazard_rate=hazards / n_encounters,
                      degraded_rate=0.0,
                      timeout_rate=timeouts / n_encounters)
