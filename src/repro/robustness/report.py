"""Structured results of a fault-injection campaign.

Follows the :mod:`repro.core.report` conventions: plain data containers
plus a ``to_markdown`` rendering, so the campaign outcome can be attached
to the :class:`~repro.core.report.UncertaintyDossier` as runtime-tolerance
evidence for the assurance case.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InjectionError
from repro.telemetry.export import TelemetryReport


@dataclass(frozen=True)
class RunMetrics:
    """Outcome metrics of one run (one architecture, one fault setting)."""

    n_encounters: int
    hazard_rate: float
    degraded_rate: float
    timeout_rate: float = 0.0
    retry_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.n_encounters <= 0:
            raise InjectionError("n_encounters must be positive")
        for name in ("hazard_rate", "degraded_rate", "timeout_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise InjectionError(f"{name} must be in [0, 1], got {v}")
        if self.retry_rate < 0.0:
            raise InjectionError("retry_rate must be non-negative")

    @property
    def availability(self) -> float:
        """Fraction of encounters handled at full capability."""
        return 1.0 - self.degraded_rate


@dataclass(frozen=True)
class CampaignCell:
    """One (fault model, intensity) point of the sweep, both architectures."""

    fault: str
    uncertainty_type: str
    intensity: float
    single: RunMetrics       # unsupervised single chain, fault injected
    supervised: RunMetrics   # diverse redundancy + supervisor, fault injected

    @property
    def hazard_reduction(self) -> float:
        """Absolute hazard-rate reduction achieved by the tolerant stack."""
        return self.single.hazard_rate - self.supervised.hazard_rate


class RobustnessReport:
    """Campaign results: per-cell metrics against the no-fault baseline.

    ``diagnostic_reference`` is the model-side evidence attached by the
    campaign: the Fig. 4 diagnostic posteriors computed through the
    compiled inference engine.  ``engine_stats`` is the engine's
    :meth:`~repro.bayesnet.engine.EngineStats.snapshot` — the record of
    what inference work the campaign actually performed, kept alongside
    the metrics so dossier evidence is auditable.  ``telemetry`` is the
    optional :class:`~repro.telemetry.export.TelemetryReport` captured
    when the campaign ran under an active tracing session.
    """

    #: engine-stats keys excluded from to_dict()/to_json(): wall-clock
    #: timings vary run to run, everything else is seed-deterministic.
    NONDETERMINISTIC_STAT_SUFFIX = "_seconds"

    def __init__(self, *, seed: int, trials: int,
                 baseline_single: RunMetrics,
                 baseline_supervised: RunMetrics,
                 cells: Sequence[CampaignCell],
                 diagnostic_reference: Optional[
                     Dict[str, Dict[str, float]]] = None,
                 engine_stats: Optional[Dict[str, float]] = None,
                 telemetry: Optional[TelemetryReport] = None):
        if trials <= 0:
            raise InjectionError("trials must be positive")
        if not cells:
            raise InjectionError("a campaign needs at least one cell")
        self.seed = int(seed)
        self.trials = int(trials)
        self.baseline_single = baseline_single
        self.baseline_supervised = baseline_supervised
        self.cells: Tuple[CampaignCell, ...] = tuple(cells)
        self.diagnostic_reference = (
            {k: dict(v) for k, v in diagnostic_reference.items()}
            if diagnostic_reference else None)
        self.engine_stats = dict(engine_stats) if engine_stats else None
        self.telemetry = telemetry

    # -- aggregation ----------------------------------------------------------

    def fault_names(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for c in self.cells:
            if c.fault not in seen:
                seen.append(c.fault)
        return tuple(seen)

    def per_fault_summary(self) -> Dict[str, Dict[str, float]]:
        """Mean metrics per fault model across its intensity sweep."""
        out: Dict[str, Dict[str, float]] = {}
        for fault in self.fault_names():
            group = [c for c in self.cells if c.fault == fault]
            n = len(group)
            out[fault] = {
                "single_hazard": sum(c.single.hazard_rate for c in group) / n,
                "supervised_hazard":
                    sum(c.supervised.hazard_rate for c in group) / n,
                "supervised_degraded":
                    sum(c.supervised.degraded_rate for c in group) / n,
                "supervised_availability":
                    sum(c.supervised.availability for c in group) / n,
                "hazard_reduction":
                    sum(c.hazard_reduction for c in group) / n,
            }
        return out

    def supervised_dominates(self) -> bool:
        """True iff the tolerant stack beats the unsupervised single chain
        (strictly lower hazard rate) in *every* campaign cell."""
        return all(c.supervised.hazard_rate < c.single.hazard_rate
                   for c in self.cells)

    def worst_cell(self) -> CampaignCell:
        """The cell with the highest supervised hazard rate."""
        return max(self.cells, key=lambda c: c.supervised.hazard_rate)

    # -- rendering ------------------------------------------------------------

    def to_rows(self) -> List[Tuple]:
        """(fault, type, intensity, single hazard, supervised hazard,
        supervised degraded, supervised availability) per cell."""
        return [(c.fault, c.uncertainty_type, c.intensity,
                 c.single.hazard_rate, c.supervised.hazard_rate,
                 c.supervised.degraded_rate, c.supervised.availability)
                for c in self.cells]

    def to_markdown(self) -> str:
        lines = ["# Robustness campaign report", ""]
        lines.append(f"- seed: {self.seed}, trials per cell: {self.trials}")
        lines.append(f"- no-fault baseline hazard: single "
                     f"{self.baseline_single.hazard_rate:.4g}, supervised "
                     f"{self.baseline_supervised.hazard_rate:.4g}")
        dominates = self.supervised_dominates()
        lines.append(f"- **tolerant stack strictly better in every cell: "
                     f"{'YES' if dominates else 'NO'}**")
        lines.append("")
        lines.append("## Per fault model (mean over intensities)")
        lines.append("")
        lines.append("| fault | type | single hazard | supervised hazard | "
                     "degraded | availability |")
        lines.append("|---|---|---|---|---|---|")
        summary = self.per_fault_summary()
        types = {c.fault: c.uncertainty_type for c in self.cells}
        for fault in self.fault_names():
            s = summary[fault]
            lines.append(
                f"| {fault} | {types[fault]} | {s['single_hazard']:.4f} | "
                f"{s['supervised_hazard']:.4f} | "
                f"{s['supervised_degraded']:.4f} | "
                f"{s['supervised_availability']:.4f} |")
        lines.append("")
        lines.append("## All cells")
        lines.append("")
        lines.append("| fault | type | intensity | single hazard | "
                     "supervised hazard | degraded | availability |")
        lines.append("|---|---|---|---|---|---|---|")
        for row in self.to_rows():
            fault, utype, intensity, sh, vh, dg, av = row
            lines.append(f"| {fault} | {utype} | {intensity:.2f} | {sh:.4f} "
                         f"| {vh:.4f} | {dg:.4f} | {av:.4f} |")
        lines.append("")
        if self.diagnostic_reference is not None:
            lines.append("## Model diagnostic reference (Fig. 4 engine)")
            lines.append("")
            states = sorted({s for post in self.diagnostic_reference.values()
                             for s in post})
            lines.append("| perception | " + " | ".join(
                f"P({s})" for s in states) + " |")
            lines.append("|" + "---|" * (len(states) + 1))
            for output, post in self.diagnostic_reference.items():
                cells = " | ".join(f"{post.get(s, 0.0):.4f}" for s in states)
                lines.append(f"| {output} | {cells} |")
            lines.append("")
        if self.engine_stats is not None:
            lines.append("## Inference engine instrumentation")
            lines.append("")
            # Wall-clock fields (compile/execute seconds) stay in the stored
            # snapshot but are not rendered: the report markdown is part of
            # the "same seed, same report" bit-for-bit contract.
            for key in ("queries", "batch_queries", "batch_rows",
                        "plan_hits", "plan_misses", "plan_hit_rate",
                        "evidence_cache_hits", "evidence_cache_misses",
                        "evidence_cache_hit_rate", "messages_recomputed",
                        "messages_total", "recompiles"):
                if key in self.engine_stats:
                    value = self.engine_stats[key]
                    text = (f"{value:.6g}" if isinstance(value, float)
                            else str(value))
                    lines.append(f"- {key}: {text}")
            lines.append("")
        if self.telemetry is not None:
            lines.append("## Telemetry")
            lines.append("")
            lines.extend(self.telemetry.to_markdown_lines())
            lines.append("")
        return "\n".join(lines)

    def _stable_engine_stats(self) -> Optional[Dict[str, float]]:
        if self.engine_stats is None:
            return None
        return {k: v for k, v in sorted(self.engine_stats.items())
                if not k.endswith(self.NONDETERMINISTIC_STAT_SUFFIX)}

    def to_dict(self) -> Dict:
        """Deterministic dict form: same seed, same dict.

        Wall-clock engine-stats keys (``*_seconds``) are dropped and
        telemetry is exported counts-only, so the serialized report obeys
        the campaign's bit-for-bit reproducibility contract.
        """
        return {
            "seed": self.seed,
            "trials": self.trials,
            "baseline_single": asdict(self.baseline_single),
            "baseline_supervised": asdict(self.baseline_supervised),
            "cells": [asdict(c) for c in self.cells],
            "diagnostic_reference": self.diagnostic_reference,
            "engine_stats": self._stable_engine_stats(),
            "telemetry": (self.telemetry.to_dict()
                          if self.telemetry is not None else None),
            "supervised_dominates": self.supervised_dominates(),
        }

    def to_json(self) -> str:
        """Byte-stable JSON: keys sorted, timings excluded."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def __repr__(self) -> str:
        return (f"RobustnessReport(seed={self.seed}, trials={self.trials}, "
                f"cells={len(self.cells)}, "
                f"dominates={self.supervised_dominates()})")
