"""The fault-injection campaign engine.

Sweeps fault models × intensities over two architectures —

- the **unsupervised single chain** (the paper's bare Fig. 4 pipeline),
- the **tolerant stack**: diverse redundancy + fusion + the degradation
  supervisor (the §IV/§V tolerance means, instrumented) —

and scores each cell with hazard / degradation / availability metrics
against the no-fault baseline.  Every random draw descends from the
campaign seed through :class:`numpy.random.SeedSequence` spawning, so a
campaign is bit-for-bit reproducible: same seed, same report.

Faults are injected into **channel 0 only** (single-channel faults); the
claim under test is precisely that diverse redundancy plus supervision
tolerates any single-channel fault better than the bare chain does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.engine import CompiledNetwork, InferenceEngine, as_engine
from repro.errors import InjectionError
from repro.parallel import BACKENDS, CampaignSharder, ParallelExecutor
from repro.perception.chain import PerceptionChain, build_fig4_network
from repro.perception.redundancy import make_diverse_chains
from repro.perception.world import WorldModel
from repro.robustness.faults import (
    ByzantineFault,
    ConfusionCorruptionFault,
    FaultInjectedChain,
    FaultModel,
    LatencyFault,
    NoiseBurstFault,
    SensorDropoutFault,
    StuckAtFault,
)
from repro.robustness.report import CampaignCell, RobustnessReport, RunMetrics
from repro.robustness.runtime import (
    SupervisedPerceptionSystem,
    run_unsupervised,
    summarize_run,
)
from repro.telemetry import tracing
from repro.telemetry.export import TelemetryReport
from repro.telemetry.metrics import (
    CAMPAIGN_FAULT_CELLS,
    CAMPAIGN_TRIALS,
    get_registry,
)

#: name -> factory(intensity, seed).  Order defines the sweep (and report)
#: order; names are the CLI vocabulary of ``repro inject --fault``.
FAULT_CATALOG: Dict[str, Callable[[float, int], FaultModel]] = {
    "dropout": lambda i, s: SensorDropoutFault(i, seed=s, name="dropout"),
    "noise_burst": lambda i, s: NoiseBurstFault(i, seed=s, name="noise_burst"),
    "stuck_at_none": lambda i, s: StuckAtFault(i, seed=s,
                                               name="stuck_at_none"),
    "confusion": lambda i, s: ConfusionCorruptionFault(i, seed=s,
                                                       name="confusion"),
    "latency": lambda i, s: LatencyFault(i, seed=s, name="latency"),
    "byzantine": lambda i, s: ByzantineFault(i, seed=s, name="byzantine"),
}


def fault_uncertainty_type(name: str) -> str:
    """The paper's uncertainty type a catalogued fault model emulates."""
    if name not in FAULT_CATALOG:
        raise InjectionError(
            f"unknown fault {name!r}; choose from {sorted(FAULT_CATALOG)}")
    return FAULT_CATALOG[name](0.0, 0).uncertainty_type.value


@dataclass(frozen=True)
class CampaignConfig:
    """Sweep definition; defaults reproduce the EXT-N headline campaign."""

    seed: int = 0
    trials: int = 200
    fault_names: Tuple[str, ...] = tuple(FAULT_CATALOG)
    intensities: Tuple[float, ...] = (0.25, 0.5, 1.0)
    n_channels: int = 3
    diversity: float = 0.12
    fusion: str = "conservative"
    workers: int = 1
    backend: Optional[str] = None
    engine_cache_size: Optional[int] = None
    shards: Optional[int] = None
    #: Per-campaign posterior error budget (None = exact-only, the
    #: historical behaviour).  The diagnostic reference sweep routes
    #: through the query planner with frozen (structural-prior) pricing
    #: so cheap cells stop paying exact-JT prices, deterministically.
    error_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise InjectionError(f"trials must be positive, got {self.trials}")
        if self.error_budget is not None and self.error_budget < 0.0:
            raise InjectionError(
                f"error_budget must be non-negative, got {self.error_budget}")
        if self.shards is not None and self.shards < 1:
            raise InjectionError(
                f"shards must be at least 1, got {self.shards}")
        if self.engine_cache_size is not None and self.engine_cache_size < 0:
            raise InjectionError(
                "engine_cache_size must be non-negative, got "
                f"{self.engine_cache_size}")
        if self.workers < 1:
            raise InjectionError(
                f"workers must be at least 1, got {self.workers}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise InjectionError(
                f"unknown backend {self.backend!r}; "
                f"choose from {list(BACKENDS)}")
        if not self.fault_names:
            raise InjectionError("at least one fault model required")
        unknown = set(self.fault_names) - set(FAULT_CATALOG)
        if unknown:
            raise InjectionError(
                f"unknown fault models {sorted(unknown)}; "
                f"choose from {sorted(FAULT_CATALOG)}")
        if not self.intensities:
            raise InjectionError("at least one intensity required")
        for i in self.intensities:
            if not 0.0 <= i <= 1.0:
                raise InjectionError(f"intensities must be in [0, 1], got {i}")
        if self.n_channels < 1:
            raise InjectionError("n_channels must be at least 1")
        if self.diversity < 0.0:
            raise InjectionError("diversity must be non-negative")


def _derived_rng(seed: int, *path: int) -> np.random.Generator:
    """A generator deterministically derived from (seed, *path)."""
    return np.random.default_rng([int(seed), *[int(p) for p in path]])


def _derived_int(seed: int, *path: int) -> int:
    return int(_derived_rng(seed, *path).integers(0, 2 ** 31))


def _build_supervised(config: CampaignConfig,
                      faults: Sequence[FaultModel]) -> SupervisedPerceptionSystem:
    """The tolerant stack, with ``faults`` injected into channel 0 only.

    The chain architecture depends only on the campaign seed, so every
    cell stresses the *same* system.
    """
    chain_rng = _derived_rng(config.seed, 1)
    chains = make_diverse_chains(config.n_channels, chain_rng,
                                 diversity=config.diversity)
    channels = [FaultInjectedChain(chains[0], faults)]
    channels += [FaultInjectedChain(c) for c in chains[1:]]
    return SupervisedPerceptionSystem(channels, fusion=config.fusion)


def run_cell(config: CampaignConfig, fault_name: str, intensity: float,
             world: Optional[WorldModel] = None,
             cell_index: int = 0) -> CampaignCell:
    """One (fault, intensity) cell: both architectures, same fault seed."""
    if fault_name not in FAULT_CATALOG:
        raise InjectionError(
            f"unknown fault {fault_name!r}; "
            f"choose from {sorted(FAULT_CATALOG)}")
    world = world or WorldModel()
    factory = FAULT_CATALOG[fault_name]
    fault_seed = _derived_int(config.seed, 2, cell_index)
    u_type = fault_uncertainty_type(fault_name)
    CAMPAIGN_FAULT_CELLS.inc(fault=fault_name, uncertainty_type=u_type)

    with tracing.span("campaign.cell", fault=fault_name,
                      intensity=float(intensity), uncertainty_type=u_type):
        single_chain = FaultInjectedChain(PerceptionChain(),
                                          [factory(intensity, fault_seed)])
        with tracing.span("campaign.single_chain"):
            single = run_unsupervised(single_chain, world,
                                      _derived_rng(config.seed, 3, cell_index),
                                      config.trials)
        CAMPAIGN_TRIALS.inc(config.trials, architecture="single_chain")

        system = _build_supervised(config, [factory(intensity, fault_seed)])
        with tracing.span("campaign.supervised"):
            results = system.run(world,
                                 _derived_rng(config.seed, 4, cell_index),
                                 config.trials)
        CAMPAIGN_TRIALS.inc(config.trials, architecture="supervised")
    supervised = summarize_run(results)
    return CampaignCell(fault=fault_name,
                        uncertainty_type=u_type,
                        intensity=float(intensity), single=single,
                        supervised=supervised)


def campaign_grid(config: CampaignConfig) -> List[Tuple[str, float]]:
    """The (fault, intensity) sweep grid, in canonical report order.

    The cell at index ``i`` of this list is the cell whose RNG streams
    descend from ``(config.seed, i)`` — the shared vocabulary between
    the in-process fan-out, distributed shard fragments, and the merge.
    """
    return [(fault_name, intensity)
            for fault_name in config.fault_names
            for intensity in config.intensities]


def campaign_cell_costs(config: CampaignConfig,
                        engine: Optional[InferenceEngine] = None
                        ) -> List[float]:
    """Per-cell cost estimates: ``trials × clique width`` (DESIGN §14).

    The trials term dominates today's grids (every cell runs the same
    trial count), but the clique-width term keeps shard cuts honest when
    heterogeneous grids mix networks of different compiled volume.  An
    engine without :meth:`~repro.bayesnet.engine.CompiledNetwork.plan_cost`
    contributes width 1 — costs stay uniform and the sharder falls back
    to equal-trials balancing.
    """
    width = 1.0
    plan_cost = getattr(engine, "plan_cost", None)
    if callable(plan_cost):
        width = max(1.0, float(plan_cost()))
    cost = float(config.trials) * width
    return [cost] * (len(config.fault_names) * len(config.intensities))


def cell_error_budgets(config: CampaignConfig,
                       costs: Sequence[float]) -> List[Optional[float]]:
    """Per-cell error budgets scaled from :func:`campaign_cell_costs`.

    Cheap cells get proportionally looser budgets (they have the least
    to gain from exact-JT prices), expensive cells tighter ones, with
    the configured budget as the cost-weighted anchor.  A uniform cost
    vector — today's homogeneous grids — degenerates to the uniform
    budget, and ``config.error_budget is None`` yields all-``None``
    (exact-only, the historical behaviour).
    """
    if config.error_budget is None:
        return [None] * len(costs)
    mean = sum(costs) / len(costs) if costs else 1.0
    if mean <= 0.0:
        return [config.error_budget] * len(costs)
    return [min(0.5, config.error_budget * (mean / max(cost, 1e-12)))
            for cost in costs]


def _cell_chunk(context: Tuple[CampaignConfig, Optional[WorldModel]],
                chunk: Sequence[Tuple[str, float, int]]) -> List[CampaignCell]:
    """Module-level chunk runner for the executor's context map.

    ``(config, world)`` ships once per worker (arena-backed on the
    process backend) instead of once per cell.  Every random draw inside
    :func:`run_cell` descends from ``(config.seed, cell_index)``, never
    from execution order, so cells can run on any worker in any
    interleaving and still produce the bytes the serial sweep would.
    """
    config, world = context
    return [run_cell(config, fault_name, intensity, world,
                     cell_index=cell_index)
            for fault_name, intensity, cell_index in chunk]


def diagnostic_reference_table(engine: InferenceEngine,
                               error_budget: Optional[float] = None
                               ) -> Dict[str, Dict[str, float]]:
    """The Fig. 4 diagnostic posteriors P(ground truth | perception) for
    every perception output, in one batched engine sweep.

    Attached to the campaign report as model-side reference evidence: the
    posteriors the supervisor's diagnosis should converge to when the
    injected fault has zero intensity.

    With an ``error_budget`` the sweep routes through the query planner
    in frozen (structural-prior) pricing mode: plan choice is then a
    deterministic function of (structure, evidence, budget) — never of
    observed wall-clock — so the report's byte-identity contract holds.
    """
    states = list(engine.network.variable("perception").states)
    rows = [{"perception": s} for s in states]
    if error_budget is not None:
        posts = engine.query_batch("ground_truth", rows,
                                   error_budget=error_budget, frozen=True)
    else:
        posts = engine.query_batch("ground_truth", rows)
    return dict(zip(states, posts))


def _validate_shard(shard: Tuple[int, int], n_cells: int) -> Tuple[int, int]:
    try:
        index, count = (int(shard[0]), int(shard[1]))
    except (TypeError, ValueError, IndexError):
        raise InjectionError(
            f"shard must be an (index, count) pair, got {shard!r}") from None
    if count < 1:
        raise InjectionError(f"shard count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise InjectionError(
            f"shard index must be in [0, {count}), got {index}")
    if count > n_cells:
        raise InjectionError(
            f"cannot cut a {n_cells}-cell grid into {count} shards — "
            "every shard needs at least one cell")
    return index, count


def run_campaign(config: Optional[CampaignConfig] = None,
                 world: Optional[WorldModel] = None,
                 engine: Optional[InferenceEngine] = None,
                 executor: Optional[ParallelExecutor] = None,
                 shard: Optional[Tuple[int, int]] = None
                 ) -> RobustnessReport:
    """The full sweep: fault models × intensities, plus no-fault baselines.

    ``engine`` is the compiled inference handle used for the model-side
    diagnostic reference; by default one is compiled over the Fig. 4
    network with ``config.engine_cache_size`` bounding its
    evidence-keyed posterior cache.  Its instrumentation snapshot is
    exported into the report so campaign evidence records what the
    engine actually did.

    The (fault, intensity) grid is fanned out through a
    :class:`~repro.parallel.ParallelExecutor` built from
    ``config.workers`` / ``config.backend`` / ``config.shards`` (or
    ``executor`` when given): ``(config, world)`` ships to process
    workers once per worker through the shared-memory arena, and chunks
    are cost-balanced on :func:`campaign_cell_costs`.  Cell RNGs are
    derived from ``(seed, cell_index)`` and results are reassembled in
    grid order, so the report is byte-identical whatever the backend,
    worker count, or shard count.

    ``shard=(i, m)`` runs only the i-th of ``m`` deterministic grid
    fragments (cut by :class:`~repro.parallel.CampaignSharder` over the
    same costs) and returns a fragment report; running every fragment —
    anywhere, in any order — and passing them in shard order to
    :func:`merge_campaign_reports` reproduces the unsharded report's
    bytes.
    """
    config = config or CampaignConfig()
    world = world or WorldModel()
    engine = (as_engine(engine) if engine is not None
              else CompiledNetwork(build_fig4_network(),
                                   cache_size=config.engine_cache_size))
    executor = executor or ParallelExecutor(workers=config.workers,
                                            backend=config.backend,
                                            shards=config.shards)

    tracer = tracing.active()
    counters_before = (get_registry().flatten_counters()
                       if tracer is not None else None)
    with tracing.span("campaign.run", seed=config.seed,
                      trials=config.trials, n_faults=len(config.fault_names)):
        with tracing.span("campaign.baseline"):
            baseline_single = run_unsupervised(
                FaultInjectedChain(PerceptionChain()), world,
                _derived_rng(config.seed, 5), config.trials)
            baseline_system = _build_supervised(config, [])
            baseline_supervised = summarize_run(
                baseline_system.run(world, _derived_rng(config.seed, 6),
                                    config.trials))

        grid = campaign_grid(config)
        costs = campaign_cell_costs(config, engine)
        tasks = [(fault_name, intensity, index)
                 for index, (fault_name, intensity) in enumerate(grid)]
        if shard is not None:
            index, count = _validate_shard(shard, len(tasks))
            start, stop = CampaignSharder(count).shard_ranges(
                len(tasks), costs)[index]
            tasks, costs = tasks[start:stop], costs[start:stop]
        cells: List[CampaignCell] = executor.map_with_context(
            _cell_chunk, (config, world), tasks, costs=costs)
        # The reference sweep inherits the *tightest* per-cell budget:
        # it anchors every cell's diagnosis, so it must be at least as
        # accurate as the most demanding cell asks for.
        budgets = [b for b in cell_error_budgets(config,
                                                 campaign_cell_costs(
                                                     config, engine))
                   if b is not None]
        reference = diagnostic_reference_table(
            engine, error_budget=min(budgets) if budgets else None)
    telemetry = (TelemetryReport.capture(tracer=tracer,
                                         counters_before=counters_before)
                 if tracer is not None else None)
    return RobustnessReport(seed=config.seed, trials=config.trials,
                            baseline_single=baseline_single,
                            baseline_supervised=baseline_supervised,
                            cells=cells,
                            diagnostic_reference=reference,
                            engine_stats=engine.stats.snapshot(),
                            telemetry=telemetry)


def merge_campaign_reports(fragments: Sequence[RobustnessReport]
                           ) -> RobustnessReport:
    """Merge shard-fragment reports back into one campaign report.

    Fragments must be passed **in shard order** (0..m-1): shards are
    contiguous slices of the canonical grid, so ordered concatenation of
    their cells is exactly the serial cell sequence.  Baselines, the
    diagnostic reference, and engine stats are deterministic functions
    of the config alone — every fragment computed identical copies, so
    the first fragment's are kept and the merged report serializes to
    the same bytes as the unsharded run (fragment telemetry, if any, is
    dropped: per-shard traces cannot be stitched into one timeline).
    """
    if not fragments:
        raise InjectionError("no campaign fragments to merge")
    head = fragments[0]
    cells: List[CampaignCell] = []
    for fragment in fragments:
        if fragment.seed != head.seed or fragment.trials != head.trials:
            raise InjectionError(
                "campaign fragments disagree on seed/trials — "
                "they are not shards of one campaign")
        cells.extend(fragment.cells)
    seen = [(c.fault, c.intensity) for c in cells]
    if len(set(seen)) != len(seen):
        raise InjectionError(
            "campaign fragments overlap — the same (fault, intensity) "
            "cell appears twice; pass each shard exactly once")
    return RobustnessReport(seed=head.seed, trials=head.trials,
                            baseline_single=head.baseline_single,
                            baseline_supervised=head.baseline_supervised,
                            cells=cells,
                            diagnostic_reference=head.diagnostic_reference,
                            engine_stats=head.engine_stats,
                            telemetry=None)
