"""Runtime robustness: fault injection, supervision, campaign validation.

The paper's tolerance mean (§IV) says a system copes with residual
uncertainty via redundant architectures and uncertainty-aware
degradation.  :mod:`repro.means.tolerance` and
:mod:`repro.perception.redundancy` *model* that; this package *stresses*
it:

- :mod:`repro.robustness.faults` — composable, seeded fault models
  (sensor dropout, noise bursts, stuck-at outputs, confusion corruption,
  latency spikes, byzantine disagreement), each tagged with the
  uncertainty type it emulates;
- :mod:`repro.robustness.supervisor` — a graceful-degradation state
  machine with watchdog, bounded retry-with-backoff, hysteresis on
  recovery, and a structured event log;
- :mod:`repro.robustness.runtime` — the supervised perception system
  gluing channels, fusion and supervisor;
- :mod:`repro.robustness.campaign` — the sweep engine and its
  :class:`~repro.robustness.report.RobustnessReport`, consumable by the
  assurance-case layer via the uncertainty dossier.
"""

from repro.robustness.campaign import (
    FAULT_CATALOG,
    CampaignConfig,
    fault_uncertainty_type,
    run_campaign,
    run_cell,
)
from repro.robustness.faults import (
    ByzantineFault,
    ChannelTelemetry,
    ConfusionCorruptionFault,
    FaultInjectedChain,
    FaultInjector,
    FaultModel,
    LatencyFault,
    NoiseBurstFault,
    SensorDropoutFault,
    StuckAtFault,
)
from repro.robustness.report import CampaignCell, RobustnessReport, RunMetrics
from repro.robustness.runtime import (
    StepResult,
    SupervisedPerceptionSystem,
    run_unsupervised,
    summarize_run,
)
from repro.robustness.supervisor import (
    DegradationSupervisor,
    RetryPolicy,
    SupervisorEvent,
)

__all__ = [
    "FaultModel",
    "FaultInjector",
    "FaultInjectedChain",
    "ChannelTelemetry",
    "SensorDropoutFault",
    "NoiseBurstFault",
    "StuckAtFault",
    "ConfusionCorruptionFault",
    "LatencyFault",
    "ByzantineFault",
    "DegradationSupervisor",
    "RetryPolicy",
    "SupervisorEvent",
    "SupervisedPerceptionSystem",
    "StepResult",
    "run_unsupervised",
    "summarize_run",
    "FAULT_CATALOG",
    "CampaignConfig",
    "fault_uncertainty_type",
    "run_campaign",
    "run_cell",
    "RunMetrics",
    "CampaignCell",
    "RobustnessReport",
]
