"""Composable, seeded fault models for the perception stack.

The paper's tolerance means (§IV) claims a system copes with residual
uncertainty through redundancy and uncertainty-aware degradation.  This
module supplies the *stress* side of that claim: fault models that wrap a
:class:`~repro.perception.chain.PerceptionChain` and perturb it at three
injection points — the sensor reading, the classifier output, and the
channel's delivery latency.

Each fault model is

- **tagged** with the paper's uncertainty type it emulates (aleatory /
  epistemic / ontological, §III),
- **seeded**: it owns a private :class:`numpy.random.Generator`, so the
  fault-firing sequence is independent of the perception randomness and
  bit-for-bit reproducible (``reset`` rewinds it),
- **intensity-scaled** in [0, 1]: intensity 0 is the identity (no fault
  ever fires), intensity 1 fires on every encounter,
- **composable**: a :class:`FaultInjector` applies any number of models
  in declaration order at each injection point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.taxonomy import UncertaintyType
from repro.errors import InjectionError
from repro.perception.chain import PerceptionChain
from repro.perception.sensors import SensorReading
from repro.perception.world import (
    CAR,
    NONE_LABEL,
    PEDESTRIAN,
    UNCERTAIN_LABEL,
    UNKNOWN,
    ObjectInstance,
)

#: Labels a classifier-level fault may emit.
ASSESSMENT_OUTPUTS = (CAR, PEDESTRIAN, UNCERTAIN_LABEL, NONE_LABEL)


class FaultModel:
    """Base class: a seeded, intensity-scaled perturbation of one channel.

    Subclasses override one or more of the three hooks
    (:meth:`apply_reading`, :meth:`apply_output`, :meth:`extra_latency`)
    and declare the :attr:`uncertainty_type` they emulate.  ``fires()``
    draws from the fault's private generator; ``begin_encounter`` resets
    the per-encounter fired flag, ``reset`` rewinds the whole model.
    """

    #: Which of the paper's uncertainty types this fault emulates.
    uncertainty_type: UncertaintyType = UncertaintyType.ALEATORY

    def __init__(self, intensity: float, seed: int = 0,
                 name: Optional[str] = None):
        intensity = float(intensity)
        if not 0.0 <= intensity <= 1.0 or intensity != intensity:
            raise InjectionError(
                f"fault intensity must be in [0, 1], got {intensity!r}")
        self.intensity = intensity
        self.seed = int(seed)
        self.name = name or type(self).__name__
        self._rng = np.random.default_rng(self.seed)
        self.fired = False  # did the fault fire on the current encounter

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Rewind the fault's generator and state to construction time."""
        self._rng = np.random.default_rng(self.seed)
        self.fired = False

    def begin_encounter(self) -> None:
        self.fired = False

    def fires(self) -> bool:
        """Draw the per-encounter Bernoulli(intensity) firing decision."""
        if self.intensity > 0.0 and self._rng.random() < self.intensity:
            self.fired = True
        return self.fired

    # -- injection hooks (identity by default) --------------------------------

    def apply_reading(self, reading: SensorReading) -> SensorReading:
        return reading

    def apply_output(self, output: str, obj: ObjectInstance) -> str:
        return output

    def extra_latency(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(intensity={self.intensity}, "
                f"seed={self.seed})")


class SensorDropoutFault(FaultModel):
    """The camera transiently returns nothing (random hardware dropout).

    Emulates *aleatory* uncertainty: an irreducibly random per-exposure
    failure, like the paper's stochastic sensor-noise examples.
    """

    uncertainty_type = UncertaintyType.ALEATORY

    def apply_reading(self, reading: SensorReading) -> SensorReading:
        if self.fires():
            return dataclasses.replace(reading, detected=False, quality=0.0)
        return reading


class NoiseBurstFault(FaultModel):
    """Bursty quality degradation (EMI, glare, rain sheet on the lens).

    A two-state burst process: with probability ``intensity`` a burst of
    geometric length starts; during a burst the feature quality is scaled
    down by ``severity``.  Aleatory — random in time, but correlated.
    """

    uncertainty_type = UncertaintyType.ALEATORY

    def __init__(self, intensity: float, seed: int = 0,
                 severity: float = 0.8, burst_continue: float = 0.7,
                 name: Optional[str] = None):
        super().__init__(intensity, seed, name)
        if not 0.0 <= severity <= 1.0:
            raise InjectionError(f"severity must be in [0, 1], got {severity}")
        if not 0.0 <= burst_continue < 1.0:
            raise InjectionError(
                f"burst_continue must be in [0, 1), got {burst_continue}")
        self.severity = severity
        self.burst_continue = burst_continue
        self._in_burst = False

    def reset(self) -> None:
        super().reset()
        self._in_burst = False

    def apply_reading(self, reading: SensorReading) -> SensorReading:
        if self._in_burst:
            self.fired = True
            self._in_burst = self._rng.random() < self.burst_continue
        elif self.fires():
            self._in_burst = self._rng.random() < self.burst_continue
        if self.fired and reading.detected:
            return dataclasses.replace(
                reading, quality=reading.quality * (1.0 - self.severity))
        return reading


class StuckAtFault(FaultModel):
    """The classifier output is stuck at a fixed label.

    Emulates *epistemic* uncertainty: a systematic implementation defect —
    the deployed component differs from its model in a fixed, learnable
    way (more exposure would reveal the stuck value).
    """

    uncertainty_type = UncertaintyType.EPISTEMIC

    def __init__(self, intensity: float, seed: int = 0,
                 stuck_output: str = NONE_LABEL, name: Optional[str] = None):
        super().__init__(intensity, seed, name)
        if stuck_output not in ASSESSMENT_OUTPUTS:
            raise InjectionError(
                f"stuck_output must be one of {ASSESSMENT_OUTPUTS}, "
                f"got {stuck_output!r}")
        self.stuck_output = stuck_output

    def apply_output(self, output: str, obj: ObjectInstance) -> str:
        if self.fires():
            return self.stuck_output
        return output


class ConfusionCorruptionFault(FaultModel):
    """Systematic label confusion: car and pedestrian swapped, epistemic
    ``car/pedestrian`` outputs forced into an overconfident point label.

    Emulates *epistemic* uncertainty: the channel's true confusion matrix
    differs from the elicited one (Table I corrupted in deployment).
    """

    uncertainty_type = UncertaintyType.EPISTEMIC

    def apply_output(self, output: str, obj: ObjectInstance) -> str:
        if not self.fires():
            return output
        if output == CAR:
            return PEDESTRIAN
        if output == PEDESTRIAN:
            return CAR
        if output == UNCERTAIN_LABEL:
            # The corrupted channel no longer knows that it does not know.
            return CAR if self._rng.random() < 0.5 else PEDESTRIAN
        return output


class LatencyFault(FaultModel):
    """Intermittent processing latency spikes (and hence missed deadlines).

    Emulates *aleatory* uncertainty in the timing domain: random
    scheduling/contention delays.  The spike is exponential with mean
    ``mean_delay`` seconds; whether it breaches the deadline is decided by
    the runtime's watchdog, not here.
    """

    uncertainty_type = UncertaintyType.ALEATORY

    def __init__(self, intensity: float, seed: int = 0,
                 mean_delay: float = 0.25, name: Optional[str] = None):
        super().__init__(intensity, seed, name)
        if mean_delay <= 0.0:
            raise InjectionError(
                f"mean_delay must be positive, got {mean_delay}")
        self.mean_delay = mean_delay

    def extra_latency(self) -> float:
        if self.fires():
            return float(self._rng.exponential(self.mean_delay))
        return 0.0


class ByzantineFault(FaultModel):
    """Adversarial worst-case disagreement of one redundant channel.

    The channel reports the *most misleading* label for the encounter: a
    real object becomes ``none`` (vehicle would not react), a novel object
    becomes a confident ``car``.  Emulates *ontological* uncertainty —
    behaviour entirely outside the channel's fault model, the
    unknown-unknown failure the paper's §III-C warns about.  As injected
    stress it may consult ground truth; a real byzantine component could
    behave this badly by accident.
    """

    uncertainty_type = UncertaintyType.ONTOLOGICAL

    def apply_output(self, output: str, obj: ObjectInstance) -> str:
        if not self.fires():
            return output
        if obj.label in (CAR, PEDESTRIAN):
            return NONE_LABEL
        return CAR  # confident misbelief about the unknown


@dataclass(frozen=True)
class ChannelTelemetry:
    """One channel's observable behaviour on one encounter.

    This is everything the runtime supervisor is allowed to see: the
    output label, the epistemic score, the delivery latency, whether the
    watchdog deadline was missed, and (for *analysis only*, not visible
    to the supervisor) which fault models fired.
    """

    output: str
    epistemic_score: float
    latency: float
    timed_out: bool
    faults_fired: Tuple[str, ...] = ()


class FaultInjector:
    """Applies a sequence of fault models at each injection point."""

    def __init__(self, faults: Sequence[FaultModel] = ()):
        for f in faults:
            if not isinstance(f, FaultModel):
                raise InjectionError(
                    f"faults must be FaultModel instances, got {f!r}")
        self.faults: Tuple[FaultModel, ...] = tuple(faults)

    def reset(self) -> None:
        for f in self.faults:
            f.reset()

    def begin_encounter(self) -> None:
        for f in self.faults:
            f.begin_encounter()

    def apply_reading(self, reading: SensorReading) -> SensorReading:
        for f in self.faults:
            reading = f.apply_reading(reading)
        return reading

    def apply_output(self, output: str, obj: ObjectInstance) -> str:
        for f in self.faults:
            output = f.apply_output(output, obj)
        return output

    def extra_latency(self) -> float:
        return sum(f.extra_latency() for f in self.faults)

    def fired_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.faults if f.fired)

    def __repr__(self) -> str:
        return f"FaultInjector({list(self.faults)!r})"


class FaultInjectedChain:
    """A perception chain wrapped with fault injection and a latency model.

    ``perceive_with_telemetry`` runs sense → (reading faults) → classify →
    (output faults), stamps the encounter with a latency (nominal
    ``base_latency`` plus any fault-injected spikes) and flags a timeout
    when the latency exceeds ``deadline`` — the watchdog condition the
    supervisor reacts to.  A timed-out channel still reports the label it
    *would* have delivered; consumers decide whether to use stale data.
    """

    def __init__(self, chain: PerceptionChain,
                 faults: Sequence[FaultModel] = (),
                 deadline: float = 0.1, base_latency: float = 0.02):
        if deadline <= 0.0:
            raise InjectionError(f"deadline must be positive, got {deadline}")
        if base_latency < 0.0:
            raise InjectionError(
                f"base_latency must be non-negative, got {base_latency}")
        if base_latency >= deadline:
            raise InjectionError("base_latency must be below the deadline")
        self.chain = chain
        self.injector = FaultInjector(faults)
        self.deadline = deadline
        self.base_latency = base_latency

    def reset(self) -> None:
        self.injector.reset()

    def perceive_with_telemetry(self, obj: ObjectInstance,
                                rng: np.random.Generator) -> ChannelTelemetry:
        self.injector.begin_encounter()
        reading = self.chain.camera.sense(obj, rng)
        reading = self.injector.apply_reading(reading)
        label, score = self.chain.classify_reading(reading, rng)
        label = self.injector.apply_output(label, obj)
        latency = self.base_latency + self.injector.extra_latency()
        return ChannelTelemetry(output=label, epistemic_score=score,
                                latency=latency,
                                timed_out=latency > self.deadline,
                                faults_fired=self.injector.fired_names())

    def __repr__(self) -> str:
        return (f"FaultInjectedChain(faults={len(self.injector.faults)}, "
                f"deadline={self.deadline})")
