"""Runtime degradation supervisor: a graceful-degradation state machine.

Implements the paper's tolerance mean as an explicit runtime component:
the vehicle-level modes ``ACT_NORMALLY → CAUTIOUS_MODE → MINIMAL_RISK``
(from :mod:`repro.means.tolerance`) become states of a supervisor that

- runs a **watchdog** over channel latencies (a late channel is a faulty
  channel for this cycle),
- applies **bounded retry with exponential backoff** to transient channel
  faults (via :class:`RetryPolicy`, executed by the runtime wrapper),
- monitors per-channel **divergence** from the fused decision and flags a
  channel faulty after ``divergence_trip`` consecutive disagreements,
- applies **hysteresis on recovery**: escalation to a more degraded mode
  is immediate, de-escalation requires ``recovery_hysteresis`` consecutive
  clean cycles and steps down one mode at a time,
- keeps a structured **event log** of every transition, flag and retry.

The supervisor never sees ground truth — only
:class:`~repro.robustness.faults.ChannelTelemetry` outputs and the fused
decision — so it is a deployable component, not an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SupervisorError
from repro.means.tolerance import (
    ACT_NORMALLY,
    CAUTIOUS_MODE,
    MINIMAL_RISK,
    FallbackPolicy,
)
from repro.perception.world import NONE_LABEL, UNCERTAIN_LABEL
from repro.robustness.faults import ChannelTelemetry
from repro.telemetry import tracing
from repro.telemetry.metrics import SUPERVISOR_EVENTS, SUPERVISOR_TRANSITIONS

#: Degradation modes ordered by severity (index = severity level).
MODE_SEVERITY: Dict[str, int] = {ACT_NORMALLY: 0, CAUTIOUS_MODE: 1,
                                 MINIMAL_RISK: 2}
SEVERITY_MODE: Tuple[str, ...] = (ACT_NORMALLY, CAUTIOUS_MODE, MINIMAL_RISK)


@dataclass(frozen=True)
class SupervisorEvent:
    """One entry of the supervisor's structured event log."""

    step: int
    kind: str       # "transition" | "channel_flagged" | "channel_recovered"
                    # | "watchdog_timeout" | "retry"
    detail: str
    mode_before: str
    mode_after: str


class RetryPolicy:
    """Bounded retry with exponential backoff for transient channel faults."""

    def __init__(self, max_retries: int = 2, backoff_base: float = 0.01,
                 backoff_factor: float = 2.0):
        if max_retries < 0:
            raise SupervisorError(
                f"max_retries must be non-negative, got {max_retries}")
        if backoff_base < 0.0:
            raise SupervisorError(
                f"backoff_base must be non-negative, got {backoff_base}")
        if backoff_factor < 1.0:
            raise SupervisorError(
                f"backoff_factor must be >= 1, got {backoff_factor}")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)

    def delays(self) -> Tuple[float, ...]:
        """Backoff delay before each retry attempt, in seconds."""
        return tuple(self.backoff_base * self.backoff_factor ** i
                     for i in range(self.max_retries))

    def __repr__(self) -> str:
        return (f"RetryPolicy(max_retries={self.max_retries}, "
                f"backoff_base={self.backoff_base})")


class DegradationSupervisor:
    """Graceful-degradation state machine over the perception channels.

    Parameters
    ----------
    n_channels:
        Number of redundant channels being supervised.
    policy:
        The uncertainty-aware :class:`FallbackPolicy` used when all
        channels are healthy.
    retry:
        Bounded-backoff policy the runtime applies to timed-out channels
        before the supervisor sees the final telemetry.
    divergence_trip:
        Consecutive cycles a channel may disagree with the fused decision
        before being flagged faulty.
    recovery_hysteresis:
        Consecutive clean cycles required before de-escalating one mode
        (and before un-flagging a previously faulty channel).
    minimal_risk_quorum:
        Fraction of channels that must be simultaneously faulty (flagged
        or timed out) to force ``MINIMAL_RISK``.
    """

    def __init__(self, n_channels: int,
                 policy: Optional[FallbackPolicy] = None,
                 retry: Optional[RetryPolicy] = None,
                 divergence_trip: int = 3,
                 recovery_hysteresis: int = 5,
                 minimal_risk_quorum: float = 0.5):
        if n_channels < 1:
            raise SupervisorError(
                f"n_channels must be at least 1, got {n_channels}")
        if divergence_trip < 1:
            raise SupervisorError(
                f"divergence_trip must be at least 1, got {divergence_trip}")
        if recovery_hysteresis < 1:
            raise SupervisorError("recovery_hysteresis must be at least 1, "
                                  f"got {recovery_hysteresis}")
        if not 0.0 < minimal_risk_quorum <= 1.0:
            raise SupervisorError("minimal_risk_quorum must be in (0, 1], "
                                  f"got {minimal_risk_quorum}")
        self.n_channels = int(n_channels)
        self.policy = policy or FallbackPolicy()
        self.retry = retry or RetryPolicy()
        self.divergence_trip = int(divergence_trip)
        self.recovery_hysteresis = int(recovery_hysteresis)
        self.minimal_risk_quorum = float(minimal_risk_quorum)
        self.reset()

    def reset(self) -> None:
        self.mode: str = ACT_NORMALLY
        self.step_count: int = 0
        self.events: List[SupervisorEvent] = []
        self._divergence = [0] * self.n_channels
        self._flagged = [False] * self.n_channels
        self._agree_streak = [0] * self.n_channels
        self._clean_streak = 0

    # -- introspection --------------------------------------------------------

    @property
    def flagged_channels(self) -> Tuple[int, ...]:
        return tuple(i for i, f in enumerate(self._flagged) if f)

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    # -- internals ------------------------------------------------------------

    def _log(self, kind: str, detail: str, mode_before: str) -> None:
        self.events.append(SupervisorEvent(
            step=self.step_count, kind=kind, detail=detail,
            mode_before=mode_before, mode_after=self.mode))
        SUPERVISOR_EVENTS.inc(kind=kind)
        if kind == "transition":
            SUPERVISOR_TRANSITIONS.inc(from_mode=mode_before,
                                       to_mode=self.mode)
        if kind in ("watchdog_timeout", "retry"):
            tracing.event("supervisor." + kind, detail=detail)

    def note_retry(self, channel: int, attempt: int, delay: float) -> None:
        """Record one watchdog-triggered retry (called by the runtime)."""
        self._log("retry",
                  f"channel {channel} retry {attempt} after {delay:.4f}s "
                  "backoff", self.mode)

    @staticmethod
    def _diverges(output: str, fused: Optional[str]) -> bool:
        """A channel diverges when it contradicts the fused decision on
        whether an object exists, or commits to a different object label."""
        if fused is None:
            return False  # nothing agreed to diverge from
        says_object = output != NONE_LABEL
        fused_object = fused != NONE_LABEL
        if says_object != fused_object:
            return True
        if not says_object:
            return False
        if UNCERTAIN_LABEL in (output, fused):
            return False  # an epistemic output is honesty, not divergence
        return output != fused

    def step(self, telemetry: Sequence[ChannelTelemetry],
             fused_output: Optional[str],
             epistemic_score: float = 0.0) -> str:
        """Advance one cycle; returns the new vehicle-level mode.

        ``fused_output`` is ``None`` when no channel delivered in time —
        the perception stack produced nothing to act on this cycle.
        """
        if len(telemetry) != self.n_channels:
            raise SupervisorError(
                f"expected telemetry for {self.n_channels} channels, "
                f"got {len(telemetry)}")
        self.step_count += 1
        mode_before = self.mode

        timeouts = [t.timed_out for t in telemetry]
        for i, t in enumerate(telemetry):
            if t.timed_out:
                self._log("watchdog_timeout",
                          f"channel {i} latency {t.latency:.4f}s exceeded "
                          "deadline", mode_before)

        # Divergence bookkeeping against the fused decision.
        for i, t in enumerate(telemetry):
            diverged = t.timed_out or self._diverges(t.output, fused_output)
            if diverged:
                self._divergence[i] += 1
                self._agree_streak[i] = 0
                if (not self._flagged[i]
                        and self._divergence[i] >= self.divergence_trip):
                    self._flagged[i] = True
                    self._log("channel_flagged",
                              f"channel {i} diverged {self._divergence[i]} "
                              "consecutive cycles", mode_before)
            else:
                self._divergence[i] = 0
                self._agree_streak[i] += 1
                if (self._flagged[i]
                        and self._agree_streak[i] >= self.recovery_hysteresis):
                    self._flagged[i] = False
                    self._log("channel_recovered",
                              f"channel {i} agreed {self._agree_streak[i]} "
                              "consecutive cycles", mode_before)

        # Desired mode for this cycle.
        n_faulty = sum(1 for i in range(self.n_channels)
                       if self._flagged[i] or timeouts[i])
        if fused_output is None or (
                n_faulty >= self.minimal_risk_quorum * self.n_channels):
            desired = MINIMAL_RISK
        else:
            desired = self.policy.decide(fused_output, epistemic_score)
            if n_faulty > 0:
                desired = SEVERITY_MODE[max(MODE_SEVERITY[desired],
                                            MODE_SEVERITY[CAUTIOUS_MODE])]

        # Escalate immediately; de-escalate one step under hysteresis.
        current = MODE_SEVERITY[self.mode]
        wanted = MODE_SEVERITY[desired]
        if wanted > current:
            self.mode = desired
            self._clean_streak = 0
            self._log("transition",
                      f"escalated to {desired} (faulty channels: {n_faulty})",
                      mode_before)
        elif wanted < current:
            self._clean_streak += 1
            if self._clean_streak >= self.recovery_hysteresis:
                self.mode = SEVERITY_MODE[current - 1]
                self._clean_streak = 0
                self._log("transition",
                          f"recovered one step toward {desired} after "
                          f"{self.recovery_hysteresis} clean cycles",
                          mode_before)
        else:
            self._clean_streak = 0
        return self.mode

    def __repr__(self) -> str:
        return (f"DegradationSupervisor(mode={self.mode!r}, "
                f"channels={self.n_channels}, "
                f"flagged={list(self.flagged_channels)})")
