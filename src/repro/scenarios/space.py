"""Typed scenario parameter spaces and coverage accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError

Scenario = Dict[str, Union[float, str]]


@dataclass(frozen=True)
class ContinuousParameter:
    """A bounded continuous scenario parameter (e.g. distance in metres)."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("parameter name must be non-empty")
        if not self.high > self.low:
            raise SimulationError(
                f"parameter {self.name!r}: require high > low")

    def from_unit(self, u: float) -> float:
        return self.low + float(np.clip(u, 0.0, 1.0)) * (self.high - self.low)

    def to_unit(self, value: float) -> float:
        return (float(value) - self.low) / (self.high - self.low)


@dataclass(frozen=True)
class CategoricalParameter:
    """A finite-choice scenario parameter (e.g. weather)."""

    name: str
    choices: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("parameter name must be non-empty")
        if len(self.choices) < 2:
            raise SimulationError(
                f"parameter {self.name!r} needs at least 2 choices")
        if len(set(self.choices)) != len(self.choices):
            raise SimulationError(f"duplicate choices in {self.name!r}")

    def from_unit(self, u: float) -> str:
        idx = min(int(np.clip(u, 0.0, 1.0) * len(self.choices)),
                  len(self.choices) - 1)
        return self.choices[idx]

    def to_unit(self, value: str) -> float:
        try:
            idx = self.choices.index(value)
        except ValueError:
            raise SimulationError(
                f"{value!r} is not a choice of {self.name!r}") from None
        return (idx + 0.5) / len(self.choices)


Parameter = Union[ContinuousParameter, CategoricalParameter]


class ScenarioSpace:
    """An ordered set of scenario parameters with unit-cube encoding."""

    def __init__(self, parameters: Sequence[Parameter]):
        if not parameters:
            raise SimulationError("at least one parameter required")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate parameter names: {names}")
        self.parameters = list(parameters)

    @property
    def dim(self) -> int:
        return len(self.parameters)

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.parameters]

    def decode(self, unit_point: Sequence[float]) -> Scenario:
        unit_point = np.asarray(unit_point, dtype=float)
        if unit_point.shape != (self.dim,):
            raise SimulationError(
                f"unit point must have shape ({self.dim},)")
        return {p.name: p.from_unit(float(u))
                for p, u in zip(self.parameters, unit_point)}

    def encode(self, scenario: Scenario) -> np.ndarray:
        missing = set(self.names) - set(scenario)
        if missing:
            raise SimulationError(f"scenario missing parameters {sorted(missing)}")
        return np.array([p.to_unit(scenario[p.name])
                         for p in self.parameters])

    def sample(self, rng: np.random.Generator, n: int) -> List[Scenario]:
        if n <= 0:
            raise SimulationError("n must be positive")
        return [self.decode(rng.random(self.dim)) for _ in range(n)]

    def halton_sample(self, n: int, start: int = 0) -> List[Scenario]:
        from repro.probability.sampling import halton_sequence
        design = halton_sequence(n, self.dim, start=start)
        return [self.decode(row) for row in design]

    def __repr__(self) -> str:
        return f"ScenarioSpace({self.names})"


class CoverageTracker:
    """Discretized-cell coverage of a scenario space.

    The fraction of visited cells is a crude but auditable measure of how
    much of the declared ODD has been exercised; the *unvisited* cells are
    a concrete to-do list for uncertainty removal.
    """

    def __init__(self, space: ScenarioSpace, cells_per_axis: int = 4):
        if cells_per_axis < 2:
            raise SimulationError("cells_per_axis must be >= 2")
        self.space = space
        self.cells_per_axis = cells_per_axis
        self._visited: set = set()

    def _cell_of(self, scenario: Scenario) -> Tuple[int, ...]:
        unit = self.space.encode(scenario)
        return tuple(min(int(u * self.cells_per_axis),
                         self.cells_per_axis - 1) for u in unit)

    def record(self, scenario: Scenario) -> None:
        self._visited.add(self._cell_of(scenario))

    @property
    def n_cells(self) -> int:
        total = 1
        for p in self.space.parameters:
            if isinstance(p, CategoricalParameter):
                total *= min(self.cells_per_axis, len(p.choices))
            else:
                total *= self.cells_per_axis
        return total

    @property
    def n_visited(self) -> int:
        return len(self._visited)

    def coverage(self) -> float:
        return self.n_visited / self.n_cells

    def unvisited_example_cells(self, limit: int = 10) -> List[Tuple[int, ...]]:
        """Up to ``limit`` unvisited cell indices (the removal to-do list)."""
        out = []
        axes = []
        for p in self.space.parameters:
            if isinstance(p, CategoricalParameter):
                axes.append(range(min(self.cells_per_axis, len(p.choices))))
            else:
                axes.append(range(self.cells_per_axis))
        import itertools
        for cell in itertools.product(*axes):
            if cell not in self._visited:
                out.append(cell)
                if len(out) >= limit:
                    break
        return out

    def __repr__(self) -> str:
        return (f"CoverageTracker({self.n_visited}/{self.n_cells} cells, "
                f"{self.coverage():.1%})")
