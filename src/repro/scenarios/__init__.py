"""Scenario-based testing: parameter spaces, coverage, falsification.

Uncertainty removal at the *system* level (paper §IV): instead of passive
sampling, actively search the scenario space for the conditions under
which the SuD misbehaves.  The modules provide a typed scenario parameter
space, coverage accounting over its discretization (how much of the ODD
has been exercised — an epistemic-reduction ledger), and falsification
search (random / low-discrepancy / local hill climbing) for
high-hazard scenarios — the long tail hunted deliberately.
"""

from repro.scenarios.falsification import (
    FalsificationResult,
    Falsifier,
    PerceptionHazardObjective,
    perception_hazard_objective,
)
from repro.scenarios.space import (
    CategoricalParameter,
    ContinuousParameter,
    CoverageTracker,
    ScenarioSpace,
)

__all__ = [
    "CategoricalParameter",
    "ContinuousParameter",
    "ScenarioSpace",
    "CoverageTracker",
    "Falsifier",
    "FalsificationResult",
    "PerceptionHazardObjective",
    "perception_hazard_objective",
]
