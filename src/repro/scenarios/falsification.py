"""Falsification search: hunting the scenario space for failures.

Passive sampling finds frequent failures; falsification finds *worst*
ones.  Strategies:

- ``random``: i.i.d. baseline,
- ``halton``: low-discrepancy space sweep (systematic coverage),
- ``local``: (1+1)-style hill climbing from the best sweep point, with
  shrinking Gaussian steps in the unit cube.

The objective is an arbitrary scenario -> score function (here typically
an estimated hazard probability from repeated chain simulations); the
search is noise-aware through re-evaluation averaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.parallel import ParallelExecutor
from repro.scenarios.space import CoverageTracker, Scenario, ScenarioSpace

Objective = Callable[[Scenario], float]


def _objective_chunk(objective: Objective,
                     chunk: Sequence[Scenario]) -> List[float]:
    """Module-level chunk runner for the executor's context map.

    The objective is the shared context: it ships to each process
    worker once per pool (arena-backed when it embeds numpy tables,
    e.g. the confusion matrices inside a
    :class:`PerceptionHazardObjective`'s chain) instead of being
    re-pickled into every chunk payload.
    """
    return [float(objective(scenario)) for scenario in chunk]


@dataclass
class FalsificationResult:
    """Outcome of one search run."""

    best_scenario: Scenario
    best_score: float
    n_evaluations: int
    history: List[Tuple[Scenario, float]] = field(default_factory=list)
    coverage: Optional[float] = None

    def top(self, k: int = 5) -> List[Tuple[Scenario, float]]:
        return sorted(self.history, key=lambda t: -t[1])[:k]


class Falsifier:
    """Search driver over a scenario space.

    Parameters
    ----------
    space:
        The scenario parameter space.
    objective:
        Scenario -> score; higher = worse behavior (e.g. hazard estimate).
        The objective owns its randomness; pass an averaged estimator for
        noisy simulations.  Batch strategies evaluate through the
        executor, so an objective destined for the process backend must
        be picklable (e.g. :class:`PerceptionHazardObjective`).
    executor:
        Optional :class:`~repro.parallel.ParallelExecutor` for batch
        evaluations (random search and Halton sweeps — the local-search
        climb is inherently sequential and stays serial).  Scores are
        reassembled in scenario order, so results match the serial run
        exactly on every backend.
    """

    def __init__(self, space: ScenarioSpace, objective: Objective,
                 executor: Optional[ParallelExecutor] = None):
        self.space = space
        self.objective = objective
        self.executor = executor or ParallelExecutor()

    def _evaluate(self, scenario: Scenario,
                  history: List[Tuple[Scenario, float]]) -> float:
        score = float(self.objective(scenario))
        history.append((scenario, score))
        return score

    def _evaluate_batch(self, scenarios: Sequence[Scenario],
                        history: List[Tuple[Scenario, float]]) -> List[float]:
        """Scores for a scenario batch, fanned out, in scenario order.

        The objective rides the context channel, so process workers
        receive it once per pool (shared-memory arena for its numpy
        payload) rather than once per chunk.
        """
        scores = self.executor.map_with_context(_objective_chunk,
                                                self.objective, scenarios)
        history.extend(zip(scenarios, scores))
        return scores

    def _batch_result(self, scenarios: List[Scenario],
                      tracker: CoverageTracker) -> FalsificationResult:
        history: List[Tuple[Scenario, float]] = []
        for scenario in scenarios:
            tracker.record(scenario)
        scores = self._evaluate_batch(scenarios, history)
        best = int(np.argmax(scores))  # first maximum, like the serial scan
        return FalsificationResult(best_scenario=scenarios[best],
                                   best_score=scores[best],
                                   n_evaluations=len(scenarios),
                                   history=history,
                                   coverage=tracker.coverage())

    def random_search(self, rng: np.random.Generator,
                      n: int) -> FalsificationResult:
        if n <= 0:
            raise SimulationError("n must be positive")
        return self._batch_result(self.space.sample(rng, n),
                                  CoverageTracker(self.space))

    def halton_sweep(self, n: int) -> FalsificationResult:
        if n <= 0:
            raise SimulationError("n must be positive")
        return self._batch_result(self.space.halton_sample(n),
                                  CoverageTracker(self.space))

    def local_search(self, rng: np.random.Generator, n_sweep: int,
                     n_local: int, initial_step: float = 0.2,
                     shrink: float = 0.9) -> FalsificationResult:
        """Halton sweep for a seed, then (1+1) hill climbing around it."""
        if n_sweep <= 0 or n_local < 0:
            raise SimulationError("n_sweep must be positive, n_local >= 0")
        if not 0.0 < shrink < 1.0 or initial_step <= 0.0:
            raise SimulationError("invalid step-control parameters")
        sweep = self.halton_sweep(n_sweep)
        history = list(sweep.history)
        current_unit = self.space.encode(sweep.best_scenario)
        current_score = sweep.best_score
        step = initial_step
        for _ in range(n_local):
            proposal_unit = np.clip(
                current_unit + rng.normal(0.0, step, size=self.space.dim),
                0.0, 1.0)
            proposal = self.space.decode(proposal_unit)
            score = self._evaluate(proposal, history)
            if score > current_score:
                current_unit, current_score = proposal_unit, score
            else:
                step *= shrink
        return FalsificationResult(
            best_scenario=self.space.decode(current_unit),
            best_score=current_score,
            n_evaluations=n_sweep + n_local,
            history=history)

    def compare_strategies(self, rng: np.random.Generator,
                           budget: int) -> Dict[str, FalsificationResult]:
        """Same evaluation budget, three strategies — the bench harness."""
        if budget < 10:
            raise SimulationError("budget must be at least 10")
        return {
            "random": self.random_search(rng, budget),
            "halton": self.halton_sweep(budget),
            "local": self.local_search(rng, n_sweep=budget // 2,
                                       n_local=budget - budget // 2),
        }


class PerceptionHazardObjective:
    """Standard objective: hazard probability of the perception chain in
    a fixed scenario, estimated by repeated simulation.

    Scenario parameters: distance, occlusion, night (yes/no),
    rain (yes/no), object_class (car/pedestrian/unknown).

    A module-level picklable callable (not a closure) so the process
    backend can ship it to pool workers.  The per-scenario RNG is derived
    from ``(seed, crc32(scenario))`` — a stable content hash rather than
    Python's salted ``hash()`` — so the same scenario scores identically
    in any process, on any backend, in any run.
    """

    def __init__(self, n_repeats: int = 30, seed: int = 0):
        from repro.perception.chain import PerceptionChain
        self.n_repeats = int(n_repeats)
        self.seed = int(seed)
        self.chain = PerceptionChain()

    def _rng(self, scenario: Scenario) -> np.random.Generator:
        import zlib
        key = zlib.crc32(repr(sorted(scenario.items())).encode("utf-8"))
        return np.random.default_rng(self.seed + key % (2 ** 31))

    def __call__(self, scenario: Scenario) -> float:
        from repro.perception.world import (
            CAR,
            ObjectInstance,
            PEDESTRIAN,
            UNKNOWN,
        )
        rng = self._rng(scenario)
        label = str(scenario["object_class"])
        true_class = {"car": CAR, "pedestrian": PEDESTRIAN,
                      "unknown": "kangaroo"}[label]
        obj = ObjectInstance(
            true_class=true_class, label=label,
            distance=float(scenario["distance"]),
            occlusion=float(scenario["occlusion"]),
            night=scenario["night"] == "yes",
            rain=scenario["rain"] == "yes")
        hazards = 0
        for _ in range(self.n_repeats):
            output = self.chain.perceive(obj, rng)
            if output == "none":
                hazards += 1
            elif label == UNKNOWN and output in (CAR, PEDESTRIAN):
                hazards += 1
        return hazards / self.n_repeats


def perception_hazard_objective(n_repeats: int = 30,
                                seed: int = 0) -> Objective:
    """The standard perception-hazard objective (see
    :class:`PerceptionHazardObjective`; kept as a factory for backward
    compatibility)."""
    return PerceptionHazardObjective(n_repeats=n_repeats, seed=seed)


def default_perception_space() -> ScenarioSpace:
    """The scenario space matching :func:`perception_hazard_objective`."""
    from repro.scenarios.space import CategoricalParameter, ContinuousParameter
    return ScenarioSpace([
        ContinuousParameter("distance", 5.0, 100.0),
        ContinuousParameter("occlusion", 0.0, 0.95),
        CategoricalParameter("night", ("no", "yes")),
        CategoricalParameter("rain", ("no", "yes")),
        CategoricalParameter("object_class", ("car", "pedestrian", "unknown")),
    ])
