"""Falsification search: hunting the scenario space for failures.

Passive sampling finds frequent failures; falsification finds *worst*
ones.  Strategies:

- ``random``: i.i.d. baseline,
- ``halton``: low-discrepancy space sweep (systematic coverage),
- ``local``: (1+1)-style hill climbing from the best sweep point, with
  shrinking Gaussian steps in the unit cube.

The objective is an arbitrary scenario -> score function (here typically
an estimated hazard probability from repeated chain simulations); the
search is noise-aware through re-evaluation averaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.scenarios.space import CoverageTracker, Scenario, ScenarioSpace

Objective = Callable[[Scenario], float]


@dataclass
class FalsificationResult:
    """Outcome of one search run."""

    best_scenario: Scenario
    best_score: float
    n_evaluations: int
    history: List[Tuple[Scenario, float]] = field(default_factory=list)
    coverage: Optional[float] = None

    def top(self, k: int = 5) -> List[Tuple[Scenario, float]]:
        return sorted(self.history, key=lambda t: -t[1])[:k]


class Falsifier:
    """Search driver over a scenario space.

    Parameters
    ----------
    space:
        The scenario parameter space.
    objective:
        Scenario -> score; higher = worse behavior (e.g. hazard estimate).
        The objective owns its randomness; pass an averaged estimator for
        noisy simulations.
    """

    def __init__(self, space: ScenarioSpace, objective: Objective):
        self.space = space
        self.objective = objective

    def _evaluate(self, scenario: Scenario,
                  history: List[Tuple[Scenario, float]]) -> float:
        score = float(self.objective(scenario))
        history.append((scenario, score))
        return score

    def random_search(self, rng: np.random.Generator,
                      n: int) -> FalsificationResult:
        if n <= 0:
            raise SimulationError("n must be positive")
        tracker = CoverageTracker(self.space)
        history: List[Tuple[Scenario, float]] = []
        best, best_score = None, -np.inf
        for scenario in self.space.sample(rng, n):
            tracker.record(scenario)
            score = self._evaluate(scenario, history)
            if score > best_score:
                best, best_score = scenario, score
        assert best is not None
        return FalsificationResult(best_scenario=best, best_score=best_score,
                                   n_evaluations=n, history=history,
                                   coverage=tracker.coverage())

    def halton_sweep(self, n: int) -> FalsificationResult:
        if n <= 0:
            raise SimulationError("n must be positive")
        tracker = CoverageTracker(self.space)
        history: List[Tuple[Scenario, float]] = []
        best, best_score = None, -np.inf
        for scenario in self.space.halton_sample(n):
            tracker.record(scenario)
            score = self._evaluate(scenario, history)
            if score > best_score:
                best, best_score = scenario, score
        assert best is not None
        return FalsificationResult(best_scenario=best, best_score=best_score,
                                   n_evaluations=n, history=history,
                                   coverage=tracker.coverage())

    def local_search(self, rng: np.random.Generator, n_sweep: int,
                     n_local: int, initial_step: float = 0.2,
                     shrink: float = 0.9) -> FalsificationResult:
        """Halton sweep for a seed, then (1+1) hill climbing around it."""
        if n_sweep <= 0 or n_local < 0:
            raise SimulationError("n_sweep must be positive, n_local >= 0")
        if not 0.0 < shrink < 1.0 or initial_step <= 0.0:
            raise SimulationError("invalid step-control parameters")
        sweep = self.halton_sweep(n_sweep)
        history = list(sweep.history)
        current_unit = self.space.encode(sweep.best_scenario)
        current_score = sweep.best_score
        step = initial_step
        for _ in range(n_local):
            proposal_unit = np.clip(
                current_unit + rng.normal(0.0, step, size=self.space.dim),
                0.0, 1.0)
            proposal = self.space.decode(proposal_unit)
            score = self._evaluate(proposal, history)
            if score > current_score:
                current_unit, current_score = proposal_unit, score
            else:
                step *= shrink
        return FalsificationResult(
            best_scenario=self.space.decode(current_unit),
            best_score=current_score,
            n_evaluations=n_sweep + n_local,
            history=history)

    def compare_strategies(self, rng: np.random.Generator,
                           budget: int) -> Dict[str, FalsificationResult]:
        """Same evaluation budget, three strategies — the bench harness."""
        if budget < 10:
            raise SimulationError("budget must be at least 10")
        return {
            "random": self.random_search(rng, budget),
            "halton": self.halton_sweep(budget),
            "local": self.local_search(rng, n_sweep=budget // 2,
                                       n_local=budget - budget // 2),
        }


def perception_hazard_objective(n_repeats: int = 30,
                                seed: int = 0) -> Objective:
    """Standard objective: hazard probability of the perception chain in
    a fixed scenario, estimated by repeated simulation.

    Scenario parameters: distance, occlusion, night (yes/no),
    rain (yes/no), object_class (car/pedestrian/unknown).
    """
    from repro.perception.chain import PerceptionChain
    from repro.perception.world import CAR, ObjectInstance, PEDESTRIAN, UNKNOWN

    chain = PerceptionChain()

    def objective(scenario: Scenario) -> float:
        rng = np.random.default_rng(
            seed + hash(tuple(sorted(scenario.items()))) % (2 ** 31))
        label = str(scenario["object_class"])
        true_class = {"car": CAR, "pedestrian": PEDESTRIAN,
                      "unknown": "kangaroo"}[label]
        obj = ObjectInstance(
            true_class=true_class, label=label,
            distance=float(scenario["distance"]),
            occlusion=float(scenario["occlusion"]),
            night=scenario["night"] == "yes",
            rain=scenario["rain"] == "yes")
        hazards = 0
        for _ in range(n_repeats):
            output = chain.perceive(obj, rng)
            if output == "none":
                hazards += 1
            elif label == UNKNOWN and output in (CAR, PEDESTRIAN):
                hazards += 1
        return hazards / n_repeats

    return objective


def default_perception_space() -> ScenarioSpace:
    """The scenario space matching :func:`perception_hazard_objective`."""
    from repro.scenarios.space import CategoricalParameter, ContinuousParameter
    return ScenarioSpace([
        ContinuousParameter("distance", 5.0, 100.0),
        ContinuousParameter("occlusion", 0.0, 0.95),
        CategoricalParameter("night", ("no", "yes")),
        CategoricalParameter("rain", ("no", "yes")),
        CategoricalParameter("object_class", ("car", "pedestrian", "unknown")),
    ])
