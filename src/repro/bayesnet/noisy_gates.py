"""Noisy-OR / noisy-AND CPT generators (paper refs [38], [39] territory).

Like ranked nodes, canonical interaction models tame the exponential CPT
growth the paper warns about: a noisy-OR over k binary causes needs k+1
parameters (one activation probability per cause plus a leak) instead of
2^k rows.  They also carry a causal-independence semantics that pure
tables lack, which makes elicitation questions natural ("if only this
cause is present, how often does the effect occur?").
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError

FALSE, TRUE = "false", "true"


def _check_binary(variable: Variable) -> None:
    if tuple(variable.states) != (FALSE, TRUE):
        raise InferenceError(
            f"noisy gates require binary variables with states "
            f"('false', 'true'); {variable.name!r} has {variable.states}")


def noisy_or_cpt(child: Variable, parents: Sequence[Variable],
                 activation: Mapping[str, float],
                 leak: float = 0.0) -> CPT:
    """Noisy-OR: each present cause independently activates the effect.

    ``activation[p]`` is P(effect | only cause p present); ``leak`` is
    P(effect | no cause present).  The full-table entry is

        P(effect | causes C) = 1 - (1 - leak) * prod_{p in C} (1 - a_p).
    """
    _check_binary(child)
    for p in parents:
        _check_binary(p)
    if not 0.0 <= leak < 1.0:
        raise InferenceError("leak must be in [0, 1)")
    missing = {p.name for p in parents} - set(activation)
    if missing:
        raise InferenceError(f"missing activation for parents {sorted(missing)}")
    for name, a in activation.items():
        if not 0.0 <= a <= 1.0:
            raise InferenceError(f"activation of {name!r} must be in [0, 1]")

    shape = tuple(p.cardinality for p in parents) + (2,)
    table = np.zeros(shape)
    for idx in np.ndindex(*shape[:-1]):
        survive = 1.0 - leak
        for p, i in zip(parents, idx):
            if p.states[i] == TRUE:
                survive *= 1.0 - activation[p.name]
        p_true = 1.0 - survive
        table[idx + (0,)] = 1.0 - p_true
        table[idx + (1,)] = p_true
    return CPT(child, tuple(parents), table)


def noisy_and_cpt(child: Variable, parents: Sequence[Variable],
                  inhibition: Mapping[str, float],
                  base: float = 1.0) -> CPT:
    """Noisy-AND: every absent cause independently inhibits the effect.

    ``inhibition[p]`` is the probability that the *absence* of cause p
    still lets the effect through; ``base`` is P(effect | all causes
    present).
    """
    _check_binary(child)
    for p in parents:
        _check_binary(p)
    if not 0.0 < base <= 1.0:
        raise InferenceError("base must be in (0, 1]")
    missing = {p.name for p in parents} - set(inhibition)
    if missing:
        raise InferenceError(f"missing inhibition for parents {sorted(missing)}")
    for name, q in inhibition.items():
        if not 0.0 <= q <= 1.0:
            raise InferenceError(f"inhibition of {name!r} must be in [0, 1]")

    shape = tuple(p.cardinality for p in parents) + (2,)
    table = np.zeros(shape)
    for idx in np.ndindex(*shape[:-1]):
        p_true = base
        for p, i in zip(parents, idx):
            if p.states[i] == FALSE:
                p_true *= inhibition[p.name]
        table[idx + (0,)] = 1.0 - p_true
        table[idx + (1,)] = p_true
    return CPT(child, tuple(parents), table)


def noisy_or_parameter_savings(n_parents: int) -> Dict[str, int]:
    """Parameter counts: full binary CPT vs noisy-OR."""
    if n_parents < 1:
        raise InferenceError("n_parents must be >= 1")
    return {
        "full_cpt": 2 ** n_parents,      # one free prob per configuration
        "noisy_or": n_parents + 1,       # activations + leak
    }


def fit_noisy_or(child: Variable, parents: Sequence[Variable],
                 records: Sequence[Mapping[str, str]],
                 leak: float = 0.0) -> CPT:
    """Estimate noisy-OR activations from complete data (method of
    single-cause moments: use records where exactly one cause is present).

    Falls back to a small pseudo-count when a single-cause stratum is
    empty; the result is a valid noisy-OR CPT that can be compared against
    the full-table MLE by likelihood.
    """
    _check_binary(child)
    for p in parents:
        _check_binary(p)
    activation: Dict[str, float] = {}
    for p in parents:
        hits = 1.0
        total = 2.0  # Jeffreys-ish pseudo counts
        for rec in records:
            present = [q.name for q in parents if rec[q.name] == TRUE]
            if present == [p.name]:
                total += 1.0
                if rec[child.name] == TRUE:
                    hits += 1.0
        raw = hits / total
        # Invert the leak composition: observed = 1-(1-leak)(1-a).
        a = 1.0 - (1.0 - raw) / max(1.0 - leak, 1e-12)
        activation[p.name] = float(np.clip(a, 0.0, 1.0))
    return noisy_or_cpt(child, parents, activation, leak)
