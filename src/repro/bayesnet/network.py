"""The user-facing :class:`BayesianNetwork` tying structure and CPTs together.

This is the graphical analysis model of the paper's §V-B: "The BN is a
Directed Acyclic Graph that consists of nodes and edges.  Every node is a
random variable ... The effect of parent node on child node is determined
by conditional probabilities."

Exact inference is served by a lazily-created
:class:`~repro.bayesnet.engine.CompiledNetwork` — validation, CPT→factor
conversion, elimination orders and the junction tree are compiled once and
cached behind a mutation-tracked version counter, so repeated queries (the
removal/sensitivity/VoI/campaign hot path) reuse the compiled artifacts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.factor import Factor
from repro.bayesnet.graph import DAG
from repro.bayesnet.inference.sampling import (
    forward_sample,
    gibbs_query,
    likelihood_weighting_query,
    rejection_query,
)
from repro.bayesnet.inference.variable_elimination import (
    most_probable_explanation,
)
from repro.bayesnet.variable import Variable
from repro.errors import GraphError, InferenceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.bayesnet.engine import CompiledNetwork
    from repro.bayesnet.inference.kernels import CompiledSampler


class BayesianNetwork:
    """A discrete Bayesian network with exact and approximate inference.

    Example (the paper's Fig. 4 network)::

        gt = Variable("ground_truth", ["car", "pedestrian", "unknown"])
        pc = Variable("perception", ["car", "pedestrian", "car/pedestrian", "none"])
        bn = BayesianNetwork("perception-chain")
        bn.add_cpt(CPT.prior(gt, {"car": 0.6, "pedestrian": 0.3, "unknown": 0.1}))
        bn.add_cpt(CPT.from_dict(pc, [gt], {...Table I rows...}))
        bn.query("ground_truth", evidence={"perception": "none"})
    """

    def __init__(self, name: str = "bn"):
        self.name = name
        self.dag = DAG()
        self._variables: Dict[str, Variable] = {}
        self._cpts: Dict[str, CPT] = {}
        self._version = 0
        self._validated_version: Optional[int] = None
        self._factors_version: Optional[int] = None
        self._factor_cache: List[Factor] = []
        self._engine: Optional["CompiledNetwork"] = None
        self._sampler: Optional["CompiledSampler"] = None

    # -- construction -----------------------------------------------------------

    def _mutated(self) -> None:
        """Record a structure/parameter change; invalidates memoized state."""
        self._version += 1

    @property
    def version(self) -> int:
        """Monotone mutation counter; engine caches key off it."""
        return self._version

    def add_cpt(self, cpt: CPT) -> None:
        """Add a node together with its CPT; parents must exist already."""
        child = cpt.child
        if child.name in self._cpts:
            raise GraphError(f"node {child.name!r} already has a CPT")
        for p in cpt.parents:
            if p.name not in self._variables:
                raise GraphError(
                    f"parent {p.name!r} of {child.name!r} must be added first")
            if self._variables[p.name] != p:
                raise GraphError(f"conflicting definitions of variable {p.name!r}")
        self._variables[child.name] = child
        self.dag.add_node(child.name)
        for p in cpt.parents:
            self.dag.add_edge(p.name, child.name)
        self._cpts[child.name] = cpt
        self._mutated()

    def replace_cpt(self, cpt: CPT) -> None:
        """Swap the CPT of an existing node (same child and parent set).

        A parameter-only mutation: the engine keeps its cached elimination
        orders (structure fingerprint unchanged) and rebuilds only factors.
        """
        old = self._cpts.get(cpt.child.name)
        if old is None:
            raise GraphError(f"node {cpt.child.name!r} does not exist")
        if set(old.parent_names) != set(cpt.parent_names):
            raise GraphError(
                "replace_cpt must preserve the parent set; rebuild the network "
                "to change structure")
        self._cpts[cpt.child.name] = cpt
        self._mutated()

    # -- accessors ----------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return self.dag.topological_order()

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise GraphError(f"unknown variable {name!r}") from None

    def cpt(self, name: str) -> CPT:
        try:
            return self._cpts[name]
        except KeyError:
            raise GraphError(f"no CPT for {name!r}") from None

    def factors(self) -> List[Factor]:
        """CPT factors, memoized until the next mutation.

        Factors are treated as immutable throughout the inference stack, so
        sharing the cached objects across queries is safe.
        """
        if self._factors_version != self._version:
            self._factor_cache = [cpt.to_factor()
                                  for cpt in self._cpts.values()]
            self._factors_version = self._version
        return list(self._factor_cache)

    def n_parameters(self) -> int:
        """Total free parameters — the elicitation burden of the model."""
        return sum(cpt.n_parameters() for cpt in self._cpts.values())

    def validate(self, force: bool = False) -> None:
        """Check every node has a CPT and the structure is a proper DAG.

        Memoized behind the mutation counter: repeat queries on an
        unchanged network skip revalidation entirely.  ``force`` bypasses
        the memo (used by the recompiling baseline engine).
        """
        if not force and self._validated_version == self._version:
            return
        for name in self.dag.nodes:
            if name not in self._cpts:
                raise GraphError(f"node {name!r} has no CPT")
            cpt = self._cpts[name]
            if set(cpt.parent_names) != self.dag.parents(name):
                raise GraphError(
                    f"CPT parents of {name!r} disagree with graph structure")
        self.dag.topological_order()  # raises on cycles
        self._validated_version = self._version

    # -- inference -----------------------------------------------------------------

    def engine(self) -> "CompiledNetwork":
        """The compiled inference engine for this network (created once).

        All exact queries below delegate here; analysis layers that sweep
        many queries should hold this handle directly and use
        :meth:`~repro.bayesnet.engine.CompiledNetwork.query_batch`.
        """
        if self._engine is None:
            from repro.bayesnet.engine import CompiledNetwork
            self._engine = CompiledNetwork(self)
        return self._engine

    def sampler(self) -> "CompiledSampler":
        """The vectorized sampling kernels for this network (cached).

        Unlike the self-refreshing engine, a compiled sampler is an
        immutable snapshot: the handle is rebuilt here whenever the
        mutation counter has moved since it was compiled.
        """
        from repro.bayesnet.inference.kernels import CompiledSampler
        if self._sampler is None or self._sampler.version != self._version:
            self._sampler = CompiledSampler(self)
        return self._sampler

    def query(self, target: str, evidence: Mapping[str, str] = None,
              method: str = "exact", rng: Optional[np.random.Generator] = None,
              n_samples: int = 10000) -> Dict[str, float]:
        """Posterior marginal P(target | evidence).

        ``method`` is one of ``exact`` (variable elimination),
        ``junction_tree``, ``likelihood_weighting``, ``rejection``, ``gibbs``.
        """
        evidence = dict(evidence or {})
        if method == "exact":
            return self.engine().query(target, evidence)
        if method == "junction_tree":
            return self.engine().marginals(evidence)[target]
        self.validate()
        if rng is None:
            raise InferenceError(f"method {method!r} requires an rng")
        if method == "likelihood_weighting":
            return likelihood_weighting_query(self, rng, target, evidence, n_samples)
        if method == "rejection":
            return rejection_query(self, rng, target, evidence, n_samples)
        if method == "gibbs":
            return gibbs_query(self, rng, target, evidence, n_samples)
        raise InferenceError(f"unknown inference method {method!r}")

    def joint_query(self, targets: Sequence[str],
                    evidence: Mapping[str, str] = None) -> Factor:
        """Joint posterior over several targets (exact)."""
        return self.engine().joint_query(list(targets), dict(evidence or {}))

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        """P(evidence) — the normalizing constant of a diagnostic query."""
        return self.engine().probability_of_evidence(dict(evidence))

    def map_explanation(self, evidence: Mapping[str, str] = None) -> Dict[str, str]:
        """Most probable explanation of all unobserved variables."""
        self.validate()
        return most_probable_explanation(self.factors(), dict(evidence or {}))

    def sample(self, rng: np.random.Generator, n: int) -> List[Dict[str, str]]:
        """Forward-sample ``n`` joint configurations."""
        self.validate()
        return forward_sample(self, rng, n)

    def marginals(self, evidence: Mapping[str, str] = None) -> Dict[str, Dict[str, float]]:
        """All posterior marginals via one junction-tree calibration."""
        return self.engine().marginals(dict(evidence or {}))

    def __repr__(self) -> str:
        return (f"BayesianNetwork({self.name!r}, nodes={self.dag.n_nodes}, "
                f"edges={len(self.dag.edges())}, params={self.n_parameters()})")
