"""Directed acyclic graph structure underlying a Bayesian network.

A small, dependency-free DAG with the queries inference needs: topological
order, ancestors/descendants, moralization, and d-separation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import GraphError


class DAG:
    """Directed acyclic graph over string node names."""

    def __init__(self) -> None:
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: str) -> None:
        if node not in self._parents:
            self._parents[node] = set()
            self._children[node] = set()

    def add_edge(self, parent: str, child: str) -> None:
        """Add parent -> child; rejects self-loops and introduced cycles."""
        if parent == child:
            raise GraphError(f"self-loop on {parent!r} not allowed")
        self.add_node(parent)
        self.add_node(child)
        if parent in self.descendants(child) or parent == child:
            raise GraphError(
                f"edge {parent!r} -> {child!r} would create a cycle")
        self._parents[child].add(parent)
        self._children[parent].add(child)

    def remove_edge(self, parent: str, child: str) -> None:
        if child not in self._parents or parent not in self._parents[child]:
            raise GraphError(f"no edge {parent!r} -> {child!r}")
        self._parents[child].discard(parent)
        self._children[parent].discard(child)

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return list(self._parents)

    @property
    def n_nodes(self) -> int:
        return len(self._parents)

    def edges(self) -> List[Tuple[str, str]]:
        return [(p, c) for c, ps in self._parents.items() for p in sorted(ps)]

    def has_node(self, node: str) -> bool:
        return node in self._parents

    def parents(self, node: str) -> Set[str]:
        self._require(node)
        return set(self._parents[node])

    def children(self, node: str) -> Set[str]:
        self._require(node)
        return set(self._children[node])

    def roots(self) -> List[str]:
        return [n for n, ps in self._parents.items() if not ps]

    def leaves(self) -> List[str]:
        return [n for n, cs in self._children.items() if not cs]

    def ancestors(self, node: str) -> Set[str]:
        self._require(node)
        seen: Set[str] = set()
        frontier = deque(self._parents[node])
        while frontier:
            n = frontier.popleft()
            if n not in seen:
                seen.add(n)
                frontier.extend(self._parents[n])
        return seen

    def descendants(self, node: str) -> Set[str]:
        self._require(node)
        seen: Set[str] = set()
        frontier = deque(self._children[node])
        while frontier:
            n = frontier.popleft()
            if n not in seen:
                seen.add(n)
                frontier.extend(self._children[n])
        return seen

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles (defense in depth)."""
        in_degree = {n: len(ps) for n, ps in self._parents.items()}
        queue = deque(sorted(n for n, d in in_degree.items() if d == 0))
        order: List[str] = []
        while queue:
            n = queue.popleft()
            order.append(n)
            for c in sorted(self._children[n]):
                in_degree[c] -= 1
                if in_degree[c] == 0:
                    queue.append(c)
        if len(order) != self.n_nodes:
            raise GraphError("graph contains a cycle")
        return order

    def moralize(self) -> Dict[str, Set[str]]:
        """Moral (undirected) graph: marry co-parents, drop directions."""
        adj: Dict[str, Set[str]] = {n: set() for n in self._parents}
        for child, ps in self._parents.items():
            for p in ps:
                adj[p].add(child)
                adj[child].add(p)
            ps_list = sorted(ps)
            for i, a in enumerate(ps_list):
                for b in ps_list[i + 1:]:
                    adj[a].add(b)
                    adj[b].add(a)
        return adj

    def markov_blanket(self, node: str) -> Set[str]:
        """Parents, children, and children's other parents."""
        self._require(node)
        blanket = set(self._parents[node]) | set(self._children[node])
        for child in self._children[node]:
            blanket |= self._parents[child]
        blanket.discard(node)
        return blanket

    def d_separated(self, x: str, y: str, given: Iterable[str]) -> bool:
        """Check d-separation of x and y given a conditioning set.

        Uses the Bayes-ball style reachability over the ancestral moral
        graph: x ⟂ y | Z iff they are disconnected in the moralized
        ancestral graph of {x, y} ∪ Z with Z removed.
        """
        self._require(x)
        self._require(y)
        z = set(given)
        for node in z:
            self._require(node)
        relevant = {x, y} | z
        closure = set(relevant)
        for node in relevant:
            closure |= self.ancestors(node)
        # Build moral graph restricted to the ancestral closure.
        adj: Dict[str, Set[str]] = {n: set() for n in closure}
        for child in closure:
            ps = self._parents[child] & closure
            for p in ps:
                adj[p].add(child)
                adj[child].add(p)
            ps_list = sorted(ps)
            for i, a in enumerate(ps_list):
                for b in ps_list[i + 1:]:
                    adj[a].add(b)
                    adj[b].add(a)
        # BFS from x avoiding z.
        if x in z or y in z:
            return True
        frontier = deque([x])
        seen = {x}
        while frontier:
            n = frontier.popleft()
            if n == y:
                return False
            for nb in adj[n]:
                if nb not in seen and nb not in z:
                    seen.add(nb)
                    frontier.append(nb)
        return True

    def _require(self, node: str) -> None:
        if node not in self._parents:
            raise GraphError(f"unknown node {node!r}")

    def __repr__(self) -> str:
        return f"DAG(nodes={self.n_nodes}, edges={len(self.edges())})"


def min_fill_elimination_order(adjacency: Dict[str, Set[str]],
                               keep: Sequence[str] = ()) -> List[str]:
    """Greedy min-fill elimination order over an undirected graph.

    ``keep`` nodes (query variables) are never eliminated.  Eliminating a
    node connects all its neighbours; min-fill picks, at each step, the node
    introducing the fewest fill-in edges — the standard heuristic for both
    variable elimination and triangulation.

    Fill-count ties break by variable name, so the order is a pure function
    of the graph — independent of dict/set insertion order and Python hash
    randomization.  Cached query plans and campaign artifacts built on it
    are therefore bit-for-bit reproducible.
    """
    adj = {n: set(nb) for n, nb in adjacency.items()}
    keep_set = set(keep)
    order: List[str] = []
    candidates = sorted(n for n in adj if n not in keep_set)
    while candidates:
        best, best_key = None, None
        for n in candidates:
            nbs = [m for m in adj[n] if m != n]
            fill = 0
            for i, a in enumerate(nbs):
                for b in nbs[i + 1:]:
                    if b not in adj[a]:
                        fill += 1
            key = (fill, n)
            if best_key is None or key < best_key:
                best, best_key = n, key
        assert best is not None
        order.append(best)
        nbs = [m for m in adj[best] if m != best]
        for i, a in enumerate(nbs):
            for b in nbs[i + 1:]:
                adj[a].add(b)
                adj[b].add(a)
        for m in nbs:
            adj[m].discard(best)
        del adj[best]
        candidates.remove(best)
    return order


def triangulate(adjacency: Dict[str, Set[str]]) -> Tuple[Dict[str, Set[str]], List[FrozenSet[str]]]:
    """Triangulate an undirected graph via min-fill; return (chordal graph, cliques).

    The cliques returned are the elimination cliques (node + its neighbours
    at elimination time), with subsumed cliques removed — the input for
    junction-tree construction.
    """
    adj = {n: set(nb) for n, nb in adjacency.items()}
    chordal = {n: set(nb) for n, nb in adjacency.items()}
    order = min_fill_elimination_order(adjacency)
    cliques: List[FrozenSet[str]] = []
    for node in order:
        nbs = [m for m in adj[node] if m != node]
        clique = frozenset([node] + nbs)
        cliques.append(clique)
        for i, a in enumerate(nbs):
            for b in nbs[i + 1:]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    chordal[a].add(b)
                    chordal[b].add(a)
        for m in nbs:
            adj[m].discard(node)
        del adj[node]
    # Remove subsumed cliques.
    maximal: List[FrozenSet[str]] = []
    for c in sorted(cliques, key=len, reverse=True):
        if not any(c < m for m in maximal):
            maximal.append(c)
    return chordal, maximal


def maximum_spanning_junction_tree(
        cliques: Sequence[FrozenSet[str]]) -> List[Tuple[int, int, FrozenSet[str]]]:
    """Connect cliques into a junction tree by max-weight spanning tree.

    Edge weight = separator size; Kruskal with union-find.  The running
    intersection property holds for maximal elimination cliques connected
    this way.  Returns edges as (i, j, separator).
    """
    n = len(cliques)
    if n == 0:
        return []
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            sep = cliques[i] & cliques[j]
            if sep:
                edges.append((len(sep), i, j, sep))
    edges.sort(key=lambda e: -e[0])
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    tree: List[Tuple[int, int, FrozenSet[str]]] = []
    for _, i, j, sep in edges:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
            tree.append((i, j, sep))
            if len(tree) == n - 1:
                break
    return tree
