"""Factors (potentials) over discrete variables: the algebra of inference.

A :class:`Factor` is a non-negative table indexed by the joint states of an
ordered list of variables.  Products, marginalizations and evidence
reductions of factors implement both variable elimination and junction-tree
message passing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.variable import Variable
from repro.errors import InferenceError


class Factor:
    """A table phi(X_1, ..., X_k) >= 0 over discrete variables."""

    def __init__(self, variables: Sequence[Variable], table: np.ndarray):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        names = [v.name for v in self.variables]
        if len(set(names)) != len(names):
            raise InferenceError(f"duplicate variables in factor: {names}")
        table = np.asarray(table, dtype=float)
        expected = tuple(v.cardinality for v in self.variables)
        if table.shape != expected:
            raise InferenceError(
                f"table shape {table.shape} does not match variable "
                f"cardinalities {expected} for {names}")
        if np.any(table < -1e-12):
            raise InferenceError("factor table has negative entries")
        self.table = np.clip(table, 0.0, None)

    # -- constructors --------------------------------------------------------

    @classmethod
    def _wrap(cls, variables: Sequence[Variable], table: np.ndarray) -> "Factor":
        """Trusted constructor: no copy, no validation.

        For internal hot paths (message passing, batched gathers) where
        the table is known to be a well-formed non-negative array of the
        right shape; external callers should use ``Factor(...)``.
        """
        out = Factor.__new__(Factor)
        out.variables = tuple(variables)
        out.table = table
        return out

    @classmethod
    def ones(cls, variables: Sequence[Variable]) -> "Factor":
        shape = tuple(v.cardinality for v in variables)
        return cls(variables, np.ones(shape))

    @classmethod
    def indicator(cls, variable: Variable, state: str) -> "Factor":
        table = np.zeros(variable.cardinality)
        table[variable.index_of(state)] = 1.0
        return cls([variable], table)

    # -- properties ----------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [v.name for v in self.variables]

    @property
    def scope(self) -> frozenset:
        return frozenset(self.names)

    def variable(self, name: str) -> Variable:
        for v in self.variables:
            if v.name == name:
                return v
        raise InferenceError(f"variable {name!r} not in factor scope {self.names}")

    # -- algebra ---------------------------------------------------------------

    def multiply(self, other: "Factor",
                 out: Optional[np.ndarray] = None) -> "Factor":
        """Pointwise product with broadcasting over the union scope.

        ``out``, when given, must be a preallocated array of the union
        shape; the product is written into it in place (no allocation)
        and the returned factor wraps it.
        """
        union: List[Variable] = list(self.variables)
        for v in other.variables:
            if v.name not in {u.name for u in union}:
                union.append(v)
            else:
                mine = next(u for u in union if u.name == v.name)
                if mine != v:
                    raise InferenceError(
                        f"variable {v.name!r} has conflicting state sets")
        a = self._broadcast_to(union)
        b = other._broadcast_to(union)
        if out is None:
            return Factor(union, a * b)
        expected = tuple(v.cardinality for v in union)
        if out.shape != expected:
            raise InferenceError(
                f"out buffer shape {out.shape} does not match union "
                f"shape {expected}")
        np.multiply(a, b, out=out)
        return Factor._wrap(union, out)

    def imultiply(self, other: "Factor") -> "Factor":
        """In-place product: fold ``other`` into this factor's own table.

        ``other``'s scope must be a subset of this factor's scope (the
        message-passing case: separator messages into a clique
        potential), so the result scope — and hence the table — never
        grows and no allocation happens.  Mutates ``self.table``; only
        call on factors this code owns (never on cached/shared ones).
        """
        if isinstance(other, ScalarFactor):
            self.table *= float(other.table)
            return self
        missing = other.scope - self.scope
        if missing:
            raise InferenceError(
                f"imultiply requires other's scope within {self.names}; "
                f"extra variables {sorted(missing)}")
        self.table *= other._broadcast_to(self.variables)
        return self

    def _broadcast_to(self, union: Sequence[Variable]) -> np.ndarray:
        """Reshape/transpose this table to the union variable order."""
        name_to_axis = {v.name: i for i, v in enumerate(self.variables)}
        shape = []
        src_axes = []
        for v in union:
            if v.name in name_to_axis:
                shape.append(v.cardinality)
                src_axes.append(name_to_axis[v.name])
            else:
                shape.append(1)
        transposed = np.transpose(self.table, axes=src_axes)
        return transposed.reshape(shape)

    def marginalize(self, names: Iterable[str],
                    out: Optional[np.ndarray] = None) -> "Factor":
        """Sum out the given variables.

        ``out``, when given, must be a preallocated array shaped like the
        kept variables; the sums are written into it in place.  It is
        ignored for the scalar (everything-summed-out) result.
        """
        drop = set(names)
        missing = drop - set(self.names)
        if missing:
            raise InferenceError(f"cannot marginalize absent variables {sorted(missing)}")
        keep_vars = [v for v in self.variables if v.name not in drop]
        axes = tuple(i for i, v in enumerate(self.variables) if v.name in drop)
        if not keep_vars:
            table = self.table.sum() if axes else self.table
            # Scalar factor: keep as 0-d table wrapper via a dummy representation.
            return ScalarFactor(float(table))
        if out is not None:
            expected = tuple(v.cardinality for v in keep_vars)
            if out.shape != expected:
                raise InferenceError(
                    f"out buffer shape {out.shape} does not match kept "
                    f"shape {expected}")
            if axes:
                self.table.sum(axis=axes, out=out)
            else:
                np.copyto(out, self.table)
            return Factor._wrap(keep_vars, out)
        table = self.table.sum(axis=axes) if axes else self.table.copy()
        return Factor(keep_vars, table)

    def max_out(self, names: Iterable[str]) -> "Factor":
        """Max-marginalize (for MPE queries)."""
        drop = set(names)
        keep_vars = [v for v in self.variables if v.name not in drop]
        axes = tuple(i for i, v in enumerate(self.variables) if v.name in drop)
        table = self.table.max(axis=axes) if axes else self.table.copy()
        if not keep_vars:
            return ScalarFactor(float(table))
        return Factor(keep_vars, table)

    def reduce(self, evidence: Mapping[str, str]) -> "Factor":
        """Slice the table at observed states; evidence vars leave the scope."""
        relevant = {k: v for k, v in evidence.items() if k in set(self.names)}
        if not relevant:
            return self
        index: List = []
        keep_vars: List[Variable] = []
        for v in self.variables:
            if v.name in relevant:
                index.append(v.index_of(relevant[v.name]))
            else:
                index.append(slice(None))
                keep_vars.append(v)
        table = self.table[tuple(index)]
        if not keep_vars:
            return ScalarFactor(float(table))
        return Factor(keep_vars, table)

    def normalize(self) -> "Factor":
        total = float(self.table.sum())
        if total <= 0.0:
            raise InferenceError(
                "factor normalizes to zero — evidence has probability 0 under the model")
        return Factor(self.variables, self.table / total)

    def partition(self) -> float:
        return float(self.table.sum())

    # -- access ----------------------------------------------------------------

    def prob(self, assignment: Mapping[str, str]) -> float:
        """Table value at a full assignment of the factor's scope."""
        index = []
        for v in self.variables:
            if v.name not in assignment:
                raise InferenceError(f"assignment missing variable {v.name!r}")
            index.append(v.index_of(assignment[v.name]))
        return float(self.table[tuple(index)])

    def as_dict(self) -> Dict[Tuple[str, ...], float]:
        """Flatten to {(state_1, ..., state_k): value}."""
        out: Dict[Tuple[str, ...], float] = {}
        for idx in np.ndindex(*self.table.shape):
            key = tuple(v.states[i] for v, i in zip(self.variables, idx))
            out[key] = float(self.table[idx])
        return out

    def distribution(self) -> Dict[str, float]:
        """For single-variable factors: {state: probability} (normalized)."""
        if len(self.variables) != 1:
            raise InferenceError(
                f"distribution() requires a single-variable factor, scope={self.names}")
        norm = self.normalize()
        v = norm.variables[0]
        return {s: float(norm.table[i]) for i, s in enumerate(v.states)}

    def __repr__(self) -> str:
        return f"Factor(scope={self.names}, shape={self.table.shape})"


class ScalarFactor(Factor):
    """A factor with empty scope (a constant), e.g. fully-reduced evidence."""

    def __init__(self, value: float):
        self.variables = ()
        self.table = np.asarray(float(value))
        if self.table < -1e-12:
            raise InferenceError("scalar factor must be non-negative")

    def multiply(self, other: Factor,
                 out: Optional[np.ndarray] = None) -> Factor:
        if isinstance(other, ScalarFactor):
            return ScalarFactor(float(self.table) * float(other.table))
        if out is not None:
            np.multiply(other.table, float(self.table), out=out)
            return Factor._wrap(other.variables, out)
        return Factor(other.variables, other.table * float(self.table))

    def imultiply(self, other: Factor) -> Factor:
        if not isinstance(other, ScalarFactor):
            raise InferenceError(
                "cannot in-place multiply a wider factor into a scalar")
        return ScalarFactor(float(self.table) * float(other.table))

    def marginalize(self, names: Iterable[str],
                    out: Optional[np.ndarray] = None) -> "Factor":
        if set(names):
            raise InferenceError("scalar factor has no variables to marginalize")
        return self

    def reduce(self, evidence: Mapping[str, str]) -> "Factor":
        return self

    def normalize(self) -> "Factor":
        if float(self.table) <= 0.0:
            raise InferenceError("scalar factor normalizes to zero")
        return ScalarFactor(1.0)

    def partition(self) -> float:
        return float(self.table)

    def __repr__(self) -> str:
        return f"ScalarFactor({float(self.table)!r})"


class BatchedFactor:
    """A structure-of-arrays stack of same-scope factors.

    ``table`` has shape ``(n_rows, *cardinalities)``: row ``r`` is one
    evidence row's potential over ``variables``.  The algebra mirrors
    :class:`Factor` — multiply, marginalize, normalize — but every
    operation is vectorized over the leading batch axis, so a whole
    evidence matrix moves through junction-tree calibration in single
    numpy passes instead of a per-row python loop.  ``dtype`` is
    whatever the table carries (float64 for byte-parity with the scalar
    path, float32 for half the memory traffic at documented tolerance).

    The batch axis is positional only and never participates in scope
    arithmetic; an empty ``variables`` tuple (everything summed out)
    leaves a ``(n_rows,)`` vector of per-row scalars.
    """

    __slots__ = ("variables", "table")

    def __init__(self, variables: Sequence[Variable], table: np.ndarray):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        names = [v.name for v in self.variables]
        if len(set(names)) != len(names):
            raise InferenceError(f"duplicate variables in factor: {names}")
        table = np.asarray(table)
        expected = tuple(v.cardinality for v in self.variables)
        if table.ndim != len(expected) + 1 or table.shape[1:] != expected:
            raise InferenceError(
                f"batched table shape {table.shape} does not match "
                f"(n_rows, *{expected}) for {names}")
        self.table = table

    @classmethod
    def _wrap(cls, variables: Sequence[Variable],
              table: np.ndarray) -> "BatchedFactor":
        """Trusted constructor: no copy, no validation (hot paths)."""
        out = BatchedFactor.__new__(BatchedFactor)
        out.variables = tuple(variables)
        out.table = table
        return out

    @classmethod
    def broadcast(cls, factor: Factor, n_rows: int,
                  dtype=np.float64) -> "BatchedFactor":
        """Stack one factor ``n_rows`` times as a zero-copy view.

        The returned table is read-only (a broadcast view); use
        :meth:`materialize` before any in-place mutation.
        """
        base = np.asarray(factor.table, dtype=dtype)
        table = np.broadcast_to(base, (n_rows,) + base.shape)
        return cls._wrap(factor.variables, table)

    @classmethod
    def ones(cls, variables: Sequence[Variable], n_rows: int,
             dtype=np.float64) -> "BatchedFactor":
        shape = (n_rows,) + tuple(v.cardinality for v in variables)
        return cls._wrap(variables, np.ones(shape, dtype=dtype))

    # -- properties ----------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.table.shape[0]

    @property
    def names(self) -> List[str]:
        return [v.name for v in self.variables]

    @property
    def scope(self) -> frozenset:
        return frozenset(v.name for v in self.variables)

    def materialize(self) -> "BatchedFactor":
        """A writable contiguous copy if the table is a broadcast view."""
        if self.table.base is not None or not self.table.flags.writeable:
            # .copy() unconditionally — np.ascontiguousarray would hand
            # back the same read-only view when it is already contiguous
            # (the n_rows=1 broadcast case).
            return BatchedFactor._wrap(self.variables, self.table.copy())
        return self

    # -- algebra ---------------------------------------------------------------

    def _broadcast_to(self, union: Sequence[Variable]) -> np.ndarray:
        """This table transposed/reshaped to (batch, *union order)."""
        name_to_axis = {v.name: i + 1 for i, v in enumerate(self.variables)}
        shape = [self.table.shape[0]]
        src_axes = [0]
        for v in union:
            if v.name in name_to_axis:
                shape.append(v.cardinality)
                src_axes.append(name_to_axis[v.name])
            else:
                shape.append(1)
        transposed = np.transpose(self.table, axes=src_axes)
        return transposed.reshape(shape)

    def multiply(self, other: "BatchedFactor",
                 out: Optional[np.ndarray] = None) -> "BatchedFactor":
        """Row-wise pointwise product over the union scope.

        ``out``, when given, must be preallocated to
        ``(n_rows, *union shape)``; the product lands in it in place.
        """
        if other.table.shape[0] != self.table.shape[0]:
            raise InferenceError(
                f"batch sizes differ: {self.table.shape[0]} vs "
                f"{other.table.shape[0]}")
        union: List[Variable] = list(self.variables)
        mine = {u.name: u for u in union}
        for v in other.variables:
            held = mine.get(v.name)
            if held is None:
                union.append(v)
            elif held != v:
                raise InferenceError(
                    f"variable {v.name!r} has conflicting state sets")
        a = self._broadcast_to(union)
        b = other._broadcast_to(union)
        if out is None:
            return BatchedFactor._wrap(union, a * b)
        expected = (self.table.shape[0],) + tuple(
            v.cardinality for v in union)
        if out.shape != expected:
            raise InferenceError(
                f"out buffer shape {out.shape} does not match batched "
                f"union shape {expected}")
        np.multiply(a, b, out=out)
        return BatchedFactor._wrap(union, out)

    def imultiply(self, other: "BatchedFactor") -> "BatchedFactor":
        """In-place row-wise product; ``other``'s scope within ours.

        The batched message-passing case: separator messages fold into a
        clique potential stack without the stack ever growing.  Requires
        a writable table (see :meth:`materialize`).
        """
        missing = other.scope - self.scope
        if missing:
            raise InferenceError(
                f"imultiply requires other's scope within {self.names}; "
                f"extra variables {sorted(missing)}")
        self.table *= other._broadcast_to(self.variables)
        return self

    def marginalize(self, names: Iterable[str],
                    out: Optional[np.ndarray] = None) -> "BatchedFactor":
        """Sum out variables per row; the batch axis always survives.

        ``out``, when given, must be preallocated to
        ``(n_rows, *kept shape)`` — the reusable message-arena buffer.
        """
        drop = set(names)
        missing = drop - {v.name for v in self.variables}
        if missing:
            raise InferenceError(
                f"cannot marginalize absent variables {sorted(missing)}")
        keep_vars = [v for v in self.variables if v.name not in drop]
        axes = tuple(i + 1 for i, v in enumerate(self.variables)
                     if v.name in drop)
        if out is not None:
            expected = (self.table.shape[0],) + tuple(
                v.cardinality for v in keep_vars)
            if out.shape != expected:
                raise InferenceError(
                    f"out buffer shape {out.shape} does not match kept "
                    f"shape {expected}")
            if axes:
                self.table.sum(axis=axes, out=out)
            else:
                np.copyto(out, self.table)
            return BatchedFactor._wrap(keep_vars, out)
        table = self.table.sum(axis=axes) if axes else self.table.copy()
        return BatchedFactor._wrap(keep_vars, table)

    def partition(self) -> np.ndarray:
        """Per-row sum over the whole scope: the ``(n_rows,)`` Z vector."""
        axes = tuple(range(1, self.table.ndim))
        return self.table.sum(axis=axes) if axes else self.table.copy()

    def normalize(self) -> "BatchedFactor":
        """Per-row normalization; any zero-mass row raises.

        The raised :class:`~repro.errors.InferenceError` carries the
        first offending row in ``row_index``, so callers can name the
        evidence row in their own error contract.
        """
        z = self.partition()
        bad = np.flatnonzero(~(z > 0.0))
        if bad.size:
            exc = InferenceError(
                f"batched factor row {int(bad[0])} normalizes to zero — "
                "evidence has probability 0 under the model")
            exc.row_index = int(bad[0])
            raise exc
        shape = (-1,) + (1,) * (self.table.ndim - 1)
        return BatchedFactor._wrap(self.variables,
                                   self.table / z.reshape(shape))

    def row(self, r: int) -> Factor:
        """Row ``r`` as a plain scalar-path :class:`Factor`."""
        if not self.variables:
            return ScalarFactor(float(self.table[r]))
        return Factor._wrap(self.variables,
                            np.asarray(self.table[r], dtype=float))

    def __repr__(self) -> str:
        return (f"BatchedFactor(rows={self.table.shape[0]}, "
                f"scope={self.names}, dtype={self.table.dtype})")


def multiply_all(factors: Sequence[Factor]) -> Factor:
    """Product of a sequence of factors (ScalarFactor(1) for empty input)."""
    if not factors:
        return ScalarFactor(1.0)
    out = factors[0]
    for f in factors[1:]:
        out = out.multiply(f) if not isinstance(out, ScalarFactor) else f.multiply(out)
    return out
