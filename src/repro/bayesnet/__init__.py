"""Discrete Bayesian-network engine (built from scratch).

Implements the graphical safety-analysis substrate of the paper's §V:
directed acyclic graphs of categorical variables with conditional
probability tables, exact inference (variable elimination and junction
tree), approximate inference (forward / likelihood-weighted / Gibbs
sampling), parameter learning, and ranked-node CPT elicitation (Fenton et
al., ref. [37]) to tame the exponential CPT growth the paper warns about.
"""

from repro.bayesnet.cpt import CPT
from repro.bayesnet.engine import (
    CompiledNetwork,
    EngineStats,
    InferenceEngine,
    RecompilingEngine,
    as_engine,
)
from repro.bayesnet.factor import Factor
from repro.bayesnet.graph import DAG
from repro.bayesnet.learning import bayesian_update_cpts, fit_cpts_mle
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.noisy_gates import noisy_and_cpt, noisy_or_cpt
from repro.bayesnet.ranked_nodes import RankedNode, ranked_cpt
from repro.bayesnet.sensitivity import sensitivity_function, tornado_analysis
from repro.bayesnet.variable import Variable

__all__ = [
    "CPT",
    "Factor",
    "DAG",
    "BayesianNetwork",
    "CompiledNetwork",
    "EngineStats",
    "InferenceEngine",
    "RecompilingEngine",
    "as_engine",
    "Variable",
    "RankedNode",
    "ranked_cpt",
    "noisy_and_cpt",
    "noisy_or_cpt",
    "sensitivity_function",
    "tornado_analysis",
    "bayesian_update_cpts",
    "fit_cpts_mle",
]
