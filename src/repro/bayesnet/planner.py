"""Adaptive query planner: cost-model-driven backend routing with error budgets.

The paper's discipline is that *model quality bounds control quality*:
an answer is only as good as the epistemic cost attached to it.  This
module operationalizes that as a scheduler.  Every compiled network has
several ways to answer the same posterior query — the evidence-keyed
cache, the incremental junction tree, the cached-joint slice, the
stacked batched substrate, vectorized likelihood weighting — and each
sits at a different point on the latency/error plane.  Callers used to
hand-pick one; the planner picks the **cheapest plan whose predicted
error fits the declared budget** and reports the bound its choice
introduces.

Per query the planner:

1. probes the evidence-keyed cache (exact, ~µs — always admissible);
2. enumerates candidate backends with *structural work units* — the
   cached-joint table volume for the exact slice, the predicted
   recomputed-message volume for the incremental junction tree (from
   :meth:`~repro.bayesnet.inference.junction_tree.JunctionTree.
   predict_recalibration`, a per-clique evidence diff), the full
   ``plan_cost()`` for a cold calibration, and the budget-derived draw
   count for likelihood weighting (``n ≈ 0.25 / budget²``, the
   worst-case ``p(1-p)/n`` bound at ``p = 0.5``);
3. prices each candidate as ``work_units × seconds_per_unit`` where the
   coefficient is an EWMA calibrated online from observed latencies,
   keyed by ``(backend, plan fingerprint)`` and persisted on the
   planner (which lives on the engine) — routing improves as the
   process warms;
4. executes candidates cheapest-first, falling to the next on
   :class:`~repro.errors.EngineError`, on a deadline expiring mid-plan
   (the time already spent stays charged against the deadline), or on a
   sampling answer whose *measured* effective-sample-size error
   violates the budget — so the reported ``estimated_error`` is ≤ the
   budget on every answer, by construction.

A **zero error budget admits only exact backends**, and the cache/joint
candidates reuse :meth:`CompiledNetwork._query`'s own code path, so
``route(target, ev, error_budget=0.0).posterior`` is byte-identical to
``CompiledNetwork.query(target, ev)``.

``frozen=True`` prices candidates from the structural priors alone and
skips the EWMA update — decisions become a deterministic function of
(structure, evidence, budget), which is what seeded campaign reports
route with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DeadlineExceededError, EngineError, InferenceError
from repro.telemetry.clock import SystemClock
from repro.telemetry.metrics import PLANNER_COST_COEFF, PLANNER_ROUTES

#: Candidate backends, in the tie-break order used when predicted
#: latencies are equal (exact-first: never pay error we don't have to).
BACKEND_CACHE = "cache"
BACKEND_EXACT = "exact"              # cached-joint slice / stacked substrate
BACKEND_JT = "jt_incremental"        # incremental junction-tree recalibration
BACKEND_JT_FULL = "jt_full"          # cold full calibration (plan_cost volume)
BACKEND_SAMPLING = "sampling"        # vectorized likelihood weighting
_TIE_ORDER = {BACKEND_CACHE: 0, BACKEND_EXACT: 1, BACKEND_JT: 2,
              BACKEND_JT_FULL: 3, BACKEND_SAMPLING: 4}

#: EWMA smoothing for the online cost-coefficient calibration.
COST_ALPHA = 0.2

#: Initial seconds-per-work-unit priors, grounded in measured fig4
#: latencies (cache ~2µs; joint slice ~7µs over 12 table entries;
#: incremental JT ~40µs over ~2 messages × mean clique size; LW ~50ns
#: per sample).  Online calibration replaces them within a few queries.
INITIAL_COST: Dict[str, float] = {
    BACKEND_CACHE: 2e-6,
    BACKEND_EXACT: 6e-7,
    BACKEND_JT: 3e-6,
    BACKEND_JT_FULL: 3e-6,
    BACKEND_SAMPLING: 5e-8,
}

#: Likelihood-weighting draw-count bounds.  The lower bound keeps the
#: normal-approximation error bound honest; the upper bound caps one
#: plan's latency (beyond it the exact backends win anyway).
MIN_SAMPLES = 64
MAX_SAMPLES = 200_000

#: Samples drawn per chunk so a deadline can interrupt a sampling plan
#: mid-flight instead of only between plans.
SAMPLE_CHUNK = 4096

#: Error bound of likelihood weighting with n effective samples: the
#: worst-case binomial standard error sqrt(p(1-p)/n) at p = 0.5.
def sampling_error_bound(n: float) -> float:
    return 0.5 / math.sqrt(max(float(n), 1.0))


def samples_for_budget(budget: float) -> int:
    """Draws needed so the worst-case LW error bound fits ``budget``."""
    if budget <= 0.0:
        return MAX_SAMPLES + 1          # unattainable: exact only
    return max(MIN_SAMPLES, int(math.ceil(0.25 / (budget * budget))))


@dataclass(frozen=True)
class PlanCandidate:
    """One priced way to answer a query."""

    backend: str
    work_units: float                   # structural cost driver
    predicted_seconds: float            # work_units × calibrated coefficient
    predicted_error: float              # a-priori bound (0.0 for exact)
    samples: int = 0                    # sampling backend only


@dataclass
class RoutedAnswer:
    """A posterior plus the route that produced it and its error bound."""

    target: str
    evidence: Dict[str, str]
    posterior: Dict[str, float]
    backend: str
    estimated_error: float
    error_budget: float
    predicted_seconds: float
    observed_seconds: float
    attempts: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "evidence": dict(self.evidence),
            "posterior": dict(self.posterior),
            "backend": self.backend,
            "estimated_error": self.estimated_error,
            "error_budget": self.error_budget,
            "predicted_seconds": self.predicted_seconds,
            "observed_seconds": self.observed_seconds,
            "attempts": list(self.attempts),
        }


class CostModel:
    """EWMA seconds-per-work-unit, per ``(backend, plan fingerprint)``.

    The fingerprint is the query's *shape* — target plus evidence
    variable set — so structurally identical queries share a
    coefficient while differently-shaped plans calibrate independently.
    A backend-level default (the latest observation folded across
    fingerprints) seeds unseen shapes, and the structural priors in
    :data:`INITIAL_COST` seed unseen backends.
    """

    def __init__(self):
        self._coeff: Dict[Tuple[str, Tuple], float] = {}
        self._default: Dict[str, float] = dict(INITIAL_COST)
        self.observations = 0

    def seconds_per_unit(self, backend: str, fingerprint: Tuple) -> float:
        coeff = self._coeff.get((backend, fingerprint))
        if coeff is not None:
            return coeff
        return self._default.get(backend, 1e-6)

    def predict(self, backend: str, fingerprint: Tuple,
                work_units: float) -> float:
        return max(work_units, 1.0) * self.seconds_per_unit(backend,
                                                            fingerprint)

    def observe(self, backend: str, fingerprint: Tuple, work_units: float,
                seconds: float) -> None:
        """Fold one observed plan latency into the EWMA coefficients."""
        if seconds < 0.0:
            return
        per_unit = seconds / max(work_units, 1.0)
        key = (backend, fingerprint)
        prior = self._coeff.get(key)
        self._coeff[key] = (per_unit if prior is None else
                            (1.0 - COST_ALPHA) * prior
                            + COST_ALPHA * per_unit)
        base = self._default.get(backend, per_unit)
        self._default[backend] = ((1.0 - COST_ALPHA) * base
                                  + COST_ALPHA * per_unit)
        self.observations += 1
        PLANNER_COST_COEFF.set(self._default[backend], backend=backend)

    def snapshot(self) -> Dict[str, object]:
        """Exported through :meth:`QueryPlanner.snapshot` / telemetry."""
        return {
            "observations": self.observations,
            "seconds_per_unit": dict(sorted(self._default.items())),
            "fingerprints": len(self._coeff),
        }


class QueryPlanner:
    """Routes queries over one :class:`CompiledNetwork`'s backends.

    Obtained (and persisted) via
    :meth:`~repro.bayesnet.engine.CompiledNetwork.planner`; the engine's
    ``query(..., route=True)`` / ``query_batch(..., route=True)`` opt-in
    paths delegate here.  ``seed`` fixes the sampling backend's RNG so
    routed sweeps are reproducible given a deterministic decision
    sequence (``frozen=True``).
    """

    def __init__(self, engine, *, seed: int = 0, clock=None):
        self._engine = engine
        self.cost_model = CostModel()
        self._rng = np.random.default_rng(seed)
        self._clock = clock or SystemClock()
        self._routes: Dict[str, int] = {}
        self._fallbacks = 0
        self._failures: Dict[str, int] = {}

    # -- candidate enumeration -------------------------------------------------

    def _fingerprint(self, target: str,
                     evidence: Mapping[str, str]) -> Tuple:
        return (target, tuple(sorted(evidence)))

    def candidates(self, target: str, evidence: Mapping[str, str],
                   error_budget: float = 0.0) -> List[PlanCandidate]:
        """Admissible plans, cheapest (predicted) first.

        Only plans whose *predicted* error fits the budget appear; the
        cache is not listed (it is probed unconditionally before any
        plan runs, being both free and exact).
        """
        engine = self._engine
        engine._refresh()
        fp = self._fingerprint(target, evidence)
        out: List[PlanCandidate] = []

        # Exact slice / stacked substrate: volume of the (target ∪
        # evidence) joint table, or the full plan cost when the table
        # will not materialize.
        entries = 1.0
        for name in set([target]) | set(evidence):
            entries *= engine._variable(name).cardinality
        from repro.bayesnet.engine import MAX_BATCH_TABLE_ENTRIES
        exact_units = (entries if entries <= MAX_BATCH_TABLE_ENTRIES
                       else engine.plan_cost())
        out.append(PlanCandidate(
            BACKEND_EXACT, exact_units,
            self.cost_model.predict(BACKEND_EXACT, fp, exact_units), 0.0))

        # Incremental junction tree: predicted from the per-clique
        # evidence diff against the tree's current calibration state.
        jt = engine._junction_tree()
        dirty_cliques, messages = jt.predict_recalibration(evidence)
        mean_clique = engine.plan_cost() / max(len(jt.cliques), 1)
        jt_units = (messages + dirty_cliques + 1.0) * mean_clique
        out.append(PlanCandidate(
            BACKEND_JT, jt_units,
            self.cost_model.predict(BACKEND_JT, fp, jt_units), 0.0))

        # Cold full calibration: the whole clique-table volume.  Same
        # execution path as the incremental plan but priced at full
        # cost — the honest candidate when the tree state is unknown
        # (e.g. a fresh fork) and the baseline the benchmark pins.
        full_units = engine.plan_cost()
        out.append(PlanCandidate(
            BACKEND_JT_FULL, full_units,
            self.cost_model.predict(BACKEND_JT_FULL, fp, full_units), 0.0))

        # Vectorized likelihood weighting, sized to the error budget.
        n = samples_for_budget(error_budget)
        if 0 < n <= MAX_SAMPLES:
            bound = sampling_error_bound(n)
            if bound <= error_budget:
                out.append(PlanCandidate(
                    BACKEND_SAMPLING, float(n),
                    self.cost_model.predict(BACKEND_SAMPLING, fp, float(n)),
                    bound, samples=n))

        out.sort(key=lambda c: (c.predicted_seconds,
                                _TIE_ORDER.get(c.backend, 9)))
        return out

    # -- execution -------------------------------------------------------------

    def route(self, target: str,
              evidence: Optional[Mapping[str, str]] = None, *,
              error_budget: float = 0.0,
              deadline_seconds: Optional[float] = None,
              frozen: bool = False) -> RoutedAnswer:
        """Answer one query with the cheapest admissible plan.

        Falls to the next candidate on :class:`EngineError`, on the
        deadline expiring mid-plan (elapsed time stays charged), and on
        a sampling answer whose measured error violates the budget.
        Raises the last failure when every candidate fails.
        """
        evidence = dict(evidence or {})
        error_budget = float(error_budget)
        if error_budget < 0.0:
            raise EngineError(
                f"error_budget must be non-negative, got {error_budget}")
        t0 = self._clock.wall()
        attempts: List[str] = []
        fp = self._fingerprint(target, evidence)

        cached = self._engine.cached_posterior(target, evidence)
        if cached is not None:
            attempts.append("cache:hit")
            answer = RoutedAnswer(
                target=target, evidence=evidence, posterior=cached,
                backend=BACKEND_CACHE, estimated_error=0.0,
                error_budget=error_budget,
                predicted_seconds=self.cost_model.predict(
                    BACKEND_CACHE, fp, 1.0),
                observed_seconds=self._clock.wall() - t0,
                attempts=tuple(attempts))
            self._note_route(BACKEND_CACHE, "ok", fp, 1.0,
                             answer.observed_seconds, frozen)
            return answer

        failure: Optional[Exception] = None
        plans = self.candidates(target, evidence, error_budget)
        for plan in plans:
            elapsed = self._clock.wall() - t0
            remaining = (None if deadline_seconds is None
                         else deadline_seconds - elapsed)
            if remaining is not None and remaining <= 0.0:
                failure = DeadlineExceededError(
                    f"routing deadline {deadline_seconds:.4f}s exhausted "
                    f"after {elapsed:.4f}s (attempts: {attempts})")
                attempts.append(f"{plan.backend}:deadline")
                break
            plan_t0 = self._clock.wall()
            try:
                posterior, error = self._execute(plan, target, evidence,
                                                 remaining)
            # EngineError (backend fault) and DeadlineExceededError
            # (budget expired mid-plan) fall to the next candidate; any
            # other InferenceError is a model-level answer (e.g.
            # probability-0 evidence) no backend can improve — propagate.
            except (EngineError, DeadlineExceededError) as exc:
                failure = exc
                kind = ("deadline"
                        if isinstance(exc, DeadlineExceededError)
                        else "engine-error")
                attempts.append(f"{plan.backend}:{kind}")
                self._failures[plan.backend] = \
                    self._failures.get(plan.backend, 0) + 1
                self._note_route(plan.backend, "fallback", fp,
                                 plan.work_units,
                                 self._clock.wall() - plan_t0, frozen)
                continue
            observed = self._clock.wall() - plan_t0
            if error > error_budget and plans[-1] is not plan:
                # Measured ESS error violated the budget: fall to the
                # next (exact) candidate rather than report a bound we
                # cannot honour.
                attempts.append(f"{plan.backend}:budget")
                self._note_route(plan.backend, "fallback", fp,
                                 plan.work_units, observed, frozen)
                continue
            attempts.append(f"{plan.backend}:ok")
            self._note_route(plan.backend, "ok", fp, plan.work_units,
                             observed, frozen)
            return RoutedAnswer(
                target=target, evidence=evidence, posterior=posterior,
                backend=plan.backend, estimated_error=error,
                error_budget=error_budget,
                predicted_seconds=plan.predicted_seconds,
                observed_seconds=self._clock.wall() - t0,
                attempts=tuple(attempts))
        raise failure if failure is not None else EngineError(
            f"no plan candidates for {target!r} | {evidence!r}")

    def route_batch(self, target: str,
                    evidence_rows: Sequence[Mapping[str, str]], *,
                    error_budget: float = 0.0,
                    frozen: bool = False) -> List[RoutedAnswer]:
        """Route a whole evidence block.

        A zero budget (or a batch the stacked substrate beats sampling
        on) runs as ONE :meth:`CompiledNetwork.query_batch` call — the
        batched backend amortizes a single calibration over all rows,
        which per row is almost always the cheapest admissible plan.
        Non-zero budgets fall back to per-row routing only when the
        batched plan's predicted per-row cost loses to sampling.
        """
        rows = [dict(r) for r in evidence_rows]
        error_budget = float(error_budget)
        if error_budget < 0.0:
            raise EngineError(
                f"error_budget must be non-negative, got {error_budget}")
        if not rows:
            return []
        fp = ("batch", target, len(rows))
        batched_units = self._engine.plan_cost() + float(len(rows))
        batched_cost = self.cost_model.predict("batched", fp, batched_units)
        per_row_sampling = None
        n = samples_for_budget(error_budget)
        if 0 < n <= MAX_SAMPLES and sampling_error_bound(n) <= error_budget:
            per_row_sampling = self.cost_model.predict(
                BACKEND_SAMPLING, (target, ()), float(n)) * len(rows)
        if per_row_sampling is not None and per_row_sampling < batched_cost:
            return [self.route(target, row, error_budget=error_budget,
                               frozen=frozen) for row in rows]
        t0 = self._clock.wall()
        posts = self._engine.query_batch(target, rows)
        observed = self._clock.wall() - t0
        self._note_route("batched", "ok", fp, batched_units, observed,
                         frozen)
        per_row = observed / len(rows)
        return [RoutedAnswer(
            target=target, evidence=row, posterior=post,
            backend="batched", estimated_error=0.0,
            error_budget=error_budget,
            predicted_seconds=batched_cost / len(rows),
            observed_seconds=per_row, attempts=("batched:ok",))
            for row, post in zip(rows, posts)]

    def _execute(self, plan: PlanCandidate, target: str,
                 evidence: Dict[str, str],
                 remaining: Optional[float]
                 ) -> Tuple[Dict[str, float], float]:
        """Run one plan; returns (posterior, measured error bound)."""
        if plan.backend == BACKEND_EXACT:
            return self._engine.query(target, evidence), 0.0
        if plan.backend in (BACKEND_JT, BACKEND_JT_FULL):
            return self._engine.marginals(evidence)[target], 0.0
        if plan.backend == BACKEND_SAMPLING:
            return self._exec_sampling(target, evidence, plan.samples,
                                       remaining)
        raise EngineError(f"unknown plan backend {plan.backend!r}")

    def _exec_sampling(self, target: str, evidence: Dict[str, str],
                       n: int, remaining: Optional[float]
                       ) -> Tuple[Dict[str, float], float]:
        """Chunked vectorized likelihood weighting with deadline checks.

        Drawing in :data:`SAMPLE_CHUNK` blocks lets an expiring deadline
        interrupt the plan *mid-flight*; the partial work is abandoned
        (a short draw would report a bound looser than promised) and the
        elapsed time stays charged against the caller's deadline.
        """
        try:
            sampler = self._engine.network.sampler()
            qcol = sampler.column(target)
            states = self._engine._variable(target).states
        except Exception as exc:
            raise EngineError(f"sampling backend unavailable: {exc}") from exc
        t0 = self._clock.wall()
        totals = np.zeros(len(states))
        weight_sum = 0.0
        weight_sq = 0.0
        drawn = 0
        while drawn < n:
            if remaining is not None \
                    and self._clock.wall() - t0 >= remaining:
                raise DeadlineExceededError(
                    f"sampling plan interrupted after {drawn}/{n} draws")
            chunk = min(SAMPLE_CHUNK, n - drawn)
            try:
                matrix, weights = sampler.likelihood_matrix(
                    self._rng, evidence, chunk)
            except InferenceError:
                raise
            except Exception as exc:
                raise EngineError(
                    f"sampling backend failed: {exc}") from exc
            totals += np.bincount(matrix[:, qcol], weights=weights,
                                  minlength=len(states))
            weight_sum += float(weights.sum())
            weight_sq += float(np.square(weights).sum())
            drawn += chunk
        if weight_sum <= 0.0:
            raise InferenceError(
                f"evidence {evidence!r} has probability 0 under the model — "
                "posterior is undefined")
        probs = totals / weight_sum
        ess = (weight_sum * weight_sum / weight_sq if weight_sq > 0.0
               else float(n))
        error = float(np.sqrt(np.max(probs * (1.0 - probs))
                              / max(ess, 1.0)))
        return ({s: float(probs[i]) for i, s in enumerate(states)}, error)

    # -- bookkeeping -----------------------------------------------------------

    def _note_route(self, backend: str, outcome: str, fingerprint: Tuple,
                    work_units: float, seconds: float,
                    frozen: bool) -> None:
        self._routes[backend] = self._routes.get(backend, 0) + 1
        if outcome == "fallback":
            self._fallbacks += 1
        PLANNER_ROUTES.inc(backend=backend, outcome=outcome)
        if not frozen:
            self.cost_model.observe(backend, fingerprint, work_units,
                                    seconds)

    def snapshot(self) -> Dict[str, object]:
        """Routing statistics + the calibrated cost model (telemetry)."""
        return {
            "routes": dict(sorted(self._routes.items())),
            "fallbacks": self._fallbacks,
            "failures": dict(sorted(self._failures.items())),
            "cost_model": self.cost_model.snapshot(),
        }

    def __repr__(self) -> str:
        total = sum(self._routes.values())
        return (f"QueryPlanner(routes={total}, "
                f"fallbacks={self._fallbacks}, "
                f"observations={self.cost_model.observations})")
