"""Discrete random variables for the Bayesian-network engine."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import GraphError


class Variable:
    """A named discrete random variable with an ordered, finite state set.

    Instances are immutable and hashable; identity is by (name, states) so
    two networks can safely share variable objects.
    """

    __slots__ = ("_name", "_states")

    def __init__(self, name: str, states: Sequence[str]):
        if not name:
            raise GraphError("variable name must be non-empty")
        states = tuple(str(s) for s in states)
        if len(states) < 2:
            raise GraphError(f"variable {name!r} needs at least 2 states, got {states}")
        if len(set(states)) != len(states):
            raise GraphError(f"variable {name!r} has duplicate states: {states}")
        self._name = str(name)
        self._states = states

    @property
    def name(self) -> str:
        return self._name

    @property
    def states(self) -> Tuple[str, ...]:
        return self._states

    @property
    def cardinality(self) -> int:
        return len(self._states)

    def index_of(self, state: str) -> int:
        """Index of a state; raises for states outside the ontology."""
        try:
            return self._states.index(state)
        except ValueError:
            raise GraphError(
                f"state {state!r} is not in the ontology of variable "
                f"{self._name!r} (states: {list(self._states)})") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self._name == other._name and self._states == other._states

    def __hash__(self) -> int:
        return hash((self._name, self._states))

    def __repr__(self) -> str:
        return f"Variable({self._name!r}, states={list(self._states)})"


def boolean_variable(name: str, true_state: str = "true",
                     false_state: str = "false") -> Variable:
    """Convenience constructor for two-state variables (fault-tree events)."""
    return Variable(name, [false_state, true_state])
