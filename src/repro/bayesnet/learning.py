"""CPT parameter learning from complete categorical data.

Two estimators:

- :func:`fit_cpts_mle` — maximum likelihood (relative frequencies), the
  frequentist route with *implicit* epistemic uncertainty;
- :func:`bayesian_update_cpts` — Dirichlet-conjugate posteriors per parent
  configuration, which carry epistemic uncertainty *explicitly* as
  credible intervals (paper §III-B: credibility grows with observations).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError
from repro.probability.distributions import Beta, Dirichlet


def _count_table(child: Variable, parents: Sequence[Variable],
                 records: Sequence[Mapping[str, str]]) -> np.ndarray:
    shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
    counts = np.zeros(shape)
    for rec in records:
        try:
            idx = tuple(p.index_of(rec[p.name]) for p in parents)
            c = child.index_of(rec[child.name])
        except KeyError as exc:
            raise InferenceError(f"record missing variable {exc}") from None
        counts[idx + (c,)] += 1.0
    return counts


def fit_cpt_mle(child: Variable, parents: Sequence[Variable],
                records: Sequence[Mapping[str, str]],
                pseudocount: float = 0.0) -> CPT:
    """Relative-frequency CPT; optional Laplace smoothing via pseudocount.

    Parent configurations never observed fall back to a uniform row (with
    ``pseudocount == 0`` they would otherwise be undefined).
    """
    counts = _count_table(child, parents, records) + float(pseudocount)
    sums = counts.sum(axis=-1, keepdims=True)
    uniform = np.full(child.cardinality, 1.0 / child.cardinality)
    table = np.where(sums > 0.0, counts / np.where(sums == 0.0, 1.0, sums), uniform)
    return CPT(child, parents, table)


def fit_cpts_mle(network: BayesianNetwork,
                 records: Sequence[Mapping[str, str]],
                 pseudocount: float = 0.0) -> BayesianNetwork:
    """Re-fit every CPT of ``network`` from data, keeping the structure."""
    fitted = BayesianNetwork(network.name + "-mle")
    for name in network.dag.topological_order():
        old = network.cpt(name)
        fitted.add_cpt(fit_cpt_mle(old.child, old.parents, records, pseudocount))
    return fitted


class DirichletCPT:
    """A CPT with a Dirichlet posterior per parent configuration.

    The explicit-epistemic counterpart of :class:`~repro.bayesnet.cpt.CPT`:
    each row is a Dirichlet whose mean gives a point CPT and whose marginals
    give credible intervals per entry.
    """

    def __init__(self, child: Variable, parents: Sequence[Variable],
                 prior_strength: float = 1.0):
        if prior_strength <= 0:
            raise InferenceError("prior_strength must be positive")
        self.child = child
        self.parents = tuple(parents)
        self._rows: Dict[Tuple[str, ...], Dirichlet] = {}
        self._prior_strength = prior_strength
        for idx in np.ndindex(*(p.cardinality for p in self.parents)):
            key = tuple(p.states[i] for p, i in zip(self.parents, idx))
            self._rows[key] = Dirichlet(
                {s: prior_strength for s in child.states})

    def observe(self, parent_states: Tuple[str, ...], child_state: str,
                count: int = 1) -> None:
        if parent_states not in self._rows:
            raise InferenceError(
                f"unknown parent configuration {parent_states!r}")
        self._rows[parent_states] = self._rows[parent_states].updated(
            {child_state: count})

    def observe_records(self, records: Sequence[Mapping[str, str]]) -> None:
        for rec in records:
            key = tuple(rec[p.name] for p in self.parents)
            self.observe(key, rec[self.child.name])

    def posterior_row(self, parent_states: Tuple[str, ...]) -> Dirichlet:
        return self._rows[parent_states]

    def mean_cpt(self) -> CPT:
        """Point CPT from the posterior means."""
        shape = tuple(p.cardinality for p in self.parents) + (self.child.cardinality,)
        table = np.zeros(shape)
        for idx in np.ndindex(*shape[:-1]):
            key = tuple(p.states[i] for p, i in zip(self.parents, idx))
            mean = self._rows[key].mean().probabilities
            for j, s in enumerate(self.child.states):
                table[idx + (j,)] = mean[s]
        return CPT(self.child, self.parents, table)

    def credible_interval(self, parent_states: Tuple[str, ...],
                          child_state: str, mass: float = 0.95) -> Tuple[float, float]:
        """Equal-tailed credible interval for one CPT entry."""
        marginal: Beta = self._rows[parent_states].marginal(child_state)
        tail = (1.0 - mass) / 2.0
        return float(marginal.ppf(tail)), float(marginal.ppf(1.0 - tail))

    def epistemic_uncertainty(self) -> float:
        """Mean per-row epistemic scalar (shrinks with data)."""
        gaps = [row.expected_entropy_gap() for row in self._rows.values()]
        return float(np.mean(gaps))

    def __repr__(self) -> str:
        return (f"DirichletCPT({self.child.name!r} | "
                f"{[p.name for p in self.parents]}, rows={len(self._rows)})")


def bayesian_update_cpts(network: BayesianNetwork,
                         records: Sequence[Mapping[str, str]],
                         prior_strength: float = 1.0) -> Dict[str, DirichletCPT]:
    """Dirichlet posteriors for every node's CPT given complete records."""
    out: Dict[str, DirichletCPT] = {}
    for name in network.dag.topological_order():
        old = network.cpt(name)
        dc = DirichletCPT(old.child, old.parents, prior_strength)
        dc.observe_records(records)
        out[name] = dc
    return out


def log_likelihood(network: BayesianNetwork,
                   records: Sequence[Mapping[str, str]]) -> float:
    """Log likelihood of complete records under the network."""
    total = 0.0
    for rec in records:
        for name in network.dag.topological_order():
            cpt = network.cpt(name)
            parent_states = tuple(rec[p] for p in cpt.parent_names)
            p = cpt.prob(rec[name], parent_states)
            if p <= 0.0:
                return float("-inf")
            total += float(np.log(p))
    return total
