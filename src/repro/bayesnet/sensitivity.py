"""Sensitivity analysis of Bayesian-network posteriors to CPT parameters.

Elicited CPT entries (like the paper's Table I) are epistemically
uncertain.  One-way sensitivity analysis answers "how wrong can this
entry be before the conclusion changes?": the posterior of any query is a
ratio of two linear functions of a single CPT parameter (Castillo et al. /
Coupe & van der Gaag), so the full sensitivity function can be recovered
from three evaluations, and tornado-style rankings follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.engine import CompiledNetwork, InferenceEngine
from repro.bayesnet.network import BayesianNetwork
from repro.errors import InferenceError
from repro.parallel import ParallelExecutor
from repro.telemetry import tracing


@dataclass(frozen=True)
class SensitivityFunction:
    """Posterior as a function of one CPT entry: f(x) = (a x + b)/(c x + d).

    The varied entry is co-varied proportionally with its row siblings so
    the row stays a distribution (proportional co-variation, the standard
    scheme).
    """

    a: float
    b: float
    c: float
    d: float
    x0: float  # the entry's original value

    def __call__(self, x: float) -> float:
        denominator = self.c * x + self.d
        if abs(denominator) < 1e-300:
            raise InferenceError("sensitivity function undefined at this value")
        return (self.a * x + self.b) / denominator

    def derivative_at(self, x: float) -> float:
        denominator = (self.c * x + self.d) ** 2
        return (self.a * self.d - self.b * self.c) / denominator

    def range_over(self, lo: float, hi: float, n: int = 101
                   ) -> Tuple[float, float]:
        """Min/max of the posterior as the entry varies in [lo, hi]."""
        xs = np.linspace(lo, hi, n)
        ys = np.array([self(float(x)) for x in xs])
        return float(ys.min()), float(ys.max())


def _entry_cpt(cpt: CPT, parent_states: Tuple[str, ...], child_state: str,
               value: float) -> CPT:
    """Copy of one CPT with one entry set (proportional co-variation)."""
    if not 0.0 <= value <= 1.0:
        raise InferenceError("CPT entries must be in [0, 1]")
    row = cpt.row(parent_states)
    if child_state not in row:
        raise InferenceError(f"unknown child state {child_state!r}")
    old = row[child_state]
    rest = 1.0 - old
    new_row = {}
    for state, p in row.items():
        if state == child_state:
            new_row[state] = value
        elif rest <= 1e-12:
            new_row[state] = (1.0 - value) / (len(row) - 1)
        else:
            new_row[state] = p * (1.0 - value) / rest
    table = cpt.table.copy()
    idx = tuple(p.index_of(s) for p, s in zip(cpt.parents, parent_states))
    for i, state in enumerate(cpt.child.states):
        table[idx + (i,)] = new_row[state]
    return CPT(cpt.child, cpt.parents, table)


def _trial_copy(network: BayesianNetwork) -> BayesianNetwork:
    """A same-structure copy whose CPTs can be swapped probe by probe.

    One copy serves *all* probes of a sensitivity sweep: ``replace_cpt``
    is a parameter-only mutation, so the trial's compiled engine keeps its
    cached elimination orders across the entire sweep.
    """
    out = BayesianNetwork(network.name + "-sens")
    for name in network.dag.topological_order():
        out.add_cpt(network.cpt(name))
    return out


def _network_with_entry(network: BayesianNetwork, node: str,
                        parent_states: Tuple[str, ...], child_state: str,
                        value: float) -> BayesianNetwork:
    """Copy of the network with one CPT entry set (proportional co-variation)."""
    out = _trial_copy(network)
    out.replace_cpt(_entry_cpt(network.cpt(node), parent_states, child_state,
                               value))
    return out


def _fit_on_trial(trial: BayesianNetwork, engine: InferenceEngine,
                  base_cpt: CPT, parent_states: Tuple[str, ...],
                  child_state: str, query: str, query_state: str,
                  evidence: Mapping[str, str]) -> SensitivityFunction:
    """Fit one sensitivity function by probing a reusable trial network.

    The trial's engine keeps its compiled plans across probes (only CPT
    values change), so a full tornado sweep compiles exactly once.
    """
    x0 = base_cpt.prob(child_state, parent_states)
    probes = [0.2, 0.8]
    numerators, denominators = [], []
    joint_evidence = dict(evidence)
    joint_evidence[query] = query_state
    for x in probes:
        trial.replace_cpt(_entry_cpt(base_cpt, parent_states, child_state, x))
        numerators.append(engine.probability_of_evidence(joint_evidence))
        denominators.append(engine.probability_of_evidence(evidence)
                            if evidence else 1.0)
    trial.replace_cpt(base_cpt)  # leave the trial pristine for the next entry
    (x1, x2) = probes
    a = (numerators[1] - numerators[0]) / (x2 - x1)
    b = numerators[0] - a * x1
    c = (denominators[1] - denominators[0]) / (x2 - x1)
    d = denominators[0] - c * x1
    return SensitivityFunction(a=a, b=b, c=c, d=d, x0=x0)


def sensitivity_function(network: BayesianNetwork, *,
                         node: str, parent_states: Tuple[str, ...],
                         child_state: str,
                         query: str, query_state: str,
                         evidence: Optional[Mapping[str, str]] = None
                         ) -> SensitivityFunction:
    """Fit the exact rational sensitivity function from three evaluations.

    P(query, evidence) and P(evidence) are each linear in the varied entry
    (with proportional co-variation), so the posterior is (a x + b) /
    (c x + d); two probing values per linear form determine it.
    """
    trial = _trial_copy(network)
    with tracing.span("sensitivity.function", node=node,
                      child_state=child_state, query=query):
        return _fit_on_trial(trial, trial.engine(), network.cpt(node),
                             parent_states, child_state, query, query_state,
                             dict(evidence or {}))


@dataclass(frozen=True)
class TornadoEntry:
    node: str
    parent_states: Tuple[str, ...]
    child_state: str
    baseline: float
    low: float
    high: float

    @property
    def swing(self) -> float:
        return self.high - self.low


def _tornado_chunk(context: Tuple[Sequence[CPT], str, str, str,
                                  Dict[str, str], float, float,
                                  Optional[int]],
                   specs: Sequence[Tuple[str, Tuple[str, ...], str]]
                   ) -> List[TornadoEntry]:
    """Fit one chunk of tornado entries on a private trial network.

    ``context`` is the once-per-worker payload of
    :meth:`~repro.parallel.ParallelExecutor.map_with_context` — plain
    CPTs (not a network with compiled caches), whose tables travel to
    process workers as read-only shared-memory arena views instead of
    per-chunk pickles.  Each chunk still builds its **own** trial
    network and engine (trial CPTs are swapped probe by probe, so chunks
    must never share one); only the immutable base tables are shared.
    Every entry's fit is an independent exact computation, so the chunk
    geometry cannot change any number.
    """
    (cpts, name, query, query_state, evidence, relative_band, baseline,
     engine_cache_size) = context
    trial = BayesianNetwork(name + "-sens")
    for cpt in cpts:
        trial.add_cpt(cpt)
    engine = CompiledNetwork(trial, cache_size=engine_cache_size)
    by_node = {cpt.child.name: cpt for cpt in cpts}
    entries: List[TornadoEntry] = []
    for node, config, child_state in specs:
        cpt = by_node[node]
        fn = _fit_on_trial(trial, engine, cpt, config, child_state, query,
                           query_state, evidence)
        lo_x = max(0.0, fn.x0 * (1.0 - relative_band))
        hi_x = min(1.0, fn.x0 * (1.0 + relative_band))
        lo, hi = fn.range_over(lo_x, hi_x)
        entries.append(TornadoEntry(
            node=node, parent_states=config, child_state=child_state,
            baseline=baseline, low=lo, high=hi))
    return entries


def tornado_analysis(network: BayesianNetwork, *, query: str,
                     query_state: str,
                     evidence: Optional[Mapping[str, str]] = None,
                     relative_band: float = 0.5,
                     min_entry: float = 1e-6,
                     executor: Optional[ParallelExecutor] = None,
                     engine_cache_size: Optional[int] = None
                     ) -> List[TornadoEntry]:
    """Rank all CPT entries by the posterior swing they can cause.

    Each entry x0 is varied over [x0 (1-band), min(1, x0 (1+band))]; the
    induced posterior range is the tornado bar.  Large-swing entries are
    where epistemic *removal* (better elicitation/data) matters most.

    ``executor`` fans the entry sweep out in chunks, each fitted on its
    own trial network (trial engines are mutated probe by probe, so
    chunks must not share one).  Every fit is exact arithmetic and the
    final ranking is re-sorted, so results are identical on every
    backend at every width.  ``engine_cache_size`` bounds each trial
    engine's evidence-keyed posterior cache (``None`` keeps the engine
    default) — results are identical at any size, cache on or off.
    """
    if not 0.0 < relative_band <= 1.0:
        raise InferenceError("relative_band must be in (0, 1]")
    evidence = dict(evidence or {})
    executor = executor or ParallelExecutor()
    with tracing.span("sensitivity.tornado", query=query,
                      query_state=query_state) as sp:
        baseline = network.engine().query(query, evidence)[query_state]
        order = network.dag.topological_order()
        specs: List[Tuple[str, Tuple[str, ...], str]] = []
        for name in order:
            cpt = network.cpt(name)
            parent_state_lists = [p.states for p in cpt.parents]
            configs = [()]
            for states in parent_state_lists:
                configs = [c + (s,) for c in configs for s in states]
            for config in configs:
                for child_state in cpt.child.states:
                    x0 = cpt.prob(child_state, config)
                    if x0 < min_entry or x0 > 1.0 - min_entry:
                        continue
                    specs.append((name, config, child_state))
        context = ([network.cpt(name) for name in order],
                   network.name, query, query_state, evidence,
                   relative_band, baseline, engine_cache_size)
        entries: List[TornadoEntry] = executor.map_with_context(
            _tornado_chunk, context, specs)
        sp.set_attribute("n_entries", len(entries))
    return sorted(entries, key=lambda e: -e.swing)
