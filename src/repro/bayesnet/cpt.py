"""Conditional probability tables P(child | parents).

A CPT is the unit of elicitation in the paper's §V safety analysis: the
perception-chain CPT of Table I is literally an instance of this class (see
:func:`repro.perception.chain.table1_cpt`).  CPTs validate normalization
per parent configuration and convert to :class:`~repro.bayesnet.factor.Factor`
objects for inference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.factor import Factor
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError


class CPT:
    """P(child | parent_1, ..., parent_k) as a dense table.

    The table axes are ordered (parent_1, ..., parent_k, child); each slice
    over the child axis must be a probability vector.
    """

    def __init__(self, child: Variable, parents: Sequence[Variable],
                 table: np.ndarray, *, atol: float = 1e-6):
        self.child = child
        self.parents: Tuple[Variable, ...] = tuple(parents)
        names = [v.name for v in self.parents] + [child.name]
        if len(set(names)) != len(names):
            raise InferenceError(f"duplicate variables in CPT: {names}")
        table = np.asarray(table, dtype=float)
        expected = tuple(p.cardinality for p in self.parents) + (child.cardinality,)
        if table.shape != expected:
            raise InferenceError(
                f"CPT for {child.name!r} has shape {table.shape}, expected {expected}")
        if np.any(table < -atol):
            raise InferenceError(f"CPT for {child.name!r} has negative entries")
        sums = table.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=max(atol, 1e-6)):
            bad = np.argwhere(~np.isclose(sums, 1.0, atol=max(atol, 1e-6)))
            raise InferenceError(
                f"CPT for {child.name!r} does not normalize for parent "
                f"configurations {bad[:5].tolist()} (sums {sums.ravel()[:5]})")
        table = np.clip(table, 0.0, 1.0)
        self.table = table / table.sum(axis=-1, keepdims=True)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(cls, child: Variable, parents: Sequence[Variable],
                  rows: Mapping[Tuple[str, ...], Mapping[str, float]]) -> "CPT":
        """Build from {parent_states_tuple: {child_state: prob}}.

        For a root node (no parents) use the single key ``()``.
        """
        parents = tuple(parents)
        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        table = np.full(shape, np.nan)
        for key, dist in rows.items():
            if len(key) != len(parents):
                raise InferenceError(
                    f"row key {key!r} does not match parents "
                    f"{[p.name for p in parents]}")
            idx = tuple(p.index_of(s) for p, s in zip(parents, key))
            for state, prob in dist.items():
                table[idx + (child.index_of(state),)] = float(prob)
        if np.any(np.isnan(table)):
            raise InferenceError(
                f"CPT for {child.name!r} is missing entries — every parent "
                "configuration and child state must be specified")
        return cls(child, parents, table)

    @classmethod
    def prior(cls, child: Variable, distribution: Mapping[str, float]) -> "CPT":
        """Root-node CPT from a marginal distribution."""
        return cls.from_dict(child, (), {(): dict(distribution)})

    @classmethod
    def uniform(cls, child: Variable, parents: Sequence[Variable] = ()) -> "CPT":
        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        return cls(child, parents, np.full(shape, 1.0 / child.cardinality))

    @classmethod
    def deterministic(cls, child: Variable, parents: Sequence[Variable],
                      function) -> "CPT":
        """CPT of a deterministic function child_state = f(*parent_states).

        Used by the FTA->BN conversion: Boolean gates are deterministic
        nodes.
        """
        parents = tuple(parents)
        shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
        table = np.zeros(shape)
        for idx in np.ndindex(*shape[:-1]):
            states = tuple(p.states[i] for p, i in zip(parents, idx))
            out_state = function(*states)
            table[idx + (child.index_of(out_state),)] = 1.0
        return cls(child, parents, table)

    # -- access ---------------------------------------------------------------

    @property
    def parent_names(self) -> List[str]:
        return [p.name for p in self.parents]

    def row(self, parent_states: Tuple[str, ...] = ()) -> Dict[str, float]:
        """Conditional distribution of the child at one parent configuration."""
        if len(parent_states) != len(self.parents):
            raise InferenceError(
                f"expected {len(self.parents)} parent states, got {parent_states!r}")
        idx = tuple(p.index_of(s) for p, s in zip(self.parents, parent_states))
        return {s: float(self.table[idx + (i,)])
                for i, s in enumerate(self.child.states)}

    def prob(self, child_state: str, parent_states: Tuple[str, ...] = ()) -> float:
        return self.row(parent_states)[child_state]

    def n_parameters(self) -> int:
        """Free parameters: (|child| - 1) per parent configuration.

        The paper notes CPT size "grows exponentially with the number of
        parent nodes and their states" — this method is that count.
        """
        n_configs = 1
        for p in self.parents:
            n_configs *= p.cardinality
        return n_configs * (self.child.cardinality - 1)

    def to_factor(self) -> Factor:
        return Factor(list(self.parents) + [self.child], self.table)

    def sample_child(self, rng: np.random.Generator,
                     parent_states: Tuple[str, ...] = ()) -> str:
        row = self.row(parent_states)
        states = list(row)
        probs = np.array([row[s] for s in states])
        return states[int(rng.choice(len(states), p=probs / probs.sum()))]

    def __repr__(self) -> str:
        return (f"CPT({self.child.name!r} | {self.parent_names}, "
                f"params={self.n_parameters()})")
