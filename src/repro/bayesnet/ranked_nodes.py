"""Ranked nodes (Fenton, Neil & Caballero 2007) for tractable CPT elicitation.

The paper warns (§V-B) that "the number of parameters that need to be
elicited in the CPT grows exponentially with the number of parent nodes and
their states" and points to ranked nodes (ref. [37]) as a remedy.  A ranked
node maps ordinal states onto the unit interval and generates its CPT from
a weighted mean of parent values plus a truncated-normal spread — a handful
of weights instead of exponentially many probabilities.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError
from repro.probability.distributions import normal_cdf


class RankedNode:
    """An ordinal variable whose states map to equal sub-intervals of [0, 1].

    A 5-state ranked node ("very low" .. "very high") has state midpoints
    0.1, 0.3, 0.5, 0.7, 0.9 and state cells [0, 0.2), [0.2, 0.4), ...
    """

    def __init__(self, variable: Variable):
        self.variable = variable

    @property
    def n(self) -> int:
        return self.variable.cardinality

    def midpoint(self, state: str) -> float:
        i = self.variable.index_of(state)
        return (i + 0.5) / self.n

    def cell(self, index: int) -> Tuple[float, float]:
        if not 0 <= index < self.n:
            raise InferenceError(f"state index {index} out of range")
        return index / self.n, (index + 1) / self.n

    def discretize(self, mean: float, sigma: float) -> np.ndarray:
        """Probability of each state under TNormal(mean, sigma; [0, 1])."""
        if sigma <= 0:
            # Deterministic: all mass in the cell containing the mean.
            probs = np.zeros(self.n)
            idx = min(int(mean * self.n), self.n - 1)
            probs[max(idx, 0)] = 1.0
            return probs
        z_lo = float(normal_cdf(0.0, mean, sigma))
        z_hi = float(normal_cdf(1.0, mean, sigma))
        denom = z_hi - z_lo
        if denom <= 1e-15:
            probs = np.zeros(self.n)
            idx = min(max(int(mean * self.n), 0), self.n - 1)
            probs[idx] = 1.0
            return probs
        edges = np.linspace(0.0, 1.0, self.n + 1)
        cdf = (np.atleast_1d(normal_cdf(edges, mean, sigma)) - z_lo) / denom
        probs = np.diff(np.clip(cdf, 0.0, 1.0))
        probs = np.clip(probs, 0.0, None)
        return probs / probs.sum()


def ranked_cpt(child: Variable, parents: Sequence[Variable],
               weights: Sequence[float], sigma: float,
               *, inverted: Optional[Sequence[bool]] = None) -> CPT:
    """Generate a CPT via the weighted-mean (WMEAN) ranked-node scheme.

    Parameters
    ----------
    child, parents:
        Ordinal variables; state order is interpreted low -> high.
    weights:
        Relative influence of each parent (normalized internally).
    sigma:
        Truncated-normal spread; smaller = more deterministic mapping.
    inverted:
        Per-parent flag: True means the parent acts inversely (high parent
        value drives the child low).

    The parameter count is ``len(parents) + 1`` instead of
    ``|child| ** (k+1)`` — the exponential-to-linear reduction of Fenton
    et al.
    """
    if len(weights) != len(parents):
        raise InferenceError("one weight per parent required")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0) or w.sum() <= 0:
        raise InferenceError("weights must be non-negative and not all zero")
    w = w / w.sum()
    if inverted is None:
        inverted = [False] * len(parents)
    if len(inverted) != len(parents):
        raise InferenceError("one inverted flag per parent required")

    child_rn = RankedNode(child)
    parent_rns = [RankedNode(p) for p in parents]
    shape = tuple(p.cardinality for p in parents) + (child.cardinality,)
    table = np.zeros(shape)
    for idx in np.ndindex(*shape[:-1]):
        values = []
        for rn, i, inv in zip(parent_rns, idx, inverted):
            v = (i + 0.5) / rn.n
            values.append(1.0 - v if inv else v)
        mean = float(np.dot(w, values))
        table[idx] = child_rn.discretize(mean, sigma)
    return CPT(child, tuple(parents), table)


def ranked_parameter_savings(child: Variable,
                             parents: Sequence[Variable]) -> Dict[str, int]:
    """Elicitation burden: full CPT vs ranked-node parameters."""
    n_configs = 1
    for p in parents:
        n_configs *= p.cardinality
    full = n_configs * (child.cardinality - 1)
    ranked = len(parents) + 1  # weights + sigma
    return {"full_cpt": full, "ranked": ranked, "ratio": full // max(ranked, 1)}


DEFAULT_RANKED_STATES = ("very_low", "low", "medium", "high", "very_high")


def make_ranked_variable(name: str,
                         states: Sequence[str] = DEFAULT_RANKED_STATES) -> Variable:
    """Convenience constructor for a standard 5-point ranked scale."""
    return Variable(name, states)
