"""Score-based Bayesian-network structure learning.

Parameter uncertainty is epistemic; *structure* uncertainty — which edges
exist at all — is the model-level face of ontological uncertainty: an
absent edge is a dependency the model's ontology does not contain.
Structure learning is therefore an uncertainty-removal method operating
on the model itself.  This module implements BIC-scored greedy hill
climbing (add/remove/reverse moves) with a decomposable score cache, plus
a bootstrap edge-confidence analysis that reports *how sure* the data is
about each learned edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.graph import DAG
from repro.bayesnet.learning import fit_cpt_mle
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError


def family_bic_score(child: Variable, parents: Sequence[Variable],
                     records: Sequence[Mapping[str, str]]) -> float:
    """BIC contribution of one (child | parents) family.

    log L_MLE - (penalty) with penalty = 0.5 log(N) * #free parameters.
    Decomposability over families is what makes local search tractable.
    """
    n = len(records)
    if n == 0:
        raise InferenceError("need at least one record")
    counts: Dict[Tuple[str, ...], Dict[str, int]] = {}
    for rec in records:
        key = tuple(rec[p.name] for p in parents)
        row = counts.setdefault(key, {})
        row[rec[child.name]] = row.get(rec[child.name], 0) + 1
    log_likelihood = 0.0
    for row in counts.values():
        total = sum(row.values())
        for c in row.values():
            log_likelihood += c * math.log(c / total)
    n_configs = 1
    for p in parents:
        n_configs *= p.cardinality
    free_params = n_configs * (child.cardinality - 1)
    return log_likelihood - 0.5 * math.log(n) * free_params


def network_bic_score(variables: Sequence[Variable],
                      parent_map: Mapping[str, Sequence[str]],
                      records: Sequence[Mapping[str, str]]) -> float:
    """BIC of a whole structure (sum of family scores)."""
    by_name = {v.name: v for v in variables}
    total = 0.0
    for v in variables:
        parents = [by_name[p] for p in parent_map.get(v.name, [])]
        total += family_bic_score(v, parents, records)
    return total


@dataclass
class LearnedStructure:
    """Result of a structure search."""

    parent_map: Dict[str, Tuple[str, ...]]
    score: float
    n_steps: int

    def edges(self) -> List[Tuple[str, str]]:
        return sorted((p, c) for c, ps in self.parent_map.items() for p in ps)

    def to_network(self, variables: Sequence[Variable],
                   records: Sequence[Mapping[str, str]],
                   pseudocount: float = 1.0) -> BayesianNetwork:
        """Materialize the structure with MLE-fitted CPTs."""
        by_name = {v.name: v for v in variables}
        bn = BayesianNetwork("learned")
        order = self._topological_order()
        for name in order:
            parents = [by_name[p] for p in self.parent_map.get(name, ())]
            bn.add_cpt(fit_cpt_mle(by_name[name], parents, records,
                                   pseudocount=pseudocount))
        return bn

    def _topological_order(self) -> List[str]:
        dag = DAG()
        for child, parents in self.parent_map.items():
            dag.add_node(child)
            for p in parents:
                dag.add_edge(p, child)
        return dag.topological_order()


def hill_climb_structure(variables: Sequence[Variable],
                         records: Sequence[Mapping[str, str]],
                         max_parents: int = 2,
                         max_steps: int = 200) -> LearnedStructure:
    """Greedy BIC hill climbing over add/remove/reverse edge moves."""
    if max_parents < 1:
        raise InferenceError("max_parents must be >= 1")
    if not variables:
        raise InferenceError("at least one variable required")
    names = [v.name for v in variables]
    by_name = {v.name: v for v in variables}
    parent_map: Dict[str, Set[str]] = {n: set() for n in names}

    def family_score(child: str, parents: Set[str]) -> float:
        return family_bic_score(by_name[child],
                                [by_name[p] for p in sorted(parents)],
                                records)

    scores = {n: family_score(n, parent_map[n]) for n in names}

    def creates_cycle(parent: str, child: str) -> bool:
        # Would parent -> child close a cycle? Check child ->* parent.
        frontier = [parent]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == child:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(parent_map[node])
        return False

    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        best_delta = 1e-9
        best_move = None
        for child in names:
            for parent in names:
                if parent == child:
                    continue
                if parent in parent_map[child]:
                    # Remove move.
                    new_parents = parent_map[child] - {parent}
                    delta = family_score(child, new_parents) - scores[child]
                    if delta > best_delta:
                        best_delta, best_move = delta, ("remove", parent, child)
                    # Reverse move (remove + add opposite).
                    if (len(parent_map[parent]) < max_parents and
                            child not in parent_map[parent]):
                        without = parent_map[child] - {parent}
                        with_rev = parent_map[parent] | {child}
                        # Temporarily remove to check acyclicity of reversal.
                        parent_map[child].discard(parent)
                        cycle = creates_cycle(child, parent)
                        parent_map[child].add(parent)
                        if not cycle:
                            delta = (family_score(child, without) - scores[child]
                                     + family_score(parent, with_rev)
                                     - scores[parent])
                            if delta > best_delta:
                                best_delta = delta
                                best_move = ("reverse", parent, child)
                else:
                    # Add move.
                    if len(parent_map[child]) >= max_parents:
                        continue
                    if creates_cycle(parent, child):
                        continue
                    new_parents = parent_map[child] | {parent}
                    delta = family_score(child, new_parents) - scores[child]
                    if delta > best_delta:
                        best_delta, best_move = delta, ("add", parent, child)
        if best_move is not None:
            kind, parent, child = best_move
            if kind == "add":
                parent_map[child].add(parent)
                scores[child] = family_score(child, parent_map[child])
            elif kind == "remove":
                parent_map[child].discard(parent)
                scores[child] = family_score(child, parent_map[child])
            else:  # reverse
                parent_map[child].discard(parent)
                parent_map[parent].add(child)
                scores[child] = family_score(child, parent_map[child])
                scores[parent] = family_score(parent, parent_map[parent])
            improved = True
            steps += 1
    return LearnedStructure(
        parent_map={n: tuple(sorted(ps)) for n, ps in parent_map.items()},
        score=sum(scores.values()), n_steps=steps)


def edge_confidence(variables: Sequence[Variable],
                    records: Sequence[Mapping[str, str]],
                    rng: np.random.Generator, n_bootstrap: int = 20,
                    max_parents: int = 2) -> Dict[Tuple[str, str], float]:
    """Bootstrap frequency of each (undirected) edge across relearns.

    The structural-uncertainty report: edges near 1.0 are data-supported
    dependencies; edges near 0.5 are epistemically open; pairs never
    connected are (as far as this data goes) independent.
    """
    if n_bootstrap < 2:
        raise InferenceError("n_bootstrap must be >= 2")
    records = list(records)
    n = len(records)
    counts: Dict[Tuple[str, str], int] = {}
    for _ in range(n_bootstrap):
        resample = [records[int(i)] for i in rng.integers(0, n, size=n)]
        learned = hill_climb_structure(variables, resample,
                                       max_parents=max_parents)
        seen: Set[Tuple[str, str]] = set()
        for p, c in learned.edges():
            key = tuple(sorted((p, c)))
            if key not in seen:
                counts[key] = counts.get(key, 0) + 1
                seen.add(key)
    return {edge: count / n_bootstrap for edge, count in counts.items()}
