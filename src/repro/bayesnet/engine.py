"""Compiled inference engine: cached query plans and batched evidence sweeps.

Every analysis layer built on the paper's §V-B Bayesian network — removal
sweeps, sensitivity tornados, value-of-information rankings, robustness
campaigns — issues thousands of near-identical posterior queries.  The
naive path recompiles everything per call: validate the DAG, convert every
CPT to a factor, rebuild the interaction graph, rerun min-fill.  This
module compiles a network **once** and reuses the artifacts:

- **factor cache** — CPT→factor conversion done once per parameter
  version;
- **plan cache** — deterministic min-fill elimination orders keyed by
  (targets, evidence-variable signature); an order is valid for *any*
  evidence states over the same variables, so sweeps hit the cache;
- **junction-tree reuse** — one compiled clique tree recalibrated per
  evidence set, with calibrated marginals memoized;
- **batched sweeps** — :meth:`CompiledNetwork.query_batch` eliminates down
  to one joint factor over (targets ∪ evidence variables) and answers all
  evidence rows with a single vectorized numpy gather.

Caches are guarded by a structure fingerprint plus a parameter version:
``replace_cpt`` keeps the plans (structure unchanged), ``add_cpt`` or an
edge change drops them.  An :class:`EngineStats` block records what the
engine actually did — query counts, plan hits/misses, compile vs execute
wall time — so campaign evidence can cite it.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional,
                    Sequence, Tuple, Union)

import numpy as np

try:  # Protocol is typing-native from 3.8 on
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback, unsupported
    Protocol = object

    def runtime_checkable(cls):
        return cls

from repro.bayesnet.factor import Factor, ScalarFactor
from repro.bayesnet.graph import min_fill_elimination_order
from repro.bayesnet.inference.junction_tree import JunctionTree
from repro.bayesnet.inference.variable_elimination import (
    evidence_probability,
    variable_elimination,
)
from repro.bayesnet.variable import Variable
from repro.errors import EngineError, InferenceError
from repro.telemetry.metrics import (
    ENGINE_BATCH_ROWS,
    ENGINE_EVIDENCE_CACHE_REQUESTS,
    ENGINE_JT_MESSAGES,
    ENGINE_PLAN_REQUESTS,
    ENGINE_QUERIES,
    ENGINE_QUERY_SECONDS,
    ENGINE_RECOMPILES,
)
from repro.telemetry import tracing as _tracing
from repro.telemetry.tracing import active as _trace_active

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.bayesnet.network import BayesianNetwork

#: Joint tables larger than this (entries) make query_batch fall back to
#: per-row elimination instead of materializing the gather table.
MAX_BATCH_TABLE_ENTRIES = 1 << 22

#: Calibrated-marginal memo entries kept per engine (small LRU).
MARGINAL_CACHE_SIZE = 128

#: Default capacity of the evidence-keyed posterior LRU (per engine).
DEFAULT_EVIDENCE_CACHE_SIZE = 1024

#: Cache-miss sentinel: ``probability_of_evidence`` can legitimately
#: cache 0.0, so absence cannot be signalled by a falsy value.
_MISS = object()

#: Accepted ``batch_dtype`` values for the stacked-calibration substrate.
BATCH_DTYPES = {"float32": np.float32, "float64": np.float64}


@dataclass
class EngineStats:
    """What an engine actually did — exported into campaign evidence."""

    queries: int = 0
    batch_queries: int = 0
    batch_rows: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    evidence_cache_hits: int = 0
    evidence_cache_misses: int = 0
    messages_recomputed: int = 0
    messages_total: int = 0
    recompiles: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0

    #: Snapshot keys whose values are wall-clock measurements and hence
    #: not reproducible run to run; deterministic exports drop them.
    TIMING_FIELDS = ("compile_seconds", "execute_seconds")

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    @property
    def evidence_cache_hit_rate(self) -> float:
        total = self.evidence_cache_hits + self.evidence_cache_misses
        return self.evidence_cache_hits / total if total else 0.0

    def snapshot(self, *, include_timings: bool = True) -> Dict[str, float]:
        """Plain-dict copy (report/dossier friendly).

        Keys are emitted in sorted (alphabetical) order so serialized
        exports are byte-stable; ``include_timings=False`` additionally
        drops the wall-clock fields, leaving only values that are
        deterministic for a seeded run.
        """
        out = dict(asdict(self))
        out["plan_hit_rate"] = self.plan_hit_rate
        out["evidence_cache_hit_rate"] = self.evidence_cache_hit_rate
        if not include_timings:
            for key in self.TIMING_FIELDS:
                out.pop(key, None)
        return {key: out[key] for key in sorted(out)}

    def reset(self) -> None:
        self.__init__()


@runtime_checkable
class InferenceEngine(Protocol):
    """The single seam every inference consumer talks to.

    Implementations answer posterior queries over one Bayesian network and
    expose :class:`EngineStats` describing the work performed.
    """

    def query(self, target: str,
              evidence: Optional[Mapping[str, str]] = None
              ) -> Dict[str, float]:
        """Posterior marginal P(target | evidence)."""
        ...

    def joint_query(self, targets: Sequence[str],
                    evidence: Optional[Mapping[str, str]] = None) -> Factor:
        """Joint posterior factor over several targets."""
        ...

    def marginals(self, evidence: Optional[Mapping[str, str]] = None
                  ) -> Dict[str, Dict[str, float]]:
        """All posterior marginals under one evidence set."""
        ...

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        """P(evidence) — the normalizing constant."""
        ...

    def query_batch(self, targets: Union[str, Sequence[str]],
                    evidence_rows: Sequence[Mapping[str, str]]
                    ) -> List:
        """Posteriors for many evidence rows over one compiled plan."""
        ...

    @property
    def stats(self) -> EngineStats:
        ...


def structure_fingerprint(network: "BayesianNetwork") -> str:
    """Hash of the network's *structure*: nodes, state sets, parent sets.

    CPT values are deliberately excluded — elimination orders and clique
    trees depend only on structure, so parameter edits (``replace_cpt``)
    keep the plan cache warm.
    """
    h = hashlib.sha256()
    for name in sorted(network.dag.nodes):
        cpt = network.cpt(name)
        h.update(name.encode())
        h.update(b"\x00")
        h.update("\x1f".join(cpt.child.states).encode())
        h.update(b"\x00")
        h.update("\x1f".join(sorted(cpt.parent_names)).encode())
        h.update(b"\x01")
    return h.hexdigest()


class CompiledNetwork:
    """:class:`InferenceEngine` that compiles once and reuses everything.

    Example::

        engine = CompiledNetwork(build_fig4_network())
        rows = [{"perception": o} for o in outputs] * 100
        posteriors = engine.query_batch("ground_truth", rows)
        engine.stats.plan_hit_rate   # ~1.0 after the first sweep

    ``cache_size`` bounds the evidence-keyed posterior LRU shared by
    ``query``/``marginals``/``probability_of_evidence``/``query_batch``
    (``None`` → :data:`DEFAULT_EVIDENCE_CACHE_SIZE`; ``0`` disables
    storing while still counting misses, so instrumentation snapshots
    stay comparable with the cache on).

    ``batch_dtype`` selects the float width of the stacked-calibration
    substrate behind ``query_batch`` (and the scalar fallback sharing
    its kernels).  ``"float64"`` (default) is byte-identical to the
    scalar path; ``"float32"`` halves memory traffic at ~1e-6 absolute
    posterior tolerance (see DESIGN §12).
    """

    def __init__(self, network: "BayesianNetwork",
                 cache_size: Optional[int] = None,
                 batch_dtype: str = "float64"):
        if cache_size is None:
            cache_size = DEFAULT_EVIDENCE_CACHE_SIZE
        cache_size = int(cache_size)
        if cache_size < 0:
            raise EngineError(
                f"cache_size must be non-negative, got {cache_size}")
        if batch_dtype not in BATCH_DTYPES:
            raise EngineError(
                f"batch_dtype must be one of {sorted(BATCH_DTYPES)}, "
                f"got {batch_dtype!r}")
        self._network = network
        self._cache_size = cache_size
        self._batch_dtype = BATCH_DTYPES[batch_dtype]
        self._stats = EngineStats()
        self._compiled_version: Optional[int] = None
        self._structure_fp: Optional[str] = None
        self._factors: List[Factor] = []
        self._variables: Dict[str, Variable] = {}
        self._plans: Dict[Tuple[FrozenSet[str], FrozenSet[str]],
                          Tuple[str, ...]] = {}
        self._joints: Dict[FrozenSet[str], Factor] = {}
        self._jt: Optional[JunctionTree] = None
        #: Evidence-keyed posterior LRU: key -> cached result.  Keys are
        #: ``(kind, structure_fp, frozenset(evidence.items()), target)``
        #: tuples; values are already-copied, immutable-by-convention
        #: results (dicts are copied again on the way out).
        self._evidence_cache: "OrderedDict[tuple, object]" = OrderedDict()
        #: Lazily created adaptive query planner (persists its calibrated
        #: cost model across queries — see repro.bayesnet.planner).
        self._planner = None

    # -- compilation -----------------------------------------------------------

    @property
    def network(self) -> "BayesianNetwork":
        return self._network

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def _count_plan(self, *, hit: bool) -> None:
        """One plan/joint cache lookup; the per-engine :class:`EngineStats`
        view always counts, the process registry only under telemetry."""
        if hit:
            self._stats.plan_hits += 1
        else:
            self._stats.plan_misses += 1
        if _trace_active() is not None:
            ENGINE_PLAN_REQUESTS.inc(result="hit" if hit else "miss")

    # -- evidence-keyed posterior cache ----------------------------------------

    def _cache_get(self, key: tuple):
        """Look up one evidence-keyed result; counts hit/miss either way.

        A hit also counts as a plan hit — the cached posterior stands in
        for re-executing the compiled plan, exactly like the joint-table
        memo it shortcuts.
        """
        value = self._evidence_cache.get(key, _MISS)
        if value is _MISS:
            self._stats.evidence_cache_misses += 1
            if _trace_active() is not None:
                ENGINE_EVIDENCE_CACHE_REQUESTS.inc(result="miss")
            return _MISS
        self._evidence_cache.move_to_end(key)
        self._stats.evidence_cache_hits += 1
        self._count_plan(hit=True)
        if _trace_active() is not None:
            ENGINE_EVIDENCE_CACHE_REQUESTS.inc(result="hit")
        return value

    def _cache_put(self, key: tuple, value) -> None:
        """Install one computed result; errors are never cached (callers
        only reach here after a successful computation)."""
        if self._cache_size <= 0:
            return
        if key not in self._evidence_cache \
                and len(self._evidence_cache) >= self._cache_size:
            self._evidence_cache.popitem(last=False)
        self._evidence_cache[key] = value
        self._evidence_cache.move_to_end(key)

    def cached_posterior(self, target: str,
                         evidence: Optional[Mapping[str, str]] = None
                         ) -> Optional[Dict[str, float]]:
        """Evidence-cache peek: a scalar posterior if cached, else ``None``.

        Never computes anything and never touches the hit/miss counters —
        this is the serving runtime's cache-tier probe, and counting its
        routine misses would skew the engine's cache statistics.
        """
        self._refresh()
        key = ("query", self._structure_fp,
               frozenset(dict(evidence or {}).items()), target)
        value = self._evidence_cache.get(key, _MISS)
        if value is _MISS:
            return None
        self._evidence_cache.move_to_end(key)
        return dict(value)

    def invalidate(self) -> None:
        """Drop every value-dependent cache (posteriors, joints, tree).

        Structure-dependent artifacts — elimination plans, converted
        factors — survive; they are guarded by the structure fingerprint
        and stay valid.  Use after out-of-band CPT mutation or to bound
        memory between sweeps.
        """
        self._evidence_cache.clear()
        self._joints.clear()
        self._jt = None

    def _note_calibration(self, jt: JunctionTree) -> None:
        """Fold one junction-tree calibration's message work into stats."""
        self._stats.messages_total += jt.last_messages_total
        self._stats.messages_recomputed += jt.last_messages_recomputed
        if _trace_active() is not None:
            if jt.last_messages_recomputed:
                ENGINE_JT_MESSAGES.inc(jt.last_messages_recomputed,
                                       result="recomputed")
            reused = jt.last_messages_total - jt.last_messages_recomputed
            if reused > 0:
                ENGINE_JT_MESSAGES.inc(reused, result="reused")

    def prewarm(self) -> "CompiledNetwork":
        """Compile and calibrate the evidence-free junction tree now.

        After this, :meth:`fork` clones ship an already-calibrated tree,
        so parallel workers start from warm state instead of each paying
        the full first propagation.  Returns ``self`` for chaining.
        """
        self._refresh()
        jt = self._junction_tree()
        jt.calibrate({})
        self._note_calibration(jt)
        return self

    def plan_cost(self) -> float:
        """Total clique state-table volume of the compiled junction tree.

        A structural proxy for the work one calibration (one campaign
        trial, one posterior sweep) performs on this network — the
        clique-width term of the parallel sharder's per-item cost model
        (DESIGN §14).  Deterministic for a given structure, so shard
        cuts derived from it are reproducible.
        """
        self._refresh()
        return float(sum(self._junction_tree().clique_state_sizes))

    def planner(self, *, seed: int = 0, clock=None):
        """The adaptive query planner bound to this engine (created once).

        The planner persists here so its online-calibrated cost model
        (EWMA seconds-per-work-unit per backend × plan fingerprint)
        survives across queries; ``query(..., route=True)`` and
        ``query_batch(..., route=True)`` delegate to it.  ``seed`` and
        ``clock`` only take effect on first creation.
        """
        if self._planner is None:
            from repro.bayesnet.planner import QueryPlanner
            self._planner = QueryPlanner(self, seed=seed, clock=clock)
        return self._planner

    def fork(self) -> "CompiledNetwork":
        """A cache-sharing clone safe to use from another thread.

        The clone shares the immutable compiled artifacts (factors,
        plans, joint tables, cached posteriors — all copied as
        containers, shared as values) and forks the junction tree's
        calibration state; its :class:`EngineStats` start fresh.  The
        clone does not track subsequent mutations of the source network
        deterministically with the original — treat the network as
        read-only while forks are live.
        """
        self._refresh()
        clone = CompiledNetwork.__new__(CompiledNetwork)
        clone._network = self._network
        clone._cache_size = self._cache_size
        clone._batch_dtype = self._batch_dtype
        clone._stats = EngineStats()
        clone._compiled_version = self._compiled_version
        clone._structure_fp = self._structure_fp
        clone._factors = list(self._factors)
        clone._variables = dict(self._variables)
        clone._plans = dict(self._plans)
        clone._joints = dict(self._joints)
        clone._jt = self._jt.fork() if self._jt is not None else None
        clone._evidence_cache = OrderedDict(self._evidence_cache)
        # Planners hold a private RNG and mutable route statistics;
        # each fork builds its own on first use.
        clone._planner = None
        return clone

    def _refresh(self) -> None:
        """Re-sync caches with the network if it mutated since compile."""
        version = self._network.version
        if version == self._compiled_version:
            return
        tracer = _trace_active()
        if tracer is None:
            self._recompile(version)
            return
        with tracer.span("engine.compile", network=self._network.name):
            self._recompile(version)
        ENGINE_RECOMPILES.inc()

    def _recompile(self, version: int) -> None:
        t0 = time.perf_counter()
        self._network.validate()
        fp = structure_fingerprint(self._network)
        if fp != self._structure_fp:
            self._plans.clear()
            self._structure_fp = fp
        self._factors = self._network.factors()
        self._variables = {}
        for f in self._factors:
            for v in f.variables:
                self._variables[v.name] = v
        # Potentials, joints and cached posteriors embed CPT values, so
        # any mutation invalidates them along with the calibrated tree.
        self._joints.clear()
        self._jt = None
        self._evidence_cache.clear()
        self._compiled_version = version
        self._stats.recompiles += 1
        self._stats.compile_seconds += time.perf_counter() - t0

    def _plan(self, keep: FrozenSet[str],
              evidence_names: FrozenSet[str]) -> Tuple[str, ...]:
        """Cached elimination order for one (targets, evidence-vars) shape."""
        key = (keep, evidence_names)
        order = self._plans.get(key)
        if order is not None:
            self._count_plan(hit=True)
            return order
        self._count_plan(hit=False)
        t0 = time.perf_counter()
        adj: Dict[str, set] = {}
        for f in self._factors:
            live = [n for n in f.names if n not in evidence_names]
            for n in live:
                adj.setdefault(n, set())
            for i, a in enumerate(live):
                for b in live[i + 1:]:
                    adj[a].add(b)
                    adj[b].add(a)
        order = tuple(min_fill_elimination_order(adj, keep=keep))
        self._plans[key] = order
        self._stats.compile_seconds += time.perf_counter() - t0
        return order

    def _junction_tree(self) -> JunctionTree:
        if self._jt is None:
            t0 = time.perf_counter()
            self._jt = JunctionTree(self._factors)
            self._stats.compile_seconds += time.perf_counter() - t0
        return self._jt

    def _variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise InferenceError(
                f"variable {name!r} not in compiled network") from None

    def _joint_for(self, keep: FrozenSet[str]) -> Optional[Factor]:
        """Cached unnormalized-equivalent joint P(keep) — or None if the
        table would exceed :data:`MAX_BATCH_TABLE_ENTRIES`.

        Because the network's full joint sums to one, eliminating every
        other variable with no evidence applied yields exactly the joint
        distribution over ``keep``; every posterior whose targets and
        evidence variables lie inside ``keep`` is then a slice of this
        table plus a renormalization.
        """
        joint = self._joints.get(keep)
        if joint is not None:
            self._count_plan(hit=True)
            return joint
        entries = 1
        for name in keep:
            entries *= self._variable(name).cardinality
            if entries > MAX_BATCH_TABLE_ENTRIES:
                return None
        order = self._plan(keep, frozenset())
        t0 = time.perf_counter()
        joint = variable_elimination(self._factors, sorted(keep), {},
                                     order=order)
        self._stats.execute_seconds += time.perf_counter() - t0
        if len(self._joints) >= MARGINAL_CACHE_SIZE:
            self._joints.pop(next(iter(self._joints)))
        self._joints[keep] = joint
        return joint

    def _posterior_from_joint(self, joint: Factor, evidence: Dict[str, str]
                              ) -> Factor:
        """Slice a cached joint at the evidence states and renormalize."""
        axis_of = {v.name: i for i, v in enumerate(joint.variables)}
        index: List = [slice(None)] * len(joint.variables)
        keep_vars: List[Variable] = []
        for v in joint.variables:
            state = evidence.get(v.name)
            if state is None:
                keep_vars.append(v)
            else:
                index[axis_of[v.name]] = v.index_of(state)
        table = joint.table[tuple(index)]
        total = float(table.sum())
        if total <= 0.0:
            raise InferenceError(
                f"evidence {evidence!r} has probability 0 under the model — "
                "posterior is undefined")
        return Factor(keep_vars, table / total)

    # -- scalar queries --------------------------------------------------------

    def _check_query(self, targets: Sequence[str],
                     evidence: Mapping[str, str]) -> None:
        overlap = set(targets) & set(evidence)
        if overlap:
            raise InferenceError(
                f"variables {sorted(overlap)} are both queried and observed")
        for name in list(targets) + list(evidence):
            self._variable(name)

    def query(self, target: str,
              evidence: Optional[Mapping[str, str]] = None, *,
              route: bool = False,
              error_budget: Optional[float] = None,
              frozen: bool = False) -> Dict[str, float]:
        # Opt-in adaptive routing: the planner picks the cheapest
        # backend whose predicted error fits the budget (a zero/absent
        # budget admits only exact plans, so the default path's answer
        # bytes are preserved).  ``frozen=True`` prices from structural
        # priors only — deterministic decisions for seeded runs.
        if route or error_budget is not None:
            return self.planner().route(
                target, evidence,
                error_budget=error_budget or 0.0, frozen=frozen).posterior
        # Hot path: one module-global attribute read (no call frame), no
        # telemetry objects built and no copies taken (_query reads the
        # mapping, never mutates).
        tracer = _tracing._active_tracer
        if tracer is None:
            return self._query(target, evidence or {})
        evidence = dict(evidence or {})
        with tracer.span("engine.query", target=target,
                         evidence=",".join(sorted(evidence)) or "none"):
            t0 = time.perf_counter()
            out = self._query(target, evidence)
        ENGINE_QUERIES.inc(kind="scalar")
        ENGINE_QUERY_SECONDS.observe(time.perf_counter() - t0, kind="scalar")
        return out

    def _query(self, target: str,
               evidence: Mapping[str, str]) -> Dict[str, float]:
        self._refresh()
        self._stats.queries += 1
        self._check_query([target], evidence)
        key = ("query", self._structure_fp, frozenset(evidence.items()),
               target)
        cached = self._cache_get(key)
        if cached is not _MISS:
            return dict(cached)
        keep = frozenset([target]) | frozenset(evidence)
        joint = self._joint_for(keep)
        t0 = time.perf_counter()
        if joint is not None:
            # Fast path: the cached joint slices straight to a 1-D posterior
            # vector — no factor objects, one normalization.
            index = tuple(v.index_of(evidence[v.name])
                          if v.name in evidence else slice(None)
                          for v in joint.variables)
            table = joint.table[index]
            total = float(table.sum())
            if total <= 0.0:
                raise InferenceError(
                    f"evidence {evidence!r} has probability 0 under the "
                    "model — posterior is undefined")
            states = self._variable(target).states
            out = {s: float(table[j]) / total for j, s in enumerate(states)}
            self._stats.execute_seconds += time.perf_counter() - t0
        else:
            # Joint too large to materialize: a 1-row pass through the
            # stacked-calibration substrate — the same kernels
            # query_batch runs, so batched and scalar answers stay
            # byte-identical at float64 (batch-invariance of the
            # row-wise numpy reductions).
            self._count_plan(hit=self._jt is not None)
            jt = self._junction_tree()
            try:
                beliefs = jt.calibrate_batch([evidence],
                                             dtype=self._batch_dtype)
                vec = beliefs.marginal_batch(target)[0]
            except InferenceError as exc:
                if getattr(exc, "row_index", None) is not None:
                    raise InferenceError(
                        f"evidence {dict(evidence)!r} has probability 0 "
                        "under the model — posterior is undefined"
                    ) from None
                raise
            out = {s: float(vec[j])
                   for j, s in enumerate(self._variable(target).states)}
            self._stats.execute_seconds += time.perf_counter() - t0
        self._cache_put(key, dict(out))
        return out

    def joint_query(self, targets: Sequence[str],
                    evidence: Optional[Mapping[str, str]] = None) -> Factor:
        targets = list(targets)
        evidence = dict(evidence or {})
        self._refresh()
        self._stats.queries += 1
        if not targets:
            raise InferenceError("query must name at least one variable")
        self._check_query(targets, evidence)
        keep = frozenset(targets) | frozenset(evidence)
        joint = self._joint_for(keep)
        t0 = time.perf_counter()
        if joint is not None:
            factor = self._posterior_from_joint(joint, evidence)
        else:
            order = self._plan(frozenset(targets), frozenset(evidence))
            factor = variable_elimination(self._factors, targets, evidence,
                                          order=order)
        self._stats.execute_seconds += time.perf_counter() - t0
        return factor

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        evidence = dict(evidence)
        self._refresh()
        self._stats.queries += 1
        if not evidence:
            return 1.0
        self._check_query([], evidence)
        key = ("z", self._structure_fp, frozenset(evidence.items()))
        cached = self._cache_get(key)
        if cached is not _MISS:
            return cached
        joint = self._joint_for(frozenset(evidence))
        t0 = time.perf_counter()
        if joint is not None:
            index = tuple(v.index_of(evidence[v.name])
                          for v in joint.variables)
            p = float(joint.table[index])
        else:
            order = self._plan(frozenset(), frozenset(evidence))
            p = evidence_probability(self._factors, evidence, order=order)
        self._stats.execute_seconds += time.perf_counter() - t0
        self._cache_put(key, p)
        return p

    def marginals(self, evidence: Optional[Mapping[str, str]] = None
                  ) -> Dict[str, Dict[str, float]]:
        """All posterior marginals via the cached junction tree.

        The compiled tree recalibrates incrementally across evidence
        sets (only messages behind changed evidence re-propagate);
        calibrated results are additionally memoized in the
        evidence-keyed posterior cache.
        """
        tracer = _trace_active()
        if tracer is None:
            return self._marginals(evidence or {})
        evidence = dict(evidence or {})
        with tracer.span("engine.marginals",
                         evidence=",".join(sorted(evidence)) or "none"):
            t0 = time.perf_counter()
            out = self._marginals(evidence)
        ENGINE_QUERIES.inc(kind="marginals")
        ENGINE_QUERY_SECONDS.observe(time.perf_counter() - t0,
                                     kind="marginals")
        return out

    def _marginals(self, evidence: Mapping[str, str]
                   ) -> Dict[str, Dict[str, float]]:
        self._refresh()
        self._stats.queries += 1
        key = ("marginals", self._structure_fp,
               frozenset(evidence.items()))
        cached = self._cache_get(key)
        if cached is not _MISS:
            return {n: dict(d) for n, d in cached.items()}
        jt = self._junction_tree()
        t0 = time.perf_counter()
        jt.calibrate(evidence)
        self._note_calibration(jt)
        out = {name: jt.marginal(name) for name in self._network.dag.nodes}
        self._stats.execute_seconds += time.perf_counter() - t0
        self._cache_put(key, {n: dict(d) for n, d in out.items()})
        return out

    # -- batched sweeps --------------------------------------------------------

    def query_batch(self, targets: Union[str, Sequence[str]],
                    evidence_rows: Sequence[Mapping[str, str]], *,
                    route: bool = False,
                    error_budget: Optional[float] = None,
                    frozen: bool = False) -> List:
        """Posteriors for every evidence row, vectorized over one plan.

        Rows are grouped by evidence-variable signature; per group the
        engine eliminates down to a single joint factor over
        (targets ∪ evidence variables), then answers all rows in that
        group with one numpy gather + renormalize.  A row whose evidence
        has probability zero raises :class:`InferenceError`, matching the
        scalar path.

        Returns one ``{state: p}`` dict per row for a single target name,
        or one normalized :class:`Factor` per row for a target list.

        ``route=True`` / ``error_budget=`` hand the block to the
        planner's :meth:`~repro.bayesnet.planner.QueryPlanner.route_batch`
        (single-target only): the batched stacked substrate competes
        with per-row sampling under the budget.
        """
        single = isinstance(targets, str)
        if route or error_budget is not None:
            if not single:
                raise InferenceError(
                    "routed query_batch supports a single target name")
            answers = self.planner().route_batch(
                targets, evidence_rows, error_budget=error_budget or 0.0,
                frozen=frozen)
            return [a.posterior for a in answers]
        target_list = [targets] if single else list(targets)
        if not target_list:
            raise InferenceError("query_batch needs at least one target")
        rows = [dict(r) for r in evidence_rows]
        # Per-batch, not per-query, so recorded unconditionally: the
        # serving `/metrics` surface shows batch throughput even without
        # an active tracing session.
        ENGINE_BATCH_ROWS.inc(len(rows), engine="compiled")
        tracer = _trace_active()
        if tracer is None:
            return self._query_batch(target_list, rows, single)
        with tracer.span("engine.query_batch",
                         targets=",".join(target_list), rows=len(rows)):
            t0 = time.perf_counter()
            out = self._query_batch(target_list, rows, single)
        ENGINE_QUERIES.inc(kind="batch")
        ENGINE_QUERY_SECONDS.observe(time.perf_counter() - t0, kind="batch")
        return out

    def _query_batch(self, target_list: List[str],
                     rows: List[Dict[str, str]], single: bool) -> List:
        self._refresh()
        self._stats.batch_queries += 1
        self._stats.batch_rows += len(rows)

        target_vars = [self._variable(t) for t in target_list]
        results: List = [None] * len(rows)
        if single:
            self._batch_single(target_list[0], target_vars[0], rows, results)
            return results
        groups: Dict[FrozenSet[str], List[int]] = {}
        for i in range(len(rows)):
            groups.setdefault(frozenset(rows[i]), []).append(i)
        for signature in sorted(groups, key=lambda s: tuple(sorted(s))):
            indices = sorted(
                groups[signature],
                key=lambda i: tuple(sorted(rows[i].items())))
            self._check_query(target_list, dict.fromkeys(signature, ""))
            self._batch_group(target_list, target_vars, sorted(signature),
                              [rows[i] for i in indices], indices, results)
        return results

    def _batch_single(self, target: str, target_var: Variable,
                      rows: List[Dict[str, str]], results: List) -> None:
        """Single-target batch: each distinct evidence row computed once.

        Rows are deduplicated by evidence assignment, so a sweep that
        repeats a handful of configurations pays one posterior-cache
        lookup and one computation per *unique* row, then fans the
        answers back out as fresh dicts.  Unique rows missing from the
        cache are grouped by evidence-variable signature: groups whose
        (target ∪ evidence) joint fits the table budget are answered by
        the vectorized gather; every remaining row — across signatures —
        is pushed through ONE stacked junction-tree calibration
        (:meth:`JunctionTree.calibrate_batch`), the same kernels the
        scalar no-joint path runs, so batched posteriors stay
        byte-identical to per-row queries at float64.
        """
        keys = [frozenset(r.items()) for r in rows]
        first: Dict[FrozenSet, int] = {}
        for i, k in enumerate(keys):
            first.setdefault(k, i)
        unique_out: Dict[FrozenSet, Dict[str, float]] = {}
        pending: List[int] = []        # first-occurrence row indices
        for k, i in first.items():
            cached = self._cache_get(
                ("query", self._structure_fp, k, target))
            if cached is _MISS:
                pending.append(i)
            else:
                unique_out[k] = cached
        # Deterministic order: signature first, assignment second — the
        # evidence-similarity sort the incremental path relied on, kept
        # so results and stacked-row order are reproducible.
        pending.sort(key=lambda i: (tuple(sorted(keys[i])),))
        groups: Dict[FrozenSet[str], List[int]] = {}
        for i in pending:
            groups.setdefault(frozenset(rows[i]), []).append(i)
        stacked: List[int] = []
        for signature in sorted(groups, key=lambda s: tuple(sorted(s))):
            indices = groups[signature]
            self._check_query([target], dict.fromkeys(signature, ""))
            joint = self._joint_for(frozenset([target]) | signature)
            if joint is None:
                stacked.extend(indices)
            else:
                self._gather_rows(target, target_var, sorted(signature),
                                  joint, indices, rows, keys, unique_out)
        if stacked:
            self._stacked_rows(target, target_var, stacked, rows, keys,
                               unique_out)
        for i, k in enumerate(keys):
            results[i] = dict(unique_out[k])

    def _gather_rows(self, target: str, target_var: Variable,
                     evidence_names: List[str], joint: Factor,
                     indices: List[int], rows: List[Dict[str, str]],
                     keys: List[FrozenSet],
                     unique_out: Dict[FrozenSet, Dict[str, float]]) -> None:
        """Answer one evidence-signature group from its cached joint."""
        t0 = time.perf_counter()
        group_rows = [rows[i] for i in indices]
        # Axes rearranged to (evidence..., target) so one advanced-index
        # gather yields (n_rows, target_cardinality).
        axis_of = {v.name: i for i, v in enumerate(joint.variables)}
        ev_axes = [axis_of[n] for n in evidence_names]
        table = np.transpose(joint.table, ev_axes + [axis_of[target]])
        if evidence_names:
            gather = tuple(
                np.asarray([joint.variables[axis_of[name]].index_of(row[name])
                            for row in group_rows])
                for name in evidence_names)
            sliced = table[gather]          # (n_rows, target_cardinality)
        else:
            sliced = np.broadcast_to(table, (len(group_rows),) + table.shape)
        flat = sliced.reshape(len(group_rows), -1)
        norms = flat.sum(axis=1)
        zero = np.flatnonzero(norms <= 0.0)
        if zero.size:
            bad = group_rows[int(zero[0])]
            raise InferenceError(
                f"evidence row {bad!r} has probability 0 under the model — "
                "posterior is undefined")
        posts = flat / norms[:, None]
        for k, i in enumerate(indices):
            out = {s: float(posts[k, j])
                   for j, s in enumerate(target_var.states)}
            unique_out[keys[i]] = out
            self._cache_put(("query", self._structure_fp, keys[i], target),
                            dict(out))
        self._stats.execute_seconds += time.perf_counter() - t0

    def _stacked_rows(self, target: str, target_var: Variable,
                      indices: List[int], rows: List[Dict[str, str]],
                      keys: List[FrozenSet],
                      unique_out: Dict[FrozenSet, Dict[str, float]]) -> None:
        """Answer every no-joint row with one stacked calibration pass.

        Mixed evidence signatures share the pass: evidence enters as
        per-row one-hot likelihood vectors, so the whole block runs one
        collect/distribute schedule regardless of which variables each
        row observes.
        """
        self._count_plan(hit=self._jt is not None)
        jt = self._junction_tree()
        t0 = time.perf_counter()
        stack = [rows[i] for i in indices]
        try:
            beliefs = jt.calibrate_batch(stack, dtype=self._batch_dtype)
            posts = beliefs.marginal_batch(target)
        except InferenceError as exc:
            bad = getattr(exc, "row_index", None)
            if bad is not None:
                raise InferenceError(
                    f"evidence row {stack[bad]!r} has probability 0 under "
                    "the model — posterior is undefined") from None
            raise
        for k, i in enumerate(indices):
            out = {s: float(posts[k, j])
                   for j, s in enumerate(target_var.states)}
            unique_out[keys[i]] = out
            self._cache_put(("query", self._structure_fp, keys[i], target),
                            dict(out))
        self._stats.execute_seconds += time.perf_counter() - t0

    def _batch_group(self, target_list: List[str],
                     target_vars: List[Variable],
                     evidence_names: List[str],
                     group_rows: List[Dict[str, str]],
                     indices: List[int], results: List) -> None:
        """Answer a multi-target evidence-signature group."""
        keep = frozenset(target_list) | frozenset(evidence_names)
        joint = self._joint_for(keep)
        if joint is None:
            # Multi-target fallback: per-row elimination over the cached
            # per-signature plan.
            order = self._plan(frozenset(target_list), frozenset(evidence_names))
            t0 = time.perf_counter()
            for row, out_i in zip(group_rows, indices):
                factor = variable_elimination(self._factors, target_list,
                                              row, order=order)
                results[out_i] = factor.normalize()
            self._stats.execute_seconds += time.perf_counter() - t0
            return

        t0 = time.perf_counter()
        # Axes rearranged to (evidence..., targets...) so one advanced-index
        # gather yields (n_rows, *target_shape).
        axis_of = {v.name: i for i, v in enumerate(joint.variables)}
        ev_axes = [axis_of[n] for n in evidence_names]
        tgt_axes = [axis_of[t] for t in target_list]
        table = np.transpose(joint.table, ev_axes + tgt_axes)
        if evidence_names:
            gather = tuple(
                np.asarray([joint.variables[axis_of[name]].index_of(row[name])
                            for row in group_rows])
                for name in evidence_names)
            sliced = table[gather]          # (n_rows, *target_shape)
        else:
            sliced = np.broadcast_to(table, (len(group_rows),) + table.shape)
        flat = sliced.reshape(len(group_rows), -1)
        norms = flat.sum(axis=1)
        zero = np.flatnonzero(norms <= 0.0)
        if zero.size:
            bad = group_rows[int(zero[0])]
            raise InferenceError(
                f"evidence row {bad!r} has probability 0 under the model — "
                "posterior is undefined")
        posts = flat / norms[:, None]
        tgt_shape = tuple(v.cardinality for v in target_vars)
        for k, out_i in enumerate(indices):
            results[out_i] = Factor(target_vars,
                                    posts[k].reshape(tgt_shape))
        self._stats.execute_seconds += time.perf_counter() - t0

    def __repr__(self) -> str:
        compiled = self._compiled_version is not None
        return (f"CompiledNetwork({self._network.name!r}, "
                f"compiled={compiled}, plans={len(self._plans)}, "
                f"queries={self._stats.queries})")


class RecompilingEngine:
    """Baseline :class:`InferenceEngine` that recompiles on every call.

    Reproduces the pre-engine hot path — full validation, CPT→factor
    conversion and min-fill ordering per query — as the honest comparison
    point for the engine-cache benchmark.
    """

    def __init__(self, network: "BayesianNetwork"):
        self._network = network
        self._stats = EngineStats()

    @property
    def network(self) -> "BayesianNetwork":
        return self._network

    @property
    def stats(self) -> EngineStats:
        return self._stats

    def _fresh_factors(self) -> List[Factor]:
        t0 = time.perf_counter()
        self._network.validate(force=True)
        factors = [self._network.cpt(name).to_factor()
                   for name in self._network.dag.nodes]
        self._stats.recompiles += 1
        self._stats.compile_seconds += time.perf_counter() - t0
        return factors

    def invalidate(self) -> None:
        """Nothing to drop — this engine never caches anything."""

    def query(self, target: str,
              evidence: Optional[Mapping[str, str]] = None
              ) -> Dict[str, float]:
        self._stats.queries += 1
        factors = self._fresh_factors()
        t0 = time.perf_counter()
        out = variable_elimination(factors, [target],
                                   dict(evidence or {})).distribution()
        self._stats.execute_seconds += time.perf_counter() - t0
        return out

    def joint_query(self, targets: Sequence[str],
                    evidence: Optional[Mapping[str, str]] = None) -> Factor:
        self._stats.queries += 1
        return variable_elimination(self._fresh_factors(), list(targets),
                                    dict(evidence or {}))

    def marginals(self, evidence: Optional[Mapping[str, str]] = None
                  ) -> Dict[str, Dict[str, float]]:
        self._stats.queries += 1
        jt = JunctionTree(self._fresh_factors())
        jt.calibrate(dict(evidence or {}))
        return {name: jt.marginal(name) for name in self._network.dag.nodes}

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        self._stats.queries += 1
        return evidence_probability(self._fresh_factors(), dict(evidence))

    def query_batch(self, targets: Union[str, Sequence[str]],
                    evidence_rows: Sequence[Mapping[str, str]]) -> List:
        """Scalar loop over ONE freshly compiled factor set.

        Still recompiles per call — that is this engine's contract — but
        the compiled factors are shared across the batch's rows, and the
        stats count the batch the way :class:`CompiledNetwork` does (one
        ``batch_queries`` bump, ``len(rows)`` ``batch_rows``, no per-row
        ``queries`` inflation), so EngineStats comparisons between the
        two engines are apples-to-apples.
        """
        single = isinstance(targets, str)
        target_list = [targets] if single else list(targets)
        rows = [dict(r) for r in evidence_rows]
        self._stats.batch_queries += 1
        self._stats.batch_rows += len(rows)
        ENGINE_BATCH_ROWS.inc(len(rows), engine="recompiling")
        factors = self._fresh_factors()
        t0 = time.perf_counter()
        out: List = []
        for row in rows:
            posterior = variable_elimination(factors, target_list, row)
            out.append(posterior.distribution() if single
                       else posterior.normalize())
        self._stats.execute_seconds += time.perf_counter() - t0
        return out

    def __repr__(self) -> str:
        return f"RecompilingEngine({self._network.name!r})"


def as_engine(network_or_engine) -> InferenceEngine:
    """Coerce a :class:`BayesianNetwork` (or pass through an engine).

    The migration shim for the engine seam: consumers accept either and
    normalize here, so call sites upgrade incrementally.  Unsupported
    input raises the typed :class:`~repro.errors.EngineError` (an
    :class:`~repro.errors.InferenceError` subclass) naming the offending
    type; a failure *inside* the ``engine()`` accessor is wrapped in an
    :class:`EngineError` chained to the original exception
    (``raise ... from exc``), so service-level error reports keep the
    root cause.
    """
    if hasattr(network_or_engine, "query_batch"):
        return network_or_engine
    engine = getattr(network_or_engine, "engine", None)
    if callable(engine):
        try:
            return engine()
        except EngineError:
            raise
        except Exception as exc:
            raise EngineError(
                "obtaining an inference engine from "
                f"{type(network_or_engine).__name__!r} failed: {exc}"
            ) from exc
    raise EngineError(
        "cannot obtain an inference engine from unsupported type "
        f"{type(network_or_engine).__name__!r}")
