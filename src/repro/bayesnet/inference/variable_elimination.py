"""Exact inference by variable elimination with min-fill ordering."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set

from repro.bayesnet.factor import Factor, ScalarFactor, multiply_all
from repro.bayesnet.graph import min_fill_elimination_order
from repro.errors import InferenceError
from repro.telemetry.tracing import active as _trace_active


def _interaction_graph(factors: Sequence[Factor]) -> Dict[str, Set[str]]:
    adj: Dict[str, Set[str]] = {}
    for f in factors:
        names = f.names
        for n in names:
            adj.setdefault(n, set())
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                adj[a].add(b)
                adj[b].add(a)
    return adj


def variable_elimination(factors: Sequence[Factor], query: Sequence[str],
                         evidence: Mapping[str, str] = None, *,
                         order: Sequence[str] = None) -> Factor:
    """Compute the joint posterior P(query | evidence) from CPT factors.

    Parameters
    ----------
    factors:
        One factor per network node (its CPT as a factor).
    query:
        Variable names whose joint posterior is requested.
    evidence:
        Observed {variable: state}.
    order:
        Optional precomputed elimination order (a cached plan from
        :class:`~repro.bayesnet.engine.CompiledNetwork`).  Must cover every
        non-query, non-evidence variable; when omitted, a min-fill order is
        computed from scratch.

    Returns the normalized posterior factor over the query variables.
    """
    tracer = _trace_active()
    if tracer is not None:
        with tracer.span("inference.variable_elimination",
                         query=",".join(query), n_factors=len(factors),
                         planned=order is not None):
            return _eliminate(factors, query, evidence, order)
    return _eliminate(factors, query, evidence, order)


def _eliminate(factors: Sequence[Factor], query: Sequence[str],
               evidence: Mapping[str, str], order: Sequence[str]) -> Factor:
    evidence = dict(evidence or {})
    query = list(query)
    if not query:
        raise InferenceError("query must name at least one variable")
    overlap = set(query) & set(evidence)
    if overlap:
        raise InferenceError(f"variables {sorted(overlap)} are both queried and observed")

    reduced = [f.reduce(evidence) for f in factors]
    live = [f for f in reduced if not isinstance(f, ScalarFactor)]
    scalar = 1.0
    for f in reduced:
        if isinstance(f, ScalarFactor):
            scalar *= f.partition()

    all_names: Set[str] = set()
    for f in live:
        all_names |= set(f.names)
    missing = set(query) - all_names
    if missing:
        raise InferenceError(f"query variables {sorted(missing)} not in any factor")

    if order is None:
        adj = _interaction_graph(live)
        order = min_fill_elimination_order(adj, keep=query)
    else:
        order = [n for n in order if n not in evidence and n not in query]

    for name in order:
        bucket = [f for f in live if name in f.scope]
        live = [f for f in live if name not in f.scope]
        if not bucket:
            continue
        product = multiply_all(bucket)
        summed = product.marginalize([name])
        if isinstance(summed, ScalarFactor):
            scalar *= summed.partition()
        else:
            live.append(summed)

    result = multiply_all(live)
    if isinstance(result, ScalarFactor):
        raise InferenceError("all query variables were eliminated — internal error")
    result = Factor(result.variables, result.table * scalar)
    return result.normalize()


def evidence_probability(factors: Sequence[Factor],
                         evidence: Mapping[str, str], *,
                         order: Sequence[str] = None) -> float:
    """P(evidence): the partition function after reducing and summing out.

    ``order``, when given, is a precomputed elimination order (cached
    engine plan); evidence variables in it are skipped.
    """
    tracer = _trace_active()
    if tracer is not None:
        with tracer.span("inference.evidence_probability",
                         n_evidence=len(evidence), n_factors=len(factors),
                         planned=order is not None):
            return _evidence_probability(factors, evidence, order)
    return _evidence_probability(factors, evidence, order)


def _evidence_probability(factors: Sequence[Factor],
                          evidence: Mapping[str, str],
                          order: Sequence[str]) -> float:
    evidence = dict(evidence)
    reduced = [f.reduce(evidence) for f in factors]
    live = [f for f in reduced if not isinstance(f, ScalarFactor)]
    scalar = 1.0
    for f in reduced:
        if isinstance(f, ScalarFactor):
            scalar *= f.partition()
    if order is None:
        adj = _interaction_graph(live)
        order = min_fill_elimination_order(adj)
    else:
        order = [n for n in order if n not in evidence]
    for name in order:
        bucket = [f for f in live if name in f.scope]
        live = [f for f in live if name not in f.scope]
        if not bucket:
            continue
        summed = multiply_all(bucket).marginalize([name])
        if isinstance(summed, ScalarFactor):
            scalar *= summed.partition()
        else:
            live.append(summed)
    for f in live:
        scalar *= f.partition()
    return float(scalar)


def most_probable_explanation(factors: Sequence[Factor],
                              evidence: Mapping[str, str] = None) -> Dict[str, str]:
    """MPE assignment of all unobserved variables (max-product elimination).

    Uses max-out elimination followed by greedy decoding via repeated
    conditioning (simple and exact for the small diagnostic networks used
    in the safety analyses here).
    """
    evidence = dict(evidence or {})
    all_names: Set[str] = set()
    for f in factors:
        all_names |= set(f.names)
    unobserved = sorted(all_names - set(evidence))
    assignment = dict(evidence)
    # Greedy sequential maximization: for each variable, pick the state
    # maximizing the joint with previously fixed states. Exact because we
    # re-run full max elimination at every step.
    for name in unobserved:
        best_state, best_score = None, -1.0
        var = None
        for f in factors:
            if name in f.scope:
                var = f.variable(name)
                break
        if var is None:  # pragma: no cover - unreachable by construction
            raise InferenceError(f"variable {name!r} not found")
        for state in var.states:
            trial = dict(assignment)
            trial[name] = state
            score = 1.0
            reduced = [f.reduce(trial) for f in factors]
            live = [f for f in reduced if not isinstance(f, ScalarFactor)]
            for f in reduced:
                if isinstance(f, ScalarFactor):
                    score *= f.partition()
            remaining = set()
            for f in live:
                remaining |= set(f.names)
            product = multiply_all(live)
            if not isinstance(product, ScalarFactor):
                product = product.max_out(remaining)
            score *= product.partition()
            if score > best_score:
                best_state, best_score = state, score
        assignment[name] = best_state
    return {k: v for k, v in assignment.items() if k not in evidence}
