"""Junction-tree (clique-tree) exact inference with Hugin message passing.

Compiles a Bayesian network's moral graph into a tree of cliques, then
calibrates clique potentials by two-phase sum-product propagation.  After
calibration, every marginal (given the same evidence) is a cheap clique
marginalization — the right tool when many queries share one evidence set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bayesnet.factor import Factor, ScalarFactor, multiply_all
from repro.bayesnet.graph import maximum_spanning_junction_tree, triangulate
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError
from repro.telemetry.tracing import active as _trace_active


class JunctionTree:
    """Compiled junction tree for one Bayesian network.

    Parameters
    ----------
    factors:
        One CPT-factor per node of the network.
    """

    def __init__(self, factors: Sequence[Factor]):
        self._factors = list(factors)
        self._variables: Dict[str, Variable] = {}
        for f in self._factors:
            for v in f.variables:
                existing = self._variables.get(v.name)
                if existing is not None and existing != v:
                    raise InferenceError(f"conflicting definitions of {v.name!r}")
                self._variables[v.name] = v
        adjacency: Dict[str, Set[str]] = {n: set() for n in self._variables}
        for f in self._factors:
            names = f.names
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        _, cliques = triangulate(adjacency)
        self.cliques: List[FrozenSet[str]] = cliques
        self.tree_edges = maximum_spanning_junction_tree(cliques)
        self._neighbors: Dict[int, List[Tuple[int, FrozenSet[str]]]] = {
            i: [] for i in range(len(cliques))}
        for i, j, sep in self.tree_edges:
            self._neighbors[i].append((j, sep))
            self._neighbors[j].append((i, sep))
        # Assign each factor to one clique containing its scope.
        self._assignment: List[int] = []
        for f in self._factors:
            home = next((k for k, c in enumerate(cliques) if f.scope <= c), None)
            if home is None:
                raise InferenceError(
                    f"no clique contains factor scope {sorted(f.scope)} — "
                    "triangulation failed")
            self._assignment.append(home)
        self._calibrated: Optional[List[Factor]] = None
        self._evidence: Dict[str, str] = {}
        self._log_partition: Optional[float] = None

    # -- calibration -----------------------------------------------------------

    def calibrate(self, evidence: Mapping[str, str] = None) -> None:
        """Two-phase (collect/distribute) sum-product propagation."""
        evidence = dict(evidence or {})
        tracer = _trace_active()
        if tracer is not None:
            with tracer.span("inference.jt_calibrate",
                             n_cliques=len(self.cliques),
                             n_evidence=len(evidence)):
                return self._calibrate(evidence)
        return self._calibrate(evidence)

    def _calibrate(self, evidence: Dict[str, str]) -> None:
        for name in evidence:
            if name not in self._variables:
                raise InferenceError(f"evidence variable {name!r} unknown")
        self._evidence = evidence

        potentials: List[Factor] = []
        for k, clique in enumerate(self.cliques):
            vars_in = [self._variables[n] for n in sorted(clique)]
            pot = Factor.ones(vars_in)
            potentials.append(pot)
        scalar = 1.0
        for f, home in zip(self._factors, self._assignment):
            reduced = f.reduce(evidence)
            if isinstance(reduced, ScalarFactor):
                scalar *= reduced.partition()
            else:
                potentials[home] = potentials[home].multiply(reduced)
        # Evidence reduction can shrink potentials out of their clique scope;
        # also reduce the base ones-potentials over evidence variables.
        reduced_potentials: List[Factor] = []
        for pot in potentials:
            red = pot.reduce(evidence)
            reduced_potentials.append(red)
        potentials = reduced_potentials

        n = len(self.cliques)
        if n == 1:
            only = potentials[0]
            z = only.partition() * scalar
            if z <= 0.0:
                raise InferenceError("evidence has probability 0 under the model")
            self._log_partition = float(np.log(z))
            self._calibrated = [only]
            return

        # Messages keyed by directed edge (i -> j).
        messages: Dict[Tuple[int, int], Factor] = {}
        root = 0
        order = self._dfs_order(root)

        # Collect: leaves toward root.
        for i in reversed(order):
            parent = self._parent_in(order, i)
            if parent is None:
                continue
            sep = next(s for j, s in self._neighbors[i] if j == parent)
            msg = potentials[i]
            for j, _ in self._neighbors[i]:
                if j != parent:
                    msg = messages[(j, i)].multiply(msg) if not isinstance(
                        messages[(j, i)], ScalarFactor) else msg.multiply(messages[(j, i)])
            keep = set(sep) - set(evidence)
            if isinstance(msg, ScalarFactor):
                messages[(i, parent)] = msg
            else:
                drop = set(msg.names) - keep
                messages[(i, parent)] = msg.marginalize(drop)

        # Distribute: root toward leaves.
        for i in order:
            parent = self._parent_in(order, i)
            for j, sep in self._neighbors[i]:
                if j == parent:
                    continue
                msg = potentials[i]
                for k, _ in self._neighbors[i]:
                    if k != j:
                        mk = messages[(k, i)]
                        msg = mk.multiply(msg) if isinstance(mk, ScalarFactor) else msg.multiply(mk)
                keep = set(sep) - set(evidence)
                if isinstance(msg, ScalarFactor):
                    messages[(i, j)] = msg
                else:
                    drop = set(msg.names) - keep
                    messages[(i, j)] = msg.marginalize(drop)

        calibrated: List[Factor] = []
        for i in range(n):
            belief = potentials[i]
            for j, _ in self._neighbors[i]:
                mj = messages[(j, i)]
                belief = mj.multiply(belief) if isinstance(mj, ScalarFactor) else belief.multiply(mj)
            calibrated.append(belief)
        z = calibrated[root].partition() * scalar
        if z <= 0.0:
            raise InferenceError("evidence has probability 0 under the model")
        self._log_partition = float(np.log(z))
        self._calibrated = calibrated

    def _dfs_order(self, root: int) -> List[int]:
        order: List[int] = []
        seen = {root}
        stack = [root]
        while stack:
            i = stack.pop()
            order.append(i)
            for j, _ in self._neighbors[i]:
                if j not in seen:
                    seen.add(j)
                    stack.append(j)
        if len(order) != len(self.cliques):
            raise InferenceError(
                "junction tree is disconnected — network factors do not share "
                "variables; query the components separately")
        return order

    def _parent_in(self, order: List[int], node: int) -> Optional[int]:
        pos = {n: k for k, n in enumerate(order)}
        best = None
        for j, _ in self._neighbors[node]:
            if pos[j] < pos[node] and (best is None or pos[j] > pos[best]):
                best = j
        return best

    # -- queries ----------------------------------------------------------------

    def marginal(self, name: str) -> Dict[str, float]:
        """Posterior marginal of one variable under the calibrated evidence."""
        if self._calibrated is None:
            raise InferenceError("call calibrate() before querying")
        if name in self._evidence:
            return {s: (1.0 if s == self._evidence[name] else 0.0)
                    for s in self._variables[name].states}
        for belief in self._calibrated:
            if isinstance(belief, ScalarFactor):
                continue
            if name in belief.scope:
                drop = set(belief.names) - {name}
                marg = belief.marginalize(drop)
                return marg.distribution()
        raise InferenceError(f"variable {name!r} not found in any clique")

    def joint_marginal(self, names: Sequence[str]) -> Factor:
        """Joint posterior of variables that co-occur in one clique."""
        if self._calibrated is None:
            raise InferenceError("call calibrate() before querying")
        wanted = set(names) - set(self._evidence)
        for belief in self._calibrated:
            if isinstance(belief, ScalarFactor):
                continue
            if wanted <= belief.scope:
                drop = set(belief.names) - wanted
                return belief.marginalize(drop).normalize()
        raise InferenceError(
            f"variables {sorted(wanted)} do not share a clique; use variable "
            "elimination for out-of-clique joints")

    def log_evidence(self) -> float:
        """log P(evidence) from the last calibration."""
        if self._log_partition is None:
            raise InferenceError("call calibrate() before querying")
        return self._log_partition

    @property
    def width(self) -> int:
        """Tree width + 1 = size of the largest clique (cost driver)."""
        return max(len(c) for c in self.cliques)

    def __repr__(self) -> str:
        return (f"JunctionTree(cliques={len(self.cliques)}, "
                f"max_clique={self.width})")
