"""Junction-tree (clique-tree) exact inference with Hugin message passing.

Compiles a Bayesian network's moral graph into a tree of cliques, then
calibrates clique potentials by two-phase sum-product propagation.  After
calibration, every marginal (given the same evidence) is a cheap clique
marginalization — the right tool when many queries share one evidence set.

Calibration is **incremental** (Darwiche-style lazy propagation): the
message schedule (root, DFS order, parent/child maps) is computed once,
clique potentials are memoized per evidence-restriction, and on a
``calibrate(new_evidence)`` call only the cliques whose attached evidence
actually changed are rebuilt.  A directed message ``i -> j`` is
re-propagated only when a dirty clique lies in the subtree behind ``i``;
every other message is reused from the previous calibration (the values
are identical — a message depends only on the potentials behind it).
Clique beliefs are materialized lazily per query, so the dominant
sweep workload — flip one evidence variable, read one posterior — costs
one potential rebuild plus the messages on paths out of the dirty
region, not a full propagation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bayesnet.factor import (
    BatchedFactor,
    Factor,
    ScalarFactor,
    multiply_all,
)
from repro.bayesnet.graph import maximum_spanning_junction_tree, triangulate
from repro.bayesnet.inference.kernels import one_hot_likelihoods
from repro.bayesnet.variable import Variable
from repro.errors import InferenceError
from repro.telemetry.tracing import active as _trace_active

#: Memoized (clique, evidence-restriction) potentials kept per tree.
POTENTIAL_MEMO_SIZE = 512

#: One clique's evidence restriction: sorted ((name, state), ...) items.
_PotKey = Tuple[Tuple[str, str], ...]


class JunctionTree:
    """Compiled junction tree for one Bayesian network.

    Parameters
    ----------
    factors:
        One CPT-factor per node of the network.
    """

    def __init__(self, factors: Sequence[Factor]):
        self._factors = list(factors)
        self._variables: Dict[str, Variable] = {}
        for f in self._factors:
            for v in f.variables:
                existing = self._variables.get(v.name)
                if existing is not None and existing != v:
                    raise InferenceError(f"conflicting definitions of {v.name!r}")
                self._variables[v.name] = v
        adjacency: Dict[str, Set[str]] = {n: set() for n in self._variables}
        for f in self._factors:
            names = f.names
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        _, cliques = triangulate(adjacency)
        self.cliques: List[FrozenSet[str]] = cliques
        self.tree_edges = maximum_spanning_junction_tree(cliques)
        self._neighbors: Dict[int, List[Tuple[int, FrozenSet[str]]]] = {
            i: [] for i in range(len(cliques))}
        for i, j, sep in self.tree_edges:
            self._neighbors[i].append((j, sep))
            self._neighbors[j].append((i, sep))
        # Assign each factor to one clique containing its scope.
        self._assignment: List[int] = []
        for f in self._factors:
            home = next((k for k, c in enumerate(cliques) if f.scope <= c), None)
            if home is None:
                raise InferenceError(
                    f"no clique contains factor scope {sorted(f.scope)} — "
                    "triangulation failed")
            self._assignment.append(home)
        self._clique_factors: List[List[int]] = [[] for _ in cliques]
        for idx, home in enumerate(self._assignment):
            self._clique_factors[home].append(idx)
        self._clique_names: List[List[str]] = [sorted(c) for c in cliques]

        n = len(cliques)
        # -- incremental-calibration state -----------------------------------
        #: Message schedule (order, parent, children) — built on first use so
        #: the disconnected-tree error keeps surfacing at calibrate time.
        self._plan: Optional[Tuple[List[int], List[Optional[int]],
                                   List[List[int]]]] = None
        self._potentials: List[Optional[Factor]] = [None] * n
        self._pot_keys: List[Optional[_PotKey]] = [None] * n
        self._clique_scalars: List[float] = [1.0] * n
        self._pot_memo: Dict[Tuple[int, _PotKey], Tuple[Factor, float]] = {}
        self._messages: Dict[Tuple[int, int], Factor] = {}
        self._beliefs: List[Optional[Factor]] = [None] * n
        self._evidence: Dict[str, str] = {}
        self._log_partition: Optional[float] = None
        self._ready = False
        #: After a fork, message buffers may be shared with the twin tree —
        #: in-place reuse of a previous message's table is then forbidden.
        self._owns_buffers = True
        # -- batched-calibration state ----------------------------------------
        #: Full-scope clique potentials (no evidence folded in), one list
        #: per dtype — the immutable bases every stacked calibration
        #: broadcasts from.  Built lazily per clique.
        self._batched_bases: Dict[str, List[Optional[Factor]]] = {}
        #: Reusable message arena: (i, j) -> the last stacked message
        #: buffer sent over that edge.  Recycled whenever batch size and
        #: dtype match, so steady-state sweeps allocate nothing per edge.
        self._batch_arena: Dict[Tuple[int, int], np.ndarray] = {}
        #: Cumulative and last-call propagation work, for EngineStats.
        self.messages_total = 0
        self.messages_recomputed = 0
        self.last_messages_total = 0
        self.last_messages_recomputed = 0

    # -- calibration -----------------------------------------------------------

    def calibrate(self, evidence: Optional[Mapping[str, str]] = None) -> None:
        """Incremental two-phase (collect/distribute) sum-product propagation."""
        evidence = dict(evidence or {})
        tracer = _trace_active()
        if tracer is not None:
            with tracer.span("inference.jt_calibrate",
                             n_cliques=len(self.cliques),
                             n_evidence=len(evidence)):
                return self._calibrate(evidence)
        return self._calibrate(evidence)

    def fork(self) -> "JunctionTree":
        """A calibration-sharing copy safe to use from another thread.

        The clone shares every immutable compiled artifact — cliques,
        edges, schedule, factors, memoized potentials and the *current*
        messages (factor tables are never mutated in place once
        published) — but owns private mutable containers, so the clone
        and the original can calibrate divergent evidence sequences
        concurrently without racing.
        """
        clone = JunctionTree.__new__(JunctionTree)
        clone.__dict__.update(self.__dict__)
        clone._potentials = list(self._potentials)
        clone._pot_keys = list(self._pot_keys)
        clone._clique_scalars = list(self._clique_scalars)
        clone._pot_memo = dict(self._pot_memo)
        clone._messages = dict(self._messages)
        clone._beliefs = list(self._beliefs)
        clone._evidence = dict(self._evidence)
        # Both twins now reference the same message tables; neither may
        # recycle them as in-place output buffers.
        self._owns_buffers = False
        clone._owns_buffers = False
        # The batched message arena is recycled in place per calibration
        # and must never be shared across twins.
        clone._batch_arena = {}
        return clone

    def _schedule(self) -> Tuple[List[int], List[Optional[int]],
                                 List[List[int]]]:
        """(DFS order from root 0, parent per clique, children per clique)."""
        if self._plan is None:
            order = self._dfs_order(0)
            pos = {node: k for k, node in enumerate(order)}
            parent: List[Optional[int]] = [None] * len(self.cliques)
            children: List[List[int]] = [[] for _ in self.cliques]
            for node in order:
                best = None
                for j, _ in self._neighbors[node]:
                    if pos[j] < pos[node] and (best is None
                                               or pos[j] > pos[best]):
                        best = j
                parent[node] = best
                if best is not None:
                    children[best].append(node)
            self._plan = (order, parent, children)
        return self._plan

    def _pot_key(self, k: int, evidence: Mapping[str, str]) -> _PotKey:
        """Evidence restricted to clique ``k``'s scope, as a hashable key."""
        return tuple((name, evidence[name]) for name in self._clique_names[k]
                     if name in evidence)

    def _build_potential(self, k: int, key: _PotKey) -> Tuple[Factor, float]:
        """Clique ``k``'s evidence-reduced potential and scalar residue.

        The potential is the product of the clique's assigned
        CPT-factors, each reduced over the clique's evidence
        restriction, on a ones-base over the unobserved clique
        variables.  Factors that reduce to a constant contribute to the
        scalar residue (folded into the partition function only).
        """
        local = dict(key)
        keep = [self._variables[name] for name in self._clique_names[k]
                if name not in local]
        pot: Factor = Factor.ones(keep) if keep else ScalarFactor(1.0)
        scalar = 1.0
        for idx in self._clique_factors[k]:
            reduced = self._factors[idx].reduce(local)
            if isinstance(reduced, ScalarFactor):
                scalar *= reduced.partition()
            elif isinstance(pot, ScalarFactor):
                pot = reduced.multiply(pot)
            else:
                pot = pot.multiply(reduced)
        return pot, scalar

    def _potential_for(self, k: int, key: _PotKey) -> Tuple[Factor, float]:
        memo_key = (k, key)
        cached = self._pot_memo.get(memo_key)
        if cached is not None:
            return cached
        built = self._build_potential(k, key)
        if len(self._pot_memo) >= POTENTIAL_MEMO_SIZE:
            self._pot_memo.pop(next(iter(self._pot_memo)))
        self._pot_memo[memo_key] = built
        return built

    def _combine(self, base: Factor, messages: Sequence[Factor]) -> Factor:
        """``base * prod(messages)`` with one allocation.

        Message scopes are subsets of the base potential's scope
        (separators minus evidence), so the product accumulates in place
        into a single copy of the base table.
        """
        if isinstance(base, ScalarFactor):
            value = base.partition()
            for m in messages:
                value *= m.partition()  # all-observed clique: scalars only
            return ScalarFactor(value)
        if not messages:
            return base
        acc = Factor._wrap(base.variables, base.table.copy())
        for m in messages:
            acc.imultiply(m)
        return acc

    def _message(self, i: int, j: int, evidence: Dict[str, str],
                 sep: FrozenSet[str]) -> Factor:
        """Recompute the directed message ``i -> j``."""
        inbound = [self._messages[(k, i)] for k, _ in self._neighbors[i]
                   if k != j]
        combined = self._combine(self._potentials[i], inbound)
        if isinstance(combined, ScalarFactor):
            return combined
        keep = set(sep) - set(evidence)
        drop = set(combined.names) - keep
        out = None
        if self._owns_buffers:
            prev = self._messages.get((i, j))
            if (prev is not None and not isinstance(prev, ScalarFactor)
                    and [v.name for v in prev.variables]
                    == [v.name for v in combined.variables
                        if v.name not in drop]):
                out = prev.table  # recycle the stale message's buffer
        return combined.marginalize(drop, out=out)

    def _calibrate(self, evidence: Dict[str, str]) -> None:
        for name, state in evidence.items():
            variable = self._variables.get(name)
            if variable is None:
                raise InferenceError(f"evidence variable {name!r} unknown")
            variable.index_of(state)  # unknown states fail before any mutation
        order, parent, children = self._schedule()
        n = len(self.cliques)
        n_messages = 2 * (n - 1)
        self.last_messages_total = n_messages
        self.messages_total += n_messages

        try:
            # Phase 1: diff evidence per clique; rebuild dirty potentials.
            dirty = [False] * n
            for k in range(n):
                key = self._pot_key(k, evidence)
                if key != self._pot_keys[k] or self._potentials[k] is None:
                    pot, scalar = self._potential_for(k, key)
                    self._potentials[k] = pot
                    self._clique_scalars[k] = scalar
                    self._pot_keys[k] = key
                    dirty[k] = True

            # Phase 2: re-propagate only messages with a dirty clique in the
            # subtree behind them; reuse every other cached message.
            recomputed = 0
            up_dirty: Dict[int, bool] = {}
            down_dirty: Dict[int, bool] = {}
            for i in reversed(order):  # collect: leaves toward root
                p = parent[i]
                if p is None:
                    continue
                stale = dirty[i] or any(up_dirty[c] for c in children[i])
                if stale or (i, p) not in self._messages:
                    sep = next(s for j, s in self._neighbors[i] if j == p)
                    self._messages[(i, p)] = self._message(i, p, evidence, sep)
                    recomputed += 1
                    stale = True
                up_dirty[i] = stale
            if order:
                down_dirty[order[0]] = False
            for i in order:  # distribute: root toward leaves
                for j in children[i]:
                    stale = (dirty[i] or down_dirty[i]
                             or any(up_dirty[c] for c in children[i]
                                    if c != j))
                    if stale or (i, j) not in self._messages:
                        sep = next(s for k, s in self._neighbors[i] if k == j)
                        self._messages[(i, j)] = self._message(i, j, evidence,
                                                               sep)
                        recomputed += 1
                        stale = True
                    down_dirty[j] = stale
        except Exception:
            # A partial update would desynchronize potentials and
            # messages; drop the incremental state so the next calibrate
            # starts from scratch.
            self._invalidate()
            raise

        self._evidence = evidence
        self.last_messages_recomputed = recomputed
        self.messages_recomputed += recomputed
        if any(dirty) or recomputed or not self._ready:
            # Every belief depends on evidence everywhere in the tree, so
            # any change invalidates all of them; they rematerialize
            # lazily per query.  The root belief is built eagerly to
            # price the evidence (and fail loudly on P(evidence) = 0).
            self._beliefs = [None] * n
            self._ready = False
            self._log_partition = None
            scalar = 1.0
            for s in self._clique_scalars:
                scalar *= s
            z = self._belief(order[0]).partition() * scalar
            if z <= 0.0:
                raise InferenceError(
                    "evidence has probability 0 under the model")
            self._log_partition = float(np.log(z))
            self._ready = True

    def predict_recalibration(self, evidence: Optional[Mapping[str, str]]
                              = None) -> Tuple[int, int]:
        """Predicted ``(dirty cliques, messages to recompute)`` for
        calibrating ``evidence`` from the tree's *current* state.

        A side-effect-free dry run of :meth:`calibrate`'s two phases:
        the per-clique evidence diff marks dirty cliques, then the
        collect/distribute staleness propagation counts the messages a
        real calibration would rebuild.  The query planner prices the
        incremental-JT backend with this — a tree already calibrated on
        similar evidence predicts (and costs) almost nothing.
        """
        evidence = dict(evidence or {})
        order, parent, children = self._schedule()
        n = len(self.cliques)
        dirty = [False] * n
        for k in range(n):
            key = self._pot_key(k, evidence)
            if key != self._pot_keys[k] or self._potentials[k] is None:
                dirty[k] = True
        recomputed = 0
        up_dirty: Dict[int, bool] = {}
        for i in reversed(order):          # collect: leaves toward root
            p = parent[i]
            if p is None:
                continue
            stale = dirty[i] or any(up_dirty[c] for c in children[i])
            if stale or (i, p) not in self._messages:
                recomputed += 1
                stale = True
            up_dirty[i] = stale
        down_dirty: Dict[int, bool] = {}
        if order:
            down_dirty[order[0]] = False
        for i in order:                    # distribute: root toward leaves
            for j in children[i]:
                stale = (dirty[i] or down_dirty[i]
                         or any(up_dirty[c] for c in children[i] if c != j))
                if stale or (i, j) not in self._messages:
                    recomputed += 1
                    stale = True
                down_dirty[j] = stale
        return sum(dirty), recomputed

    # -- batched calibration ----------------------------------------------------

    def _batched_base(self, k: int, dtype) -> Factor:
        """Clique ``k``'s full-scope potential (no evidence), per dtype.

        The product of the clique's assigned CPT-factors on a ones-base
        over *all* clique variables (sorted-name axis order).  Evidence
        never reduces these tables — the batched path folds evidence in
        as per-row one-hot likelihoods instead — so the bases are
        immutable and shared across every stacked calibration (and
        across forked twins).
        """
        key = np.dtype(dtype).name
        bases = self._batched_bases.get(key)
        if bases is None:
            bases = [None] * len(self.cliques)
            self._batched_bases[key] = bases
        base = bases[k]
        if base is None:
            keep = [self._variables[name] for name in self._clique_names[k]]
            pot = Factor.ones(keep)
            for idx in self._clique_factors[k]:
                pot = pot.multiply(self._factors[idx])
            bases[k] = base = Factor._wrap(
                pot.variables, np.ascontiguousarray(pot.table, dtype=dtype))
        return base

    def _batched_message(self, i: int, j: int,
                         potentials: List[BatchedFactor],
                         messages: Dict[Tuple[int, int], BatchedFactor],
                         sep: FrozenSet[str], dtype) -> None:
        """Send the stacked message ``i -> j`` into the reusable arena."""
        inbound = [messages[(k, i)] for k, _ in self._neighbors[i]
                   if k != j]
        if inbound:
            # One private copy of the potential stack, then in-place
            # products — potentials themselves stay pristine for beliefs.
            # The copy is forced C-order (batch axis outermost): an
            # order='K' copy of a zero-stride broadcast view would put
            # the batch axis innermost, changing np.sum's accumulation
            # order and breaking bitwise batch-invariance vs n_rows=1.
            acc = BatchedFactor._wrap(potentials[i].variables,
                                      potentials[i].table.copy(order="C"))
            for m in inbound:
                acc.imultiply(m)
        else:
            acc = potentials[i]
        drop = set(acc.names) - set(sep)
        kept_shape = (acc.n_rows,) + tuple(
            v.cardinality for v in acc.variables if v.name not in drop)
        out = self._batch_arena.get((i, j))
        if out is None or out.shape != kept_shape \
                or out.dtype != np.dtype(dtype):
            out = np.empty(kept_shape, dtype=dtype)
            self._batch_arena[(i, j)] = out
        messages[(i, j)] = acc.marginalize(drop, out=out)

    def calibrate_batch(self, rows: Sequence[Mapping[str, str]], *,
                        dtype=np.float64) -> "BatchedBeliefs":
        """One stacked collect/distribute pass over an evidence matrix.

        Every row of ``rows`` is one evidence assignment; rows with
        *different* evidence signatures ride together.  Evidence enters
        as per-row one-hot likelihoods multiplied into each observed
        variable's home clique, so clique potentials become
        ``(n_rows, *clique shape)`` stacks and the whole matrix moves
        through the tree's message schedule in single vectorized passes
        — no per-row python loop.

        Independent of the incremental scalar state: ``calibrate``'s
        memoized potentials and cached messages are neither read nor
        disturbed.  Any zero-probability row raises an
        :class:`~repro.errors.InferenceError` carrying ``row_index``.
        Message buffers are recycled per tree — consume the returned
        :class:`BatchedBeliefs` before the next ``calibrate_batch`` on
        the same tree.
        """
        n = len(rows)
        if n == 0:
            raise InferenceError(
                "calibrate_batch needs at least one evidence row")
        observed: Dict[str, Dict[int, int]] = {}
        for r, row in enumerate(rows):
            for name, state in row.items():
                variable = self._variables.get(name)
                if variable is None:
                    raise InferenceError(
                        f"evidence variable {name!r} unknown")
                observed.setdefault(name, {})[r] = variable.index_of(state)
        order, parent, children = self._schedule()

        home: Dict[int, List[str]] = {}
        for name in sorted(observed):
            k = next(k for k, c in enumerate(self.cliques) if name in c)
            home.setdefault(k, []).append(name)
        potentials: List[BatchedFactor] = []
        for k in range(len(self.cliques)):
            pot = BatchedFactor.broadcast(self._batched_base(k, dtype), n,
                                          dtype=dtype)
            names = home.get(k)
            if names:
                pot = pot.materialize()
                for name in names:
                    lam = one_hot_likelihoods(self._variables[name],
                                              observed[name], n, dtype=dtype)
                    pot.imultiply(BatchedFactor._wrap(
                        [self._variables[name]], lam))
            potentials.append(pot)

        messages: Dict[Tuple[int, int], BatchedFactor] = {}
        for i in reversed(order):       # collect: leaves toward root
            p = parent[i]
            if p is None:
                continue
            sep = next(s for j, s in self._neighbors[i] if j == p)
            self._batched_message(i, p, potentials, messages, sep, dtype)
        for i in order:                 # distribute: root toward leaves
            for j in children[i]:
                sep = next(s for k, s in self._neighbors[i] if k == j)
                self._batched_message(i, j, potentials, messages, sep, dtype)

        beliefs = BatchedBeliefs(self, potentials, messages)
        z = beliefs.partition()
        bad = np.flatnonzero(~(z > 0.0))
        if bad.size:
            exc = InferenceError(
                f"evidence row {int(bad[0])} has probability 0 under "
                "the model")
            exc.row_index = int(bad[0])
            raise exc
        return beliefs

    def _invalidate(self) -> None:
        """Drop all incremental state; the next calibrate is from scratch."""
        n = len(self.cliques)
        self._potentials = [None] * n
        self._pot_keys = [None] * n
        self._clique_scalars = [1.0] * n
        self._messages = {}
        self._beliefs = [None] * n
        self._evidence = {}
        self._log_partition = None
        self._ready = False

    def _belief(self, i: int) -> Factor:
        """Clique ``i``'s (unnormalized) belief, materialized on demand."""
        belief = self._beliefs[i]
        if belief is None:
            inbound = [self._messages[(j, i)] for j, _ in self._neighbors[i]]
            belief = self._combine(self._potentials[i], inbound)
            self._beliefs[i] = belief
        return belief

    def _dfs_order(self, root: int) -> List[int]:
        order: List[int] = []
        seen = {root}
        stack = [root]
        while stack:
            i = stack.pop()
            order.append(i)
            for j, _ in self._neighbors[i]:
                if j not in seen:
                    seen.add(j)
                    stack.append(j)
        if len(order) != len(self.cliques):
            raise InferenceError(
                "junction tree is disconnected — network factors do not share "
                "variables; query the components separately")
        return order

    # -- queries ----------------------------------------------------------------

    def marginal(self, name: str) -> Dict[str, float]:
        """Posterior marginal of one variable under the calibrated evidence."""
        if not self._ready:
            raise InferenceError("call calibrate() before querying")
        if name in self._evidence:
            return {s: (1.0 if s == self._evidence[name] else 0.0)
                    for s in self._variables[name].states}
        for k, clique in enumerate(self.cliques):
            if name in clique:
                belief = self._belief(k)
                drop = set(belief.names) - {name}
                return belief.marginalize(drop).distribution()
        raise InferenceError(f"variable {name!r} not found in any clique")

    def joint_marginal(self, names: Sequence[str]) -> Factor:
        """Joint posterior of variables that co-occur in one clique."""
        if not self._ready:
            raise InferenceError("call calibrate() before querying")
        wanted = set(names) - set(self._evidence)
        for k, clique in enumerate(self.cliques):
            if wanted <= clique:
                belief = self._belief(k)
                if isinstance(belief, ScalarFactor):
                    continue
                drop = set(belief.names) - wanted
                return belief.marginalize(drop).normalize()
        raise InferenceError(
            f"variables {sorted(wanted)} do not share a clique; use variable "
            "elimination for out-of-clique joints")

    def log_evidence(self) -> float:
        """log P(evidence) from the last calibration."""
        if self._log_partition is None:
            raise InferenceError("call calibrate() before querying")
        return self._log_partition

    @property
    def width(self) -> int:
        """Tree width + 1 = size of the largest clique (cost driver)."""
        return max(len(c) for c in self.cliques)

    @property
    def clique_state_sizes(self) -> List[int]:
        """State-space size (product of cardinalities) of each clique.

        Their sum is the table volume one calibration sweeps — the
        per-item cost driver parallel sharding balances on (DESIGN §14).
        """
        sizes: List[int] = []
        for clique in self.cliques:
            size = 1
            for name in clique:
                size *= len(self._variables[name].states)
            sizes.append(size)
        return sizes

    def __repr__(self) -> str:
        return (f"JunctionTree(cliques={len(self.cliques)}, "
                f"max_clique={self.width})")


class BatchedBeliefs:
    """Calibrated stacked clique beliefs for one evidence matrix.

    The query surface of :meth:`JunctionTree.calibrate_batch`: per-row
    posteriors come out as ``(n_rows, cardinality)`` arrays.  Beliefs
    materialize lazily per clique.  Because message buffers live in the
    tree's reusable arena, consume this object before calling
    ``calibrate_batch`` on the same tree again.
    """

    def __init__(self, tree: JunctionTree,
                 potentials: List[BatchedFactor],
                 messages: Dict[Tuple[int, int], BatchedFactor]):
        self._tree = tree
        self._potentials = potentials
        self._messages = messages
        self._beliefs: List[Optional[BatchedFactor]] = [None] * len(potentials)
        self._z: Optional[np.ndarray] = None

    @property
    def n_rows(self) -> int:
        return self._potentials[0].n_rows

    def _belief(self, i: int) -> BatchedFactor:
        belief = self._beliefs[i]
        if belief is None:
            inbound = [self._messages[(j, i)]
                       for j, _ in self._tree._neighbors[i]]
            if inbound:
                # C-order copy for the same batch-invariance reason as
                # JunctionTree._batched_message: keep the batch axis
                # outermost so per-row reduction order is independent of
                # n_rows.
                belief = BatchedFactor._wrap(
                    self._potentials[i].variables,
                    self._potentials[i].table.copy(order="C"))
                for m in inbound:
                    belief.imultiply(m)
            else:
                belief = self._potentials[i]
            self._beliefs[i] = belief
        return belief

    def partition(self) -> np.ndarray:
        """Per-row evidence mass: the ``(n_rows,)`` Z vector."""
        if self._z is None:
            root = self._tree._schedule()[0][0]
            self._z = self._belief(root).partition()
        return self._z

    def marginal_batch(self, name: str) -> np.ndarray:
        """Normalized posterior rows for one variable: ``(n_rows, card)``.

        Rows where ``name`` was itself observed come out as exact
        one-hot vectors — the indicator encoding zeroes every other
        state bitwise, so no per-row special-casing is needed.
        """
        for k, clique in enumerate(self._tree.cliques):
            if name in clique:
                belief = self._belief(k)
                drop = set(belief.names) - {name}
                marg = belief.marginalize(drop)
                z = marg.table.sum(axis=1)
                bad = np.flatnonzero(~(z > 0.0))
                if bad.size:
                    exc = InferenceError(
                        f"evidence row {int(bad[0])} has probability 0 "
                        "under the model")
                    exc.row_index = int(bad[0])
                    raise exc
                return marg.table / z[:, None]
        raise InferenceError(f"variable {name!r} not found in any clique")

    def __repr__(self) -> str:
        return (f"BatchedBeliefs(rows={self.n_rows}, "
                f"cliques={len(self._potentials)})")
