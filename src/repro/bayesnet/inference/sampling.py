"""Approximate Bayesian-network inference by sampling.

Three estimators with different bias/variance trade-offs:

- forward (ancestral) sampling + rejection: unbiased, wasteful under
  unlikely evidence;
- likelihood weighting: evidence nodes are clamped, samples carry weights;
- Gibbs sampling: a Markov chain over the non-evidence variables, useful
  when evidence makes importance weights degenerate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InferenceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bayesnet.network import BayesianNetwork


def forward_sample(network: "BayesianNetwork", rng: np.random.Generator,
                   n: int) -> List[Dict[str, str]]:
    """Draw ``n`` joint samples in topological order."""
    if n <= 0:
        raise InferenceError("n must be positive")
    order = network.dag.topological_order()
    out: List[Dict[str, str]] = []
    for _ in range(n):
        sample: Dict[str, str] = {}
        for name in order:
            cpt = network.cpt(name)
            parent_states = tuple(sample[p] for p in cpt.parent_names)
            sample[name] = cpt.sample_child(rng, parent_states)
        out.append(sample)
    return out


def rejection_query(network: "BayesianNetwork", rng: np.random.Generator,
                    query: str, evidence: Mapping[str, str], n: int) -> Dict[str, float]:
    """P(query | evidence) by rejection sampling.

    Raises if no sample is consistent with the evidence (the caller should
    fall back to likelihood weighting for rare evidence).
    """
    samples = forward_sample(network, rng, n)
    states = network.variable(query).states
    counts = {s: 0 for s in states}
    accepted = 0
    for sample in samples:
        if all(sample[k] == v for k, v in evidence.items()):
            counts[sample[query]] += 1
            accepted += 1
    if accepted == 0:
        raise InferenceError(
            f"rejection sampling accepted 0 of {n} samples — evidence too "
            "unlikely; use likelihood weighting or Gibbs")
    return {s: c / accepted for s, c in counts.items()}


def likelihood_weighting_query(network: "BayesianNetwork",
                               rng: np.random.Generator, query: str,
                               evidence: Mapping[str, str],
                               n: int) -> Dict[str, float]:
    """P(query | evidence) by likelihood weighting."""
    if n <= 0:
        raise InferenceError("n must be positive")
    evidence = dict(evidence)
    if query in evidence:
        raise InferenceError(f"{query!r} is both queried and observed")
    order = network.dag.topological_order()
    states = network.variable(query).states
    totals = {s: 0.0 for s in states}
    weight_sum = 0.0
    for _ in range(n):
        sample: Dict[str, str] = {}
        weight = 1.0
        for name in order:
            cpt = network.cpt(name)
            parent_states = tuple(sample[p] for p in cpt.parent_names)
            if name in evidence:
                sample[name] = evidence[name]
                weight *= cpt.prob(evidence[name], parent_states)
                if weight == 0.0:
                    break
            else:
                sample[name] = cpt.sample_child(rng, parent_states)
        if weight > 0.0:
            totals[sample[query]] += weight
            weight_sum += weight
    if weight_sum <= 0.0:
        raise InferenceError(
            "likelihood weighting produced zero total weight — evidence has "
            "probability 0 under the model")
    return {s: t / weight_sum for s, t in totals.items()}


def gibbs_query(network: "BayesianNetwork", rng: np.random.Generator,
                query: str, evidence: Mapping[str, str], n: int,
                burn_in: int = 100, thin: int = 1) -> Dict[str, float]:
    """P(query | evidence) by Gibbs sampling over the Markov blanket."""
    if n <= 0 or burn_in < 0 or thin < 1:
        raise InferenceError("require n > 0, burn_in >= 0, thin >= 1")
    evidence = dict(evidence)
    if query in evidence:
        raise InferenceError(f"{query!r} is both queried and observed")
    order = network.dag.topological_order()
    free = [v for v in order if v not in evidence]

    # Initialize with a forward sample consistent with evidence where clamped.
    state: Dict[str, str] = {}
    for name in order:
        cpt = network.cpt(name)
        parent_states = tuple(state[p] for p in cpt.parent_names)
        if name in evidence:
            state[name] = evidence[name]
        else:
            state[name] = cpt.sample_child(rng, parent_states)

    def conditional(name: str) -> Tuple[List[str], np.ndarray]:
        """Full conditional P(name | markov blanket) up to normalization."""
        var = network.variable(name)
        cpt = network.cpt(name)
        children = network.dag.children(name)
        scores = np.empty(var.cardinality)
        for i, s in enumerate(var.states):
            state[name] = s
            parent_states = tuple(state[p] for p in cpt.parent_names)
            score = cpt.prob(s, parent_states)
            for ch in children:
                ch_cpt = network.cpt(ch)
                ch_parents = tuple(state[p] for p in ch_cpt.parent_names)
                score *= ch_cpt.prob(state[ch], ch_parents)
            scores[i] = score
        total = scores.sum()
        if total <= 0.0:
            raise InferenceError(
                f"Gibbs conditional for {name!r} is all-zero — deterministic "
                "structure blocks the chain; use exact inference")
        return list(var.states), scores / total

    states = network.variable(query).states
    counts = {s: 0 for s in states}
    kept = 0
    total_steps = burn_in + n * thin
    ever_stochastic = False
    for step in range(total_steps):
        for name in free:
            options, probs = conditional(name)
            if probs.max() < 1.0 - 1e-12:
                ever_stochastic = True
            state[name] = options[int(rng.choice(len(options), p=probs))]
        if step >= burn_in and (step - burn_in) % thin == 0:
            counts[state[query]] += 1
            kept += 1
    if not ever_stochastic and len(free) > 1:
        # Every full conditional was a point mass at every sweep: the chain
        # is frozen at its initialization by deterministic couplings and
        # the counts reflect one forward sample, not the posterior.
        raise InferenceError(
            "Gibbs chain is frozen by deterministic CPT structure (every "
            "full conditional was a point mass); use exact inference")
    return {s: c / kept for s, c in counts.items()}
