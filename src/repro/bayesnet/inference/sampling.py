"""Approximate Bayesian-network inference by sampling.

Three estimators with different bias/variance trade-offs:

- forward (ancestral) sampling + rejection: unbiased, wasteful under
  unlikely evidence;
- likelihood weighting: evidence nodes are clamped, samples carry weights;
- Gibbs sampling: a Markov chain over the non-evidence variables, useful
  when evidence makes importance weights degenerate.

All estimators are thin dict-in/dict-out adapters over the vectorized
kernels in :mod:`repro.bayesnet.inference.kernels`: samples live in
``n × |V|`` integer state-index matrices and categorical draws are batched
per CPT (inverse-CDF on cumulative rows), so no per-sample Python loop
survives.  The public signatures, validation, and error semantics are
unchanged from the loop-based implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping

import numpy as np

from repro.bayesnet.inference.kernels import CompiledSampler
from repro.errors import InferenceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bayesnet.network import BayesianNetwork

__all__ = [
    "forward_sample",
    "rejection_query",
    "likelihood_weighting_query",
    "gibbs_query",
]


def _sampler(network: "BayesianNetwork") -> CompiledSampler:
    """The network's cached compiled sampler (fresh compile as fallback)."""
    handle = getattr(network, "sampler", None)
    if callable(handle):
        return handle()
    return CompiledSampler(network)


def forward_sample(network: "BayesianNetwork", rng: np.random.Generator,
                   n: int) -> List[Dict[str, str]]:
    """Draw ``n`` joint samples in topological order."""
    if n <= 0:
        raise InferenceError("n must be positive")
    sampler = _sampler(network)
    return sampler.decode_rows(sampler.forward_matrix(rng, n))


def rejection_query(network: "BayesianNetwork", rng: np.random.Generator,
                    query: str, evidence: Mapping[str, str], n: int) -> Dict[str, float]:
    """P(query | evidence) by rejection sampling.

    Accept/reject counts are streamed off the vectorized sample matrix —
    no per-sample dicts are materialized.  Raises if no sample is
    consistent with the evidence (the caller should fall back to
    likelihood weighting for rare evidence).
    """
    if n <= 0:
        raise InferenceError("n must be positive")
    sampler = _sampler(network)
    counts, accepted = sampler.rejection_counts(rng, query, evidence, n)
    if accepted == 0:
        raise InferenceError(
            f"rejection sampling accepted 0 of {n} samples "
            "(acceptance rate 0.0%) — evidence too unlikely; use "
            "likelihood weighting or Gibbs")
    states = network.variable(query).states
    return {s: counts[i] / accepted for i, s in enumerate(states)}


def likelihood_weighting_query(network: "BayesianNetwork",
                               rng: np.random.Generator, query: str,
                               evidence: Mapping[str, str],
                               n: int) -> Dict[str, float]:
    """P(query | evidence) by likelihood weighting."""
    if n <= 0:
        raise InferenceError("n must be positive")
    evidence = dict(evidence)
    if query in evidence:
        raise InferenceError(f"{query!r} is both queried and observed")
    sampler = _sampler(network)
    totals, weight_sum = sampler.weighted_counts(rng, query, evidence, n)
    if weight_sum <= 0.0:
        raise InferenceError(
            "likelihood weighting produced zero total weight — evidence has "
            "probability 0 under the model")
    states = network.variable(query).states
    return {s: totals[i] / weight_sum for i, s in enumerate(states)}


def gibbs_query(network: "BayesianNetwork", rng: np.random.Generator,
                query: str, evidence: Mapping[str, str], n: int,
                burn_in: int = 100, thin: int = 1) -> Dict[str, float]:
    """P(query | evidence) by Gibbs sampling over the Markov blanket.

    Runs a bank of vectorized chains in lockstep (each independently
    burned in); at least ``n`` post-burn-in states are kept in total.
    """
    if n <= 0 or burn_in < 0 or thin < 1:
        raise InferenceError("require n > 0, burn_in >= 0, thin >= 1")
    evidence = dict(evidence)
    if query in evidence:
        raise InferenceError(f"{query!r} is both queried and observed")
    sampler = _sampler(network)
    counts, kept = sampler.gibbs_counts(rng, query, evidence, n,
                                        burn_in=burn_in, thin=thin)
    states = network.variable(query).states
    return {s: counts[i] / kept for i, s in enumerate(states)}
