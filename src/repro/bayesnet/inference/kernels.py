"""Vectorized sampling kernels over integer state-index matrices.

The seed estimators in :mod:`repro.bayesnet.inference.sampling` drew one
sample at a time in a Python loop — every draw paid dict construction,
string keying and a ``rng.choice`` call.  :class:`CompiledSampler`
compiles a network once into flat numpy artifacts and then operates on
``n × |V|`` integer matrices:

- each variable owns one column of state **indices** (its position in the
  network's topological order);
- each CPT is reshaped to a ``(n_parent_configs, cardinality)`` row
  matrix plus its cumulative form; a parent configuration is located by a
  stride dot product over the parent columns;
- categorical draws are batched inverse-CDF lookups
  (``(u[:, None] < cum_rows).argmax(axis=1)``) — one vectorized
  operation per node per batch instead of one ``rng.choice`` per sample.

The public estimators stay dict-in/dict-out thin adapters in
``sampling.py``; this module is the engine room.  Mirroring
:class:`~repro.bayesnet.engine.CompiledNetwork`, a sampler snapshot is
keyed to the network's mutation counter via :attr:`version` so cached
handles can detect staleness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import InferenceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bayesnet.network import BayesianNetwork

#: Parallel Gibbs chains run per query (each burned in independently).
DEFAULT_GIBBS_CHAINS = 32


def one_hot_likelihoods(variable, observations, n_rows: int,
                        dtype=np.float64) -> np.ndarray:
    """Per-row indicator likelihoods for one variable: ``(n_rows, card)``.

    ``observations`` maps row index -> observed state index.  Unobserved
    rows get an all-ones likelihood (the variable stays free); observed
    rows get a one-hot vector.  Multiplying these into a clique
    potential stack is the batched-calibration encoding of evidence:
    exact 0/1 arithmetic keeps the surviving entries bitwise identical
    to the scalar path's evidence slicing, while rows with *different*
    evidence signatures ride through one collect/distribute pass.
    """
    lam = np.ones((n_rows, variable.cardinality), dtype=dtype)
    if observations:
        rows = np.fromiter(observations.keys(), dtype=np.intp,
                           count=len(observations))
        states = np.fromiter(observations.values(), dtype=np.intp,
                             count=len(observations))
        lam[rows] = 0.0
        lam[rows, states] = 1.0
    return lam


class _NodePlan:
    """Flat per-node artifacts: parent columns, strides, CPT row tables."""

    __slots__ = ("name", "column", "cardinality", "parent_columns",
                 "strides", "probs", "cum")

    def __init__(self, name: str, column: int, cardinality: int,
                 parent_columns: np.ndarray, strides: np.ndarray,
                 probs: np.ndarray):
        self.name = name
        self.column = column
        self.cardinality = cardinality
        self.parent_columns = parent_columns   # (k,) intp
        self.strides = strides                 # (k,) int64
        self.probs = probs                     # (n_configs, cardinality)
        cum = np.cumsum(probs, axis=1)
        cum[:, -1] = 1.0  # guard against float drift: u < 1.0 always lands
        self.cum = cum

    def configs(self, matrix: np.ndarray) -> np.ndarray:
        """Flattened parent-configuration index per row of ``matrix``."""
        if self.parent_columns.size == 0:
            return np.zeros(matrix.shape[0], dtype=np.int64)
        return (matrix[:, self.parent_columns] * self.strides).sum(axis=1)


class CompiledSampler:
    """A Bayesian network compiled for batched sampling.

    Immutable snapshot of the network at construction time; compare
    :attr:`version` against ``network.version`` to detect staleness (the
    cached handle in :meth:`BayesianNetwork.sampler` does exactly that).
    """

    def __init__(self, network: "BayesianNetwork"):
        network.validate()
        self._network = network
        self._version = network.version
        self.order: List[str] = list(network.dag.topological_order())
        self._columns: Dict[str, int] = {name: j
                                         for j, name in enumerate(self.order)}
        self.variables = [network.variable(name) for name in self.order]

        self._plans: List[_NodePlan] = []
        for column, name in enumerate(self.order):
            cpt = network.cpt(name)
            cards = [p.cardinality for p in cpt.parents]
            strides = np.ones(len(cards), dtype=np.int64)
            for i in range(len(cards) - 2, -1, -1):
                strides[i] = strides[i + 1] * cards[i + 1]
            parent_columns = np.array(
                [self._columns[p] for p in cpt.parent_names], dtype=np.intp)
            probs = np.ascontiguousarray(
                cpt.table.reshape(-1, cpt.child.cardinality))
            self._plans.append(_NodePlan(name, column,
                                         cpt.child.cardinality,
                                         parent_columns, strides, probs))

        # child links for Gibbs full conditionals: for each node, the
        # plans of its children plus the node's stride within each child's
        # parent configuration (column order => deterministic sweeps).
        self._children: List[List[Tuple[_NodePlan, int]]] = []
        for column, name in enumerate(self.order):
            links: List[Tuple[_NodePlan, int]] = []
            for child in sorted(network.dag.children(name),
                                key=self._columns.__getitem__):
                plan = self._plans[self._columns[child]]
                position = list(
                    network.cpt(child).parent_names).index(name)
                links.append((plan, int(plan.strides[position])))
            self._children.append(links)

    # -- identity ---------------------------------------------------------------

    @property
    def network(self) -> "BayesianNetwork":
        return self._network

    @property
    def version(self) -> int:
        """The network mutation count this sampler was compiled against."""
        return self._version

    def column(self, name: str) -> int:
        try:
            return self._columns[name]
        except KeyError:
            raise InferenceError(f"unknown variable {name!r}") from None

    def state_index(self, name: str, state: str) -> int:
        var = self.variables[self.column(name)]
        try:
            return var.index_of(state)
        except Exception as exc:
            raise InferenceError(
                f"unknown state {state!r} for variable {name!r}") from exc

    def evidence_columns(self, evidence: Mapping[str, str]) -> Dict[int, int]:
        """Evidence as {column: state index}, validated."""
        return {self.column(name): self.state_index(name, state)
                for name, state in evidence.items()}

    # -- kernels ----------------------------------------------------------------

    def _forward(self, rng: np.random.Generator, n: int,
                 clamp: Optional[Dict[int, int]] = None,
                 weighted: bool = False
                 ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Ancestral sampling of ``n`` rows, topological column order.

        ``clamp`` pins columns to fixed state indices (evidence); with
        ``weighted`` the likelihood-weighting weights — the product of
        each clamped node's probability given its sampled parents — come
        back alongside the matrix.
        """
        if n <= 0:
            raise InferenceError("n must be positive")
        clamp = clamp or {}
        matrix = np.zeros((n, len(self.order)), dtype=np.int64)
        weights = np.ones(n) if weighted else None
        for plan in self._plans:
            configs = plan.configs(matrix)
            pinned = clamp.get(plan.column)
            if pinned is not None:
                matrix[:, plan.column] = pinned
                if weighted:
                    weights *= plan.probs[configs, pinned]
            else:
                u = rng.random(n)
                matrix[:, plan.column] = (
                    u[:, None] < plan.cum[configs]).argmax(axis=1)
        return matrix, weights

    def forward_matrix(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` joint samples as an ``(n, |V|)`` state-index matrix."""
        matrix, _ = self._forward(rng, n)
        return matrix

    def likelihood_matrix(self, rng: np.random.Generator,
                          evidence: Mapping[str, str],
                          n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Likelihood-weighted samples: (state matrix, weight vector)."""
        clamp = self.evidence_columns(evidence)
        matrix, weights = self._forward(rng, n, clamp=clamp, weighted=True)
        return matrix, weights

    def decode_rows(self, matrix: np.ndarray) -> List[Dict[str, str]]:
        """State-index rows back to the historical list-of-dicts form."""
        columns = [np.asarray(var.states, dtype=object)[matrix[:, j]]
                   for j, var in enumerate(self.variables)]
        return [dict(zip(self.order, row)) for row in zip(*columns)]

    def rejection_counts(self, rng: np.random.Generator, query: str,
                         evidence: Mapping[str, str],
                         n: int) -> Tuple[np.ndarray, int]:
        """Accepted-state counts for the query column, streamed.

        Returns ``(counts, accepted)`` where ``counts[i]`` is the number
        of evidence-consistent samples with query state ``i`` — no
        per-sample dicts are ever materialized.
        """
        clamp = self.evidence_columns(evidence)
        qcol = self.column(query)
        matrix = self.forward_matrix(rng, n)
        mask = np.ones(n, dtype=bool)
        for column, index in clamp.items():
            mask &= matrix[:, column] == index
        accepted = int(mask.sum())
        counts = np.bincount(matrix[mask, qcol],
                             minlength=self.variables[qcol].cardinality)
        return counts, accepted

    def weighted_counts(self, rng: np.random.Generator, query: str,
                        evidence: Mapping[str, str],
                        n: int) -> Tuple[np.ndarray, float]:
        """Likelihood-weighting totals per query state, plus weight sum."""
        qcol = self.column(query)
        matrix, weights = self.likelihood_matrix(rng, evidence, n)
        totals = np.bincount(matrix[:, qcol], weights=weights,
                             minlength=self.variables[qcol].cardinality)
        return totals, float(weights.sum())

    # -- Gibbs ------------------------------------------------------------------

    def gibbs_counts(self, rng: np.random.Generator, query: str,
                     evidence: Mapping[str, str], n: int,
                     burn_in: int = 100, thin: int = 1,
                     n_chains: int = DEFAULT_GIBBS_CHAINS
                     ) -> Tuple[np.ndarray, int]:
        """Kept-state counts from ``n_chains`` vectorized Gibbs chains.

        All chains advance in lockstep: one sweep updates every free
        variable across every chain with batched full-conditional draws.
        Preserves the seed semantics callers rely on — an all-zero full
        conditional raises, and a chain frozen by deterministic CPT
        structure (every conditional a point mass at every sweep) raises
        instead of silently reporting one forward sample.
        """
        clamp = self.evidence_columns(evidence)
        qcol = self.column(query)
        free = [plan for plan in self._plans if plan.column not in clamp]
        m = max(1, min(int(n_chains), n))
        keeps = -(-n // m)  # ceil: kept samples total m * keeps >= n

        matrix, _ = self._forward(rng, m, clamp=clamp)
        counts = np.zeros(self.variables[qcol].cardinality, dtype=np.int64)
        kept = 0
        ever_stochastic = False
        total_sweeps = burn_in + keeps * thin
        for sweep in range(total_sweeps):
            for plan in free:
                scores = np.empty((m, plan.cardinality))
                own_configs = plan.configs(matrix)
                bases = []
                for child, stride in self._children[plan.column]:
                    base = (child.configs(matrix)
                            - matrix[:, plan.column] * stride)
                    bases.append((child, stride, base))
                for s in range(plan.cardinality):
                    score = plan.probs[own_configs, s].copy()
                    for child, stride, base in bases:
                        score *= child.probs[base + s * stride,
                                             matrix[:, child.column]]
                    scores[:, s] = score
                totals = scores.sum(axis=1)
                if np.any(totals <= 0.0):
                    raise InferenceError(
                        f"Gibbs conditional for {plan.name!r} is all-zero — "
                        "deterministic structure blocks the chain; use "
                        "exact inference")
                probs = scores / totals[:, None]
                if np.any(probs.max(axis=1) < 1.0 - 1e-12):
                    ever_stochastic = True
                cum = np.cumsum(probs, axis=1)
                cum[:, -1] = 1.0
                u = rng.random(m)
                matrix[:, plan.column] = (u[:, None] < cum).argmax(axis=1)
            if sweep >= burn_in and (sweep - burn_in) % thin == 0:
                counts += np.bincount(
                    matrix[:, qcol],
                    minlength=self.variables[qcol].cardinality)
                kept += m
        if not ever_stochastic and len(free) > 1:
            # Every full conditional was a point mass at every sweep: the
            # chains are frozen at their initialization by deterministic
            # couplings and the counts reflect forward samples, not the
            # posterior.
            raise InferenceError(
                "Gibbs chain is frozen by deterministic CPT structure "
                "(every full conditional was a point mass); use exact "
                "inference")
        return counts, kept

    def __repr__(self) -> str:
        return (f"CompiledSampler({self._network.name!r}, "
                f"nodes={len(self.order)}, version={self._version})")
