"""Inference algorithms for discrete Bayesian networks.

- :mod:`repro.bayesnet.inference.variable_elimination` — exact, query-driven.
- :mod:`repro.bayesnet.inference.junction_tree` — exact, all-marginals.
- :mod:`repro.bayesnet.inference.sampling` — forward / likelihood weighting /
  Gibbs approximations.
- :mod:`repro.bayesnet.inference.kernels` — the vectorized state-index-matrix
  kernels behind the sampling estimators.
"""

from repro.bayesnet.inference.junction_tree import JunctionTree
from repro.bayesnet.inference.kernels import CompiledSampler
from repro.bayesnet.inference.sampling import (
    forward_sample,
    gibbs_query,
    likelihood_weighting_query,
    rejection_query,
)
from repro.bayesnet.inference.variable_elimination import variable_elimination

__all__ = [
    "CompiledSampler",
    "JunctionTree",
    "forward_sample",
    "gibbs_query",
    "likelihood_weighting_query",
    "rejection_query",
    "variable_elimination",
]
