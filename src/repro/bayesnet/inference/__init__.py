"""Inference algorithms for discrete Bayesian networks.

- :mod:`repro.bayesnet.inference.variable_elimination` — exact, query-driven.
- :mod:`repro.bayesnet.inference.junction_tree` — exact, all-marginals.
- :mod:`repro.bayesnet.inference.sampling` — forward / likelihood weighting /
  Gibbs approximations.
"""

from repro.bayesnet.inference.junction_tree import JunctionTree
from repro.bayesnet.inference.sampling import (
    forward_sample,
    gibbs_query,
    likelihood_weighting_query,
    rejection_query,
)
from repro.bayesnet.inference.variable_elimination import variable_elimination

__all__ = [
    "JunctionTree",
    "forward_sample",
    "gibbs_query",
    "likelihood_weighting_query",
    "rejection_query",
    "variable_elimination",
]
