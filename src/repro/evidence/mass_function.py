"""Frames of discernment and basic belief assignments (mass functions).

A mass function assigns belief mass to *sets* of hypotheses rather than
single outcomes, which is what lets evidence theory represent epistemic
ignorance (mass on non-singletons) and — via mass on the full frame —
near-ontological "we cannot distinguish at all" states.  The paper's
Table I "car/pedestrian" column is precisely mass assigned to the set
{car, pedestrian}.
"""

from __future__ import annotations

import math
from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import EvidenceError
from repro.probability.distributions import Categorical

Hypothesis = str
HypothesisSet = FrozenSet[str]


class FrameOfDiscernment:
    """The exhaustive, mutually exclusive hypothesis set Theta."""

    def __init__(self, hypotheses: Sequence[str]):
        hyps = tuple(str(h) for h in hypotheses)
        if len(hyps) < 2:
            raise EvidenceError("a frame needs at least two hypotheses")
        if len(set(hyps)) != len(hyps):
            raise EvidenceError(f"duplicate hypotheses in frame: {hyps}")
        self._hypotheses = hyps

    @property
    def hypotheses(self) -> Tuple[str, ...]:
        return self._hypotheses

    @property
    def theta(self) -> HypothesisSet:
        return frozenset(self._hypotheses)

    def __contains__(self, hypothesis: str) -> bool:
        return hypothesis in self._hypotheses

    def __len__(self) -> int:
        return len(self._hypotheses)

    def subset(self, members: Iterable[str]) -> HypothesisSet:
        s = frozenset(str(m) for m in members)
        extra = s - self.theta
        if extra:
            raise EvidenceError(
                f"hypotheses {sorted(extra)} are outside the frame "
                f"{sorted(self.theta)} — an ontological extension requires a "
                "new frame, not a subset")
        return s

    def power_set(self, include_empty: bool = False) -> List[HypothesisSet]:
        items = list(self._hypotheses)
        subsets = chain.from_iterable(
            combinations(items, r) for r in range(0 if include_empty else 1,
                                                  len(items) + 1))
        return [frozenset(s) for s in subsets]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrameOfDiscernment):
            return NotImplemented
        return set(self._hypotheses) == set(other._hypotheses)

    def __hash__(self) -> int:
        return hash(frozenset(self._hypotheses))

    def __repr__(self) -> str:
        return f"FrameOfDiscernment({list(self._hypotheses)})"


class MassFunction:
    """A basic belief assignment m: 2^Theta -> [0, 1] with sum 1, m({}) = 0."""

    def __init__(self, frame: FrameOfDiscernment,
                 masses: Mapping[Iterable[str], float], *, atol: float = 1e-9):
        self.frame = frame
        clean: Dict[HypothesisSet, float] = {}
        for focal, mass in masses.items():
            fs = frame.subset(focal if not isinstance(focal, str) else [focal])
            mass = float(mass)
            if mass < -atol:
                raise EvidenceError(f"negative mass {mass} on {sorted(fs)}")
            if not fs and mass > atol:
                raise EvidenceError("mass on the empty set is not allowed "
                                    "(normalized mass functions only)")
            if mass > atol:
                clean[fs] = clean.get(fs, 0.0) + mass
        total = sum(clean.values())
        if abs(total - 1.0) > max(atol, 1e-6):
            raise EvidenceError(f"masses must sum to 1, got {total}")
        self._masses = {k: v / total for k, v in clean.items()}

    # -- constructors -----------------------------------------------------------

    @classmethod
    def vacuous(cls, frame: FrameOfDiscernment) -> "MassFunction":
        """Total ignorance: all mass on Theta."""
        return cls(frame, {frame.theta: 1.0})

    @classmethod
    def certain(cls, frame: FrameOfDiscernment, hypothesis: str) -> "MassFunction":
        return cls(frame, {frozenset([hypothesis]): 1.0})

    @classmethod
    def from_probabilities(cls, frame: FrameOfDiscernment,
                           probabilities: Mapping[str, float]) -> "MassFunction":
        """Bayesian mass function (all focal elements singletons)."""
        return cls(frame, {frozenset([h]): p for h, p in probabilities.items()})

    @classmethod
    def simple_support(cls, frame: FrameOfDiscernment, focal: Iterable[str],
                       support: float) -> "MassFunction":
        """Simple support function: mass ``support`` on one set, rest on Theta."""
        if not 0.0 <= support <= 1.0:
            raise EvidenceError("support must be in [0, 1]")
        fs = frame.subset(focal)
        if fs == frame.theta:
            return cls.vacuous(frame)
        masses = {fs: support}
        masses[frame.theta] = masses.get(frame.theta, 0.0) + 1.0 - support
        return cls(frame, masses)

    # -- accessors ----------------------------------------------------------------

    @property
    def focal_sets(self) -> List[HypothesisSet]:
        return sorted(self._masses, key=lambda s: (len(s), sorted(s)))

    def mass(self, focal: Iterable[str]) -> float:
        fs = self.frame.subset(focal if not isinstance(focal, str) else [focal])
        return self._masses.get(fs, 0.0)

    def items(self) -> List[Tuple[HypothesisSet, float]]:
        return [(s, self._masses[s]) for s in self.focal_sets]

    # -- belief measures -------------------------------------------------------------

    def belief(self, subset: Iterable[str]) -> float:
        """Bel(A) = sum of mass of focal sets contained in A (lower bound)."""
        a = self.frame.subset(subset if not isinstance(subset, str) else [subset])
        return sum(m for s, m in self._masses.items() if s and s <= a)

    def plausibility(self, subset: Iterable[str]) -> float:
        """Pl(A) = sum of mass of focal sets intersecting A (upper bound)."""
        a = self.frame.subset(subset if not isinstance(subset, str) else [subset])
        return sum(m for s, m in self._masses.items() if s & a)

    def belief_interval(self, subset: Iterable[str]) -> Tuple[float, float]:
        """[Bel(A), Pl(A)] — the evidential probability interval of A."""
        return self.belief(subset), self.plausibility(subset)

    def commonality(self, subset: Iterable[str]) -> float:
        """Q(A) = sum of mass of focal sets containing A."""
        a = self.frame.subset(subset if not isinstance(subset, str) else [subset])
        if not a:
            return 1.0
        return sum(m for s, m in self._masses.items() if a <= s)

    def ignorance(self, subset: Iterable[str]) -> float:
        """Pl(A) - Bel(A): the epistemic width of the interval on A."""
        bel, pl = self.belief_interval(subset)
        return pl - bel

    def total_ignorance_mass(self) -> float:
        """Mass on the full frame Theta — global don't-know content."""
        return self._masses.get(self.frame.theta, 0.0)

    def nonspecificity(self) -> float:
        """Dubois-Prade nonspecificity N(m) = sum m(A) log2 |A|.

        Zero iff Bayesian (singleton-focal); log2 |Theta| for the vacuous
        assignment.  A scalar measure of the epistemic (imprecision)
        content of the evidence.
        """
        return sum(m * math.log2(len(s)) for s, m in self._masses.items() if s)

    def is_bayesian(self, atol: float = 1e-12) -> bool:
        return all(len(s) == 1 for s, m in self._masses.items() if m > atol)

    def is_consonant(self) -> bool:
        """True when focal sets are nested (possibility-theory compatible)."""
        focal = sorted((s for s in self._masses), key=len)
        return all(a <= b for a, b in zip(focal, focal[1:]))

    # -- operations --------------------------------------------------------------------

    def discount(self, reliability: float) -> "MassFunction":
        """Shafer discounting: scale masses by reliability, rest to Theta.

        Models a source whose trustworthiness is itself epistemically
        uncertain (e.g. a sensor channel with known failure modes).
        """
        if not 0.0 <= reliability <= 1.0:
            raise EvidenceError("reliability must be in [0, 1]")
        masses: Dict[HypothesisSet, float] = {}
        for s, m in self._masses.items():
            masses[s] = masses.get(s, 0.0) + reliability * m
        theta = self.frame.theta
        masses[theta] = masses.get(theta, 0.0) + (1.0 - reliability)
        return MassFunction(self.frame, masses)

    def condition(self, subset: Iterable[str]) -> "MassFunction":
        """Dempster conditioning on evidence "truth is in A"."""
        a = self.frame.subset(subset)
        if not a:
            raise EvidenceError("cannot condition on the empty set")
        masses: Dict[HypothesisSet, float] = {}
        for s, m in self._masses.items():
            inter = s & a
            if inter:
                masses[inter] = masses.get(inter, 0.0) + m
        total = sum(masses.values())
        if total <= 0.0:
            raise EvidenceError(
                f"conditioning on {sorted(a)} conflicts totally with the evidence")
        return MassFunction(self.frame, {s: m / total for s, m in masses.items()})

    def to_categorical_pignistic(self) -> Categorical:
        """Pignistic (betting) probability as a Categorical."""
        probs = {h: 0.0 for h in self.frame.hypotheses}
        for s, m in self._masses.items():
            share = m / len(s)
            for h in s:
                probs[h] += share
        return Categorical(probs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MassFunction):
            return NotImplemented
        if self.frame != other.frame:
            return False
        keys = set(self._masses) | set(other._masses)
        return all(math.isclose(self._masses.get(k, 0.0), other._masses.get(k, 0.0),
                                abs_tol=1e-9) for k in keys)

    def __repr__(self) -> str:
        inner = ", ".join(f"{{{','.join(sorted(s))}}}: {m:.4g}"
                          for s, m in self.items())
        return f"MassFunction({inner})"
