"""Combination rules for independent bodies of evidence.

Different rules embody different attitudes to *conflict* between sources —
the design choice DESIGN.md flags for ablation: Dempster renormalizes
conflict away (optimistic), Yager sends it to total ignorance
(conservative), Dubois-Prade sends it to the union of the conflicting sets
(intermediate), averaging treats sources as samples rather than
independent proofs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

from repro.errors import EvidenceError
from repro.evidence.mass_function import FrameOfDiscernment, HypothesisSet, MassFunction


def _check_frames(a: MassFunction, b: MassFunction) -> FrameOfDiscernment:
    if a.frame != b.frame:
        raise EvidenceError(
            f"cannot combine evidence on different frames "
            f"{sorted(a.frame.theta)} vs {sorted(b.frame.theta)}")
    return a.frame


def conflict_mass(a: MassFunction, b: MassFunction) -> float:
    """Total mass K assigned to contradictory intersections."""
    _check_frames(a, b)
    k = 0.0
    for s1, m1 in a.items():
        for s2, m2 in b.items():
            if not (s1 & s2):
                k += m1 * m2
    return k


def combine_dempster(a: MassFunction, b: MassFunction) -> MassFunction:
    """Dempster's rule: conjunctive combination, conflict renormalized.

    Raises when the sources are in total conflict (K = 1), where the rule
    is undefined — the classic Zadeh pathology.
    """
    frame = _check_frames(a, b)
    masses: Dict[HypothesisSet, float] = {}
    k = 0.0
    for s1, m1 in a.items():
        for s2, m2 in b.items():
            inter = s1 & s2
            if inter:
                masses[inter] = masses.get(inter, 0.0) + m1 * m2
            else:
                k += m1 * m2
    if k >= 1.0 - 1e-12:
        raise EvidenceError(
            "total conflict between sources (K = 1); Dempster's rule is "
            "undefined — consider Yager's rule or source discounting")
    norm = 1.0 - k
    return MassFunction(frame, {s: m / norm for s, m in masses.items()})


def combine_yager(a: MassFunction, b: MassFunction) -> MassFunction:
    """Yager's rule: conflict mass goes to total ignorance (Theta).

    Conservative: disagreement between sources *increases* the reported
    epistemic uncertainty instead of being silently renormalized.
    """
    frame = _check_frames(a, b)
    masses: Dict[HypothesisSet, float] = {}
    k = 0.0
    for s1, m1 in a.items():
        for s2, m2 in b.items():
            inter = s1 & s2
            if inter:
                masses[inter] = masses.get(inter, 0.0) + m1 * m2
            else:
                k += m1 * m2
    if k > 0.0:
        theta = frame.theta
        masses[theta] = masses.get(theta, 0.0) + k
    return MassFunction(frame, masses)


def combine_dubois_prade(a: MassFunction, b: MassFunction) -> MassFunction:
    """Dubois-Prade rule: conflicting pairs contribute to the *union*.

    Keeps conflict information local: if one source says {car} and the
    other {pedestrian}, the combination supports {car, pedestrian} rather
    than global ignorance.
    """
    frame = _check_frames(a, b)
    masses: Dict[HypothesisSet, float] = {}
    for s1, m1 in a.items():
        for s2, m2 in b.items():
            inter = s1 & s2
            target = inter if inter else (s1 | s2)
            masses[target] = masses.get(target, 0.0) + m1 * m2
    return MassFunction(frame, masses)


def combine_disjunctive(a: MassFunction, b: MassFunction) -> MassFunction:
    """Disjunctive rule: m(A u B) — appropriate when *at least one* source
    is reliable but we do not know which."""
    frame = _check_frames(a, b)
    masses: Dict[HypothesisSet, float] = {}
    for s1, m1 in a.items():
        for s2, m2 in b.items():
            union = s1 | s2
            masses[union] = masses.get(union, 0.0) + m1 * m2
    return MassFunction(frame, masses)


def combine_averaging(sources: Sequence[MassFunction]) -> MassFunction:
    """Mixing rule: arithmetic mean of mass functions.

    Appropriate when sources are statistically dependent (e.g. experts who
    read the same report) and conjunctive combination would double-count.
    """
    if not sources:
        raise EvidenceError("need at least one source to average")
    frame = sources[0].frame
    for s in sources[1:]:
        if s.frame != frame:
            raise EvidenceError("all sources must share a frame")
    masses: Dict[HypothesisSet, float] = {}
    w = 1.0 / len(sources)
    for src in sources:
        for s, m in src.items():
            masses[s] = masses.get(s, 0.0) + w * m
    return MassFunction(frame, masses)


def combine_many(sources: Sequence[MassFunction], rule: str = "dempster") -> MassFunction:
    """Fold a sequence of sources with the named rule.

    Note: Yager's and Dubois-Prade's rules are not associative; we fold
    left-to-right, which is the usual streaming-fusion convention.
    """
    rules = {
        "dempster": combine_dempster,
        "yager": combine_yager,
        "dubois_prade": combine_dubois_prade,
        "disjunctive": combine_disjunctive,
    }
    if rule == "averaging":
        return combine_averaging(sources)
    if rule not in rules:
        raise EvidenceError(f"unknown combination rule {rule!r}; "
                            f"choose from {sorted(rules) + ['averaging']}")
    if not sources:
        raise EvidenceError("need at least one source")
    out = sources[0]
    for src in sources[1:]:
        out = rules[rule](out, src)
    return out
