"""Evidential networks: Dempster-Shafer theory on a Bayesian-network engine.

Implements the construction of Simon, Weber & Evsukoff ("Bayesian networks
inference algorithm to implement Dempster-Shafer theory in reliability
analysis", ref. [8] of the paper): each evidential variable's state space
is the set of *focal elements* (subsets of its frame of discernment), so a
standard BN over these extended states propagates belief masses exactly.
Posterior belief and plausibility of any hypothesis set are then sums over
the posterior mass of compatible focal states.

This is the machinery behind the paper's §V-B claim that the BN + evidence
theory combination "incorporates the different types of uncertainty":

- aleatory — the mass values themselves;
- epistemic — mass on non-singleton focal sets (e.g. {car, pedestrian});
- ontological — an explicit ``unknown`` hypothesis in the frame.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.engine import InferenceEngine
from repro.bayesnet.network import BayesianNetwork
from repro.bayesnet.variable import Variable
from repro.errors import EvidenceError
from repro.evidence.mass_function import FrameOfDiscernment, MassFunction

SET_SEPARATOR = "|"


def focal_label(focal: Iterable[str]) -> str:
    """Canonical state label of a focal set, e.g. {car, pedestrian} ->
    'car|pedestrian' (members sorted)."""
    members = sorted(set(focal))
    if not members:
        raise EvidenceError("empty focal set has no label")
    return SET_SEPARATOR.join(members)


def label_to_set(label: str) -> FrozenSet[str]:
    return frozenset(label.split(SET_SEPARATOR))


class EvidentialNode:
    """A variable whose BN states are the focal elements of a frame."""

    def __init__(self, name: str, frame: FrameOfDiscernment,
                 focal_sets: Optional[Sequence[Iterable[str]]] = None):
        self.name = name
        self.frame = frame
        if focal_sets is None:
            sets = frame.power_set()
        else:
            sets = [frame.subset(fs) for fs in focal_sets]
            if not sets:
                raise EvidenceError("at least one focal set required")
            seen = set()
            for s in sets:
                if s in seen:
                    raise EvidenceError(f"duplicate focal set {sorted(s)}")
                seen.add(s)
        self.focal_sets: List[FrozenSet[str]] = sorted(
            sets, key=lambda s: (len(s), sorted(s)))
        if len(self.focal_sets) < 2:
            # A BN variable needs >= 2 states; pad with Theta.
            theta = frame.theta
            if theta not in self.focal_sets:
                self.focal_sets.append(theta)
            else:
                raise EvidenceError(
                    f"node {name!r} needs at least two focal states")
        self.variable = Variable(name, [focal_label(s) for s in self.focal_sets])

    def mass_to_distribution(self, m: MassFunction) -> Dict[str, float]:
        """Map a mass function onto this node's focal-state distribution."""
        if m.frame != self.frame:
            raise EvidenceError(f"mass function frame does not match node {self.name!r}")
        dist = {focal_label(s): 0.0 for s in self.focal_sets}
        for s, mass in m.items():
            label = focal_label(s)
            if label not in dist:
                raise EvidenceError(
                    f"mass on {sorted(s)} but node {self.name!r} does not "
                    f"include that focal set; declared: "
                    f"{[sorted(f) for f in self.focal_sets]}")
            dist[label] = mass
        return dist

    def distribution_to_mass(self, dist: Mapping[str, float]) -> MassFunction:
        """Posterior focal-state distribution back to a mass function."""
        masses = {label_to_set(label): p for label, p in dist.items() if p > 0.0}
        if not masses:
            raise EvidenceError("empty distribution")
        return MassFunction(self.frame, masses)

    def __repr__(self) -> str:
        return (f"EvidentialNode({self.name!r}, "
                f"focal_sets={[sorted(s) for s in self.focal_sets]})")


class EvidentialNetwork:
    """A DAG of evidential nodes with mass-function CPTs.

    Construction mirrors :class:`~repro.bayesnet.network.BayesianNetwork`,
    but priors and conditional rows are :class:`MassFunction` objects, and
    queries return belief/plausibility intervals.
    """

    def __init__(self, name: str = "evidential-network"):
        self.name = name
        self._bn = BayesianNetwork(name + "-bn")
        self._nodes: Dict[str, EvidentialNode] = {}

    @property
    def node_names(self) -> List[str]:
        return self._bn.node_names

    def node(self, name: str) -> EvidentialNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise EvidenceError(f"unknown evidential node {name!r}") from None

    def add_root(self, node: EvidentialNode, prior: MassFunction) -> None:
        dist = node.mass_to_distribution(prior)
        self._bn.add_cpt(CPT.prior(node.variable, dist))
        self._nodes[node.name] = node

    def add_child(self, node: EvidentialNode, parents: Sequence[str],
                  rows: Mapping[Tuple[str, ...], MassFunction]) -> None:
        """Add a child whose conditional rows are mass functions.

        ``rows`` keys are tuples of parent *focal labels* (one per parent,
        e.g. ``("car|pedestrian",)``); every parent focal-state combination
        must be present.
        """
        parent_nodes = [self.node(p) for p in parents]
        table_rows: Dict[Tuple[str, ...], Dict[str, float]] = {}
        for key, m in rows.items():
            if len(key) != len(parents):
                raise EvidenceError(f"row key {key!r} does not match parents {parents}")
            table_rows[tuple(key)] = node.mass_to_distribution(m)
        try:
            cpt = CPT.from_dict(node.variable,
                                [p.variable for p in parent_nodes], table_rows)
        except Exception as exc:
            raise EvidenceError(f"invalid conditional rows for {node.name!r}: {exc}") from exc
        self._bn.add_cpt(cpt)
        self._nodes[node.name] = node

    # -- queries ------------------------------------------------------------------

    def engine(self) -> InferenceEngine:
        """The compiled engine of the underlying focal-state BN.

        All posterior-mass queries route through this handle, so repeated
        interval queries (removal sweeps, EXT-C comparisons) reuse one
        compiled plan set instead of re-querying the raw network.
        """
        return self._bn.engine()

    def _evidence_to_states(self, evidence: Mapping[str, str]) -> Dict[str, str]:
        out = {}
        for name, value in evidence.items():
            node = self.node(name)
            # Accept either a focal label or a single hypothesis name.
            if SET_SEPARATOR in value or value in node.variable.states:
                label = focal_label(label_to_set(value))
            else:
                label = focal_label([value])
            if label not in node.variable.states:
                raise EvidenceError(
                    f"evidence state {value!r} is not a focal set of {name!r}")
            out[name] = label
        return out

    def posterior_mass(self, target: str,
                       evidence: Mapping[str, str] = None) -> MassFunction:
        """Posterior mass function of a node given (focal-state) evidence."""
        node = self.node(target)
        dist = self.engine().query(target,
                                   self._evidence_to_states(evidence or {}))
        return node.distribution_to_mass(dist)

    def posterior_mass_batch(self, target: str,
                             evidence_rows: Sequence[Mapping[str, str]]
                             ) -> List[MassFunction]:
        """Posterior masses for many evidence rows in one batched sweep.

        The evidential twin of
        :meth:`~repro.bayesnet.engine.CompiledNetwork.query_batch`: rows
        sharing an evidence signature are answered from one cached joint.
        """
        node = self.node(target)
        rows = [self._evidence_to_states(r or {}) for r in evidence_rows]
        dists = self.engine().query_batch(target, rows)
        return [node.distribution_to_mass(d) for d in dists]

    def belief_plausibility(self, target: str, hypothesis_set: Iterable[str],
                            evidence: Mapping[str, str] = None) -> Tuple[float, float]:
        """[Bel(A), Pl(A)] of a hypothesis set at ``target``."""
        m = self.posterior_mass(target, evidence)
        return m.belief_interval(hypothesis_set)

    def singleton_intervals(self, target: str,
                            evidence: Mapping[str, str] = None
                            ) -> Dict[str, Tuple[float, float]]:
        """[Bel, Pl] for every singleton hypothesis of the target's frame."""
        m = self.posterior_mass(target, evidence)
        return {h: m.belief_interval([h]) for h in m.frame.hypotheses}

    def pignistic(self, target: str,
                  evidence: Mapping[str, str] = None) -> Dict[str, float]:
        """Point (betting) probabilities at the decision boundary."""
        m = self.posterior_mass(target, evidence)
        return m.to_categorical_pignistic().probabilities

    def as_bayesian_network(self) -> BayesianNetwork:
        """The underlying focal-state BN (for inspection or benchmarks)."""
        return self._bn

    def __repr__(self) -> str:
        return f"EvidentialNetwork({self.name!r}, nodes={len(self._nodes)})"
