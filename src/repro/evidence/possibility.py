"""Possibility theory: the consonant corner of evidence theory.

A possibility distribution assigns each hypothesis a degree in [0, 1] with
max = 1; it is equivalent to a *consonant* mass function (nested focal
sets) and to a normalized fuzzy set.  Possibility/necessity are the
max-based counterparts of plausibility/belief, and the conversion
functions here connect three of the framework's uncertainty languages —
fuzzy membership, mass functions, and probability bounds — so an analyst
can move an elicited quantity between them without ad-hoc re-elicitation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import EvidenceError
from repro.evidence.mass_function import FrameOfDiscernment, MassFunction


class PossibilityDistribution:
    """pi: Theta -> [0, 1] with max pi = 1 (normalized)."""

    def __init__(self, frame: FrameOfDiscernment,
                 degrees: Mapping[str, float], *, atol: float = 1e-9):
        self.frame = frame
        missing = set(frame.hypotheses) - set(degrees)
        if missing:
            raise EvidenceError(f"degrees missing for {sorted(missing)}")
        extra = set(degrees) - set(frame.hypotheses)
        if extra:
            raise EvidenceError(f"degrees for unknown hypotheses {sorted(extra)}")
        self._pi = {h: float(degrees[h]) for h in frame.hypotheses}
        for h, v in self._pi.items():
            if not 0.0 <= v <= 1.0 + atol:
                raise EvidenceError(f"degree of {h!r} must be in [0, 1]")
        if abs(max(self._pi.values()) - 1.0) > max(atol, 1e-6):
            raise EvidenceError("a normalized possibility distribution needs "
                                "max degree 1")

    def degree(self, hypothesis: str) -> float:
        if hypothesis not in self._pi:
            raise EvidenceError(f"unknown hypothesis {hypothesis!r}")
        return self._pi[hypothesis]

    def possibility(self, event: Iterable[str]) -> float:
        """Pos(A) = max over members (0 for the empty event)."""
        members = list(event)
        for m in members:
            if m not in self._pi:
                raise EvidenceError(f"unknown hypothesis {m!r}")
        if not members:
            return 0.0
        return max(self._pi[m] for m in members)

    def necessity(self, event: Iterable[str]) -> float:
        """Nec(A) = 1 - Pos(complement of A)."""
        members = set(event)
        complement = set(self.frame.hypotheses) - members
        return 1.0 - self.possibility(complement)

    def to_mass_function(self) -> MassFunction:
        """The consonant mass function with matching Pl = Pos, Bel = Nec.

        Focal sets are the level cuts {h : pi(h) >= alpha} at the distinct
        degrees, each with mass equal to the drop to the next level.
        """
        degrees = sorted(set(self._pi.values()), reverse=True)
        masses: Dict[frozenset, float] = {}
        previous = None
        for i, level in enumerate(degrees):
            cut = frozenset(h for h, v in self._pi.items() if v >= level)
            next_level = degrees[i + 1] if i + 1 < len(degrees) else 0.0
            mass = level - next_level
            if mass > 0.0:
                masses[cut] = masses.get(cut, 0.0) + mass
            previous = cut
        return MassFunction(self.frame, masses)

    @classmethod
    def from_mass_function(cls, m: MassFunction) -> "PossibilityDistribution":
        """Contour function pi(h) = Pl({h}); exact iff ``m`` is consonant."""
        if not m.is_consonant():
            raise EvidenceError(
                "mass function is not consonant; its contour function would "
                "lose information — use belief/plausibility directly")
        degrees = {h: m.plausibility([h]) for h in m.frame.hypotheses}
        return cls(m.frame, degrees)

    @classmethod
    def from_fuzzy_membership(cls, frame: FrameOfDiscernment,
                              membership: Mapping[str, float]
                              ) -> "PossibilityDistribution":
        """Zadeh's bridge: a normalized fuzzy restriction IS a possibility
        distribution."""
        return cls(frame, membership)

    def probability_bounds(self, event: Iterable[str]
                           ) -> Tuple[float, float]:
        """[Nec, Pos] bound every probability consistent with pi."""
        return self.necessity(event), self.possibility(event)

    def __repr__(self) -> str:
        inner = ", ".join(f"{h}: {v:.3g}" for h, v in self._pi.items())
        return f"PossibilityDistribution({{{inner}}})"
