"""Evidence theory (Dempster-Shafer) and evidential networks.

The paper's §V-B proposes "an analysis method based on evidence theory in
combination with Bayesian networks" (refs [8], [36]).  This package
implements the mathematical theory of evidence — mass functions on frames
of discernment, belief/plausibility, combination rules, discounting,
probability transforms — and the Simon-Weber-Evsukoff style evidential
network that propagates belief/plausibility *intervals* through a
BN-shaped model, so epistemic ignorance shows up as interval width instead
of being hidden inside point probabilities.
"""

from repro.evidence.combination import (
    combine_averaging,
    combine_dempster,
    combine_disjunctive,
    combine_dubois_prade,
    combine_yager,
    conflict_mass,
)
from repro.evidence.evidential_network import EvidentialNetwork, EvidentialNode
from repro.evidence.mass_function import FrameOfDiscernment, MassFunction
from repro.evidence.possibility import PossibilityDistribution
from repro.evidence.transform import (
    from_belief_interval,
    pignistic_transform,
    plausibility_transform,
)

__all__ = [
    "FrameOfDiscernment",
    "MassFunction",
    "PossibilityDistribution",
    "combine_averaging",
    "combine_dempster",
    "combine_disjunctive",
    "combine_dubois_prade",
    "combine_yager",
    "conflict_mass",
    "EvidentialNetwork",
    "EvidentialNode",
    "pignistic_transform",
    "plausibility_transform",
    "from_belief_interval",
]
