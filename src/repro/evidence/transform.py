"""Transforms between mass functions and point probabilities.

When a decision must be made (release / don't release; brake / don't
brake), interval-valued evidence has to be projected onto a single
probability.  The pignistic transform (Smets) spreads set mass uniformly;
the plausibility transform (Cobb & Shenoy) renormalizes singleton
plausibilities.  Both lose the epistemic width — which is exactly why the
framework reports intervals *until* the decision point.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.errors import EvidenceError
from repro.evidence.mass_function import FrameOfDiscernment, MassFunction
from repro.probability.distributions import Categorical


def pignistic_transform(m: MassFunction) -> Categorical:
    """BetP(h) = sum over focal sets containing h of m(A)/|A|."""
    return m.to_categorical_pignistic()


def plausibility_transform(m: MassFunction) -> Categorical:
    """Pl_P(h) proportional to the singleton plausibility Pl({h})."""
    pls = {h: m.plausibility([h]) for h in m.frame.hypotheses}
    total = sum(pls.values())
    if total <= 0.0:
        raise EvidenceError("all singleton plausibilities are zero")
    return Categorical({h: p / total for h, p in pls.items()})


def from_belief_interval(frame: FrameOfDiscernment, hypothesis: str,
                         lower: float, upper: float) -> MassFunction:
    """Build the least-committed mass function matching [Bel, Pl] on one
    hypothesis: mass ``lower`` on {h}, ``1-upper`` on the complement, and
    ``upper-lower`` on Theta (the epistemic remainder).
    """
    if not 0.0 <= lower <= upper <= 1.0:
        raise EvidenceError(f"require 0 <= lower <= upper <= 1, got [{lower}, {upper}]")
    if hypothesis not in frame:
        raise EvidenceError(f"{hypothesis!r} is not in the frame")
    complement = frame.theta - {hypothesis}
    masses = {}
    if lower > 0:
        masses[frozenset([hypothesis])] = lower
    if upper < 1.0:
        masses[complement] = 1.0 - upper
    if upper > lower:
        masses[frame.theta] = upper - lower
    if not masses:
        masses[frame.theta] = 1.0
    return MassFunction(frame, masses)


def interval_dict(m: MassFunction) -> Dict[str, Tuple[float, float]]:
    """[Bel, Pl] interval for every singleton hypothesis."""
    return {h: m.belief_interval([h]) for h in m.frame.hypotheses}
