"""The uncertainty taxonomy: types, means, and the Fig. 3 method registry.

The paper's central artifact is the classification of uncertainties by
origin and of coping methods by mechanism, "analogous to the taxonomy for
dependability given by Laprie et al.".  This module makes the taxonomy a
queryable data structure: a method catalogue annotated with which
uncertainty types each method addresses, through which means, and at which
lifecycle stage — so a coverage analysis (the Fig. 3 matrix) is a function
call rather than a figure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StrategyError


class UncertaintyType(enum.Enum):
    """Origin of a lack of knowledge in a system model (paper §III)."""

    ALEATORY = "aleatory"          # randomness represented by the model
    EPISTEMIC = "epistemic"        # known-unknown: parameter/encoding gaps
    ONTOLOGICAL = "ontological"    # unknown-unknown: missing model aspects

    @property
    def reducible_by_observation(self) -> bool:
        """Epistemic uncertainty shrinks with data; aleatory does not (for a
        fixed model) and ontological requires re-modeling, not more of the
        same data."""
        return self is UncertaintyType.EPISTEMIC


class Means(enum.Enum):
    """Mechanism class of an uncertainty-handling method (paper §IV)."""

    PREVENTION = "prevention"
    REMOVAL = "removal"
    TOLERANCE = "tolerance"
    FORECASTING = "forecasting"


class LifecycleStage(enum.Enum):
    """When in the engineering lifecycle a method operates."""

    DESIGN_TIME = "design_time"
    RUNTIME = "runtime"
    POST_RELEASE = "post_release"


@dataclass(frozen=True)
class Method:
    """One uncertainty-handling method, classified per the taxonomy.

    ``effectiveness`` maps each addressed uncertainty type to a [0, 1]
    score used by the strategy engine to rank alternatives; scores are
    judgments (this is a taxonomy, not a measurement) but they are explicit
    and overridable judgments.
    """

    name: str
    means: Means
    stage: LifecycleStage
    addresses: FrozenSet[UncertaintyType]
    description: str = ""
    effectiveness: Mapping[UncertaintyType, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise StrategyError("method name must be non-empty")
        if not self.addresses:
            raise StrategyError(f"method {self.name!r} must address at least "
                                "one uncertainty type")
        for utype, score in self.effectiveness.items():
            if utype not in self.addresses:
                raise StrategyError(
                    f"method {self.name!r} scores {utype} but does not "
                    "declare it in `addresses`")
            if not 0.0 <= score <= 1.0:
                raise StrategyError(
                    f"method {self.name!r}: effectiveness must be in [0, 1]")

    def effectiveness_for(self, utype: UncertaintyType) -> float:
        if utype not in self.addresses:
            return 0.0
        return float(self.effectiveness.get(utype, 0.5))


class MethodRegistry:
    """A catalogue of methods, queryable along the Fig. 3 axes."""

    def __init__(self) -> None:
        self._methods: Dict[str, Method] = {}

    def register(self, method: Method) -> None:
        if method.name in self._methods:
            raise StrategyError(f"method {method.name!r} already registered")
        self._methods[method.name] = method

    def get(self, name: str) -> Method:
        try:
            return self._methods[name]
        except KeyError:
            raise StrategyError(f"unknown method {name!r}") from None

    @property
    def methods(self) -> List[Method]:
        return list(self._methods.values())

    def by_means(self, means: Means) -> List[Method]:
        return [m for m in self._methods.values() if m.means is means]

    def by_type(self, utype: UncertaintyType) -> List[Method]:
        return [m for m in self._methods.values() if utype in m.addresses]

    def by_stage(self, stage: LifecycleStage) -> List[Method]:
        return [m for m in self._methods.values() if m.stage is stage]

    def query(self, utype: Optional[UncertaintyType] = None,
              means: Optional[Means] = None,
              stage: Optional[LifecycleStage] = None) -> List[Method]:
        out = []
        for m in self._methods.values():
            if utype is not None and utype not in m.addresses:
                continue
            if means is not None and m.means is not means:
                continue
            if stage is not None and m.stage is not stage:
                continue
            out.append(m)
        return out

    def coverage_matrix(self) -> Dict[Tuple[Means, UncertaintyType], List[str]]:
        """The Fig. 3 matrix: (means x type) -> method names."""
        matrix: Dict[Tuple[Means, UncertaintyType], List[str]] = {
            (mn, ut): [] for mn in Means for ut in UncertaintyType}
        for m in self._methods.values():
            for ut in m.addresses:
                matrix[(m.means, ut)].append(m.name)
        return matrix

    def coverage_gaps(self) -> List[Tuple[Means, UncertaintyType]]:
        """Cells of the matrix with no method — the to-do list of the field."""
        return [cell for cell, names in self.coverage_matrix().items()
                if not names]

    def __len__(self) -> int:
        return len(self._methods)

    def __repr__(self) -> str:
        return f"MethodRegistry({len(self._methods)} methods)"


def builtin_registry() -> MethodRegistry:
    """The paper's own examples (§IV and Fig. 3), as registry entries.

    Every entry traces to a phrase in the paper; effectiveness scores
    encode the paper's qualitative judgments (e.g. "methods like
    uncertainty tolerance are hardly able to cope with [ontological
    uncertainty]").
    """
    A, E, O = (UncertaintyType.ALEATORY, UncertaintyType.EPISTEMIC,
               UncertaintyType.ONTOLOGICAL)
    reg = MethodRegistry()
    entries = [
        Method("well_known_elements", Means.PREVENTION, LifecycleStage.DESIGN_TIME,
               frozenset({E, O}),
               "use of elements with well-known behavior",
               {E: 0.7, O: 0.4}),
        Method("simple_architecture", Means.PREVENTION, LifecycleStage.DESIGN_TIME,
               frozenset({E, O}),
               "avoiding architectures prone to emergent behavior",
               {E: 0.5, O: 0.6}),
        Method("odd_restriction", Means.PREVENTION, LifecycleStage.DESIGN_TIME,
               frozenset({A, E, O}),
               "restriction of the operational design domain",
               {A: 0.4, E: 0.5, O: 0.7}),
        Method("design_of_experiments", Means.REMOVAL, LifecycleStage.DESIGN_TIME,
               frozenset({E}),
               "uncertainty removal during design time by design of experiment",
               {E: 0.8}),
        Method("safety_analysis_with_uncertainty", Means.REMOVAL,
               LifecycleStage.DESIGN_TIME, frozenset({A, E, O}),
               "safety analysis including epistemic/ontological uncertainty "
               "(BN + evidence theory, paper SV)",
               {A: 0.6, E: 0.7, O: 0.5}),
        Method("field_observation", Means.REMOVAL, LifecycleStage.POST_RELEASE,
               frozenset({E, O}),
               "field observation to monitor ontological events",
               {E: 0.6, O: 0.8}),
        Method("continuous_updates", Means.REMOVAL, LifecycleStage.POST_RELEASE,
               frozenset({E, O}),
               "continuous updates after release",
               {E: 0.7, O: 0.6}),
        Method("redundant_diverse_architecture", Means.TOLERANCE,
               LifecycleStage.RUNTIME, frozenset({A, E}),
               "redundant architectures with diverse uncertainties "
               "(e.g. overlapping sensor fields of view)",
               {A: 0.7, E: 0.7}),
        Method("uncertainty_aware_ml", Means.TOLERANCE, LifecycleStage.RUNTIME,
               frozenset({E}),
               "machine learning with epistemic uncertainty outputs",
               {E: 0.6}),
        Method("residual_uncertainty_estimation", Means.FORECASTING,
               LifecycleStage.DESIGN_TIME, frozenset({E, O}),
               "estimation of the present level and future occurrence of "
               "uncertainties for the release decision",
               {E: 0.7, O: 0.6}),
        Method("probabilistic_reliability_model", Means.FORECASTING,
               LifecycleStage.DESIGN_TIME, frozenset({A}),
               "classical probabilistic forecasting of residual risk from "
               "aleatory failure models",
               {A: 0.8}),
    ]
    for m in entries:
        reg.register(m)
    return reg
