"""The cybernetic development loop of Fig. 1, as a simulation.

Controlled system: the SuD (a perception chain) embedded in its operating
environment (a :class:`~repro.perception.world.WorldModel`).  Controlling
system: the development organization, holding a *codified model* of the
environment (a Dirichlet estimator over its current ontology) that it
updates through two channels:

- **domain analysis** (observation channel): sampling the environment
  before/during development;
- **field observation** (feedback): monitoring the deployed SuD, where
  encounters outside the organization's ontology are *ontological events*
  that trigger re-modeling (ontology extension).

The good regulator theorem (Conant & Ashby) appears as a measurable
relation: the organization's control performance (realized hazard rate of
its deployment decisions) degrades with the divergence between its model
and the environment — :func:`good_regulator_experiment`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.information.entropy import kl_divergence_categorical
from repro.perception.chain import PerceptionChain, hazardous_misperception_rate
from repro.perception.odd import FULL_ODD, OperationalDesignDomain
from repro.perception.world import CAR, PEDESTRIAN, UNKNOWN, WorldModel
from repro.probability.distributions import Categorical, Dirichlet
from repro.probability.estimation import GoodTuringEstimator


@dataclass
class IterationReport:
    """Metrics of one turn of the development control loop."""

    iteration: int
    ontology_size: int
    epistemic_uncertainty: float
    estimated_missing_mass: float
    true_unobserved_mass: float
    model_world_divergence: float
    hazard_rate: float
    ontological_events: int


class DevelopmentLoop:
    """The Fig. 1 control loop between organization and SuD/environment.

    Parameters
    ----------
    world:
        The true operating environment (unknown to the organization).
    chain:
        The implemented SuD.
    extend_ontology:
        Whether field-observed novel kinds are folded into the codified
        model (uncertainty removal during use).  Off = the organization
        ignores its feedback channel; the FIG1 benchmark contrasts both.
    """

    def __init__(self, world: WorldModel, chain: Optional[PerceptionChain] = None,
                 *, extend_ontology: bool = True, prior_strength: float = 1.0):
        self.world = world
        self.chain = chain or PerceptionChain()
        self.extend_ontology = extend_ontology
        self._prior_strength = prior_strength
        # The organization starts with the design ontology {car, pedestrian}:
        # "we assume that only cars or pedestrians will be encountered".
        self._ontology: List[str] = [CAR, PEDESTRIAN]
        self._counts: Dict[str, int] = {CAR: 0, PEDESTRIAN: 0}
        self._good_turing = GoodTuringEstimator()
        self.reports: List[IterationReport] = []

    # -- the organization's codified model ------------------------------------

    @property
    def ontology(self) -> List[str]:
        return list(self._ontology)

    def codified_model(self) -> Categorical:
        """The organization's current best world model (posterior mean)."""
        return self._posterior().mean()

    def _posterior(self) -> Dirichlet:
        conc = {k: self._prior_strength + self._counts.get(k, 0)
                for k in self._ontology}
        return Dirichlet(conc)

    def epistemic_uncertainty(self) -> float:
        return self._posterior().expected_entropy_gap()

    # -- channels ----------------------------------------------------------------

    def _record(self, kind: str) -> int:
        """Record one observed kind; returns 1 if it was an ontological event."""
        self._good_turing.observe(kind)
        if kind in self._counts:
            self._counts[kind] += 1
            return 0
        if self.extend_ontology:
            self._ontology.append(kind)
            self._counts[kind] = 1
        return 1

    def domain_analysis(self, rng: np.random.Generator, n_samples: int) -> int:
        """Observation channel: sample the environment directly."""
        if n_samples <= 0:
            raise SimulationError("n_samples must be positive")
        events = 0
        for _ in range(n_samples):
            obj = self.world.sample_object(rng)
            events += self._record(obj.true_class)
        return events

    def field_observation(self, rng: np.random.Generator, n_encounters: int
                          ) -> Tuple[float, int]:
        """Feedback channel: deploy the SuD, measure hazards, log novelties."""
        if n_encounters <= 0:
            raise SimulationError("n_encounters must be positive")
        hazards = 0
        events = 0
        for _ in range(n_encounters):
            obj = self.world.sample_object(rng)
            output = self.chain.perceive(obj, rng)
            events += self._record(obj.true_class)
            if output == "none":
                hazards += 1
            elif obj.label == UNKNOWN and output in (CAR, PEDESTRIAN):
                hazards += 1
        return hazards / n_encounters, events

    # -- divergence diagnostics ------------------------------------------------------

    def true_unobserved_mass(self) -> float:
        """Ground-truth probability of kinds the organization has never seen
        (computable here because we own the simulator; in reality this is
        exactly what Good-Turing must estimate)."""
        fine = self.world.fine_grained_prior()
        seen = set(self._counts)
        return sum(p for kind, p in fine.probabilities.items()
                   if kind not in seen)

    def model_world_divergence(self) -> float:
        """KL(world || codified model) over the fine-grained kinds.

        Infinite while the organization's ontology misses kinds the world
        produces — the formal signature of ontological uncertainty; once
        the ontology covers the world, the divergence is finite and
        epistemic (shrinks with data).
        """
        return kl_divergence_categorical(self.world.fine_grained_prior(),
                                         self.codified_model())

    # -- the loop --------------------------------------------------------------------

    def run(self, rng: np.random.Generator, n_iterations: int,
            analysis_per_iteration: int = 50,
            field_per_iteration: int = 200) -> List[IterationReport]:
        """Iterate the control loop and record per-iteration metrics."""
        if n_iterations <= 0:
            raise SimulationError("n_iterations must be positive")
        for i in range(n_iterations):
            events = self.domain_analysis(rng, analysis_per_iteration)
            hazard, field_events = self.field_observation(rng, field_per_iteration)
            events += field_events
            report = IterationReport(
                iteration=i,
                ontology_size=len(self._ontology),
                epistemic_uncertainty=self.epistemic_uncertainty(),
                estimated_missing_mass=self._good_turing.missing_mass(),
                true_unobserved_mass=self.true_unobserved_mass(),
                model_world_divergence=self.model_world_divergence(),
                hazard_rate=hazard,
                ontological_events=events,
            )
            self.reports.append(report)
        return list(self.reports)

    def __repr__(self) -> str:
        return (f"DevelopmentLoop(ontology={len(self._ontology)}, "
                f"iterations={len(self.reports)}, "
                f"extend_ontology={self.extend_ontology})")


def good_regulator_experiment(rng: np.random.Generator,
                              distortions: Sequence[float],
                              n_eval: int = 2000) -> List[Dict[str, float]]:
    """Conant-Ashby demo: regulator model quality bounds control quality.

    For each distortion level, the organization holds a *distorted* world
    model (true prior mixed with an adversarial one) and uses it to choose
    its deployment ODD: it restricts the domain iff its model says the
    unknown rate exceeds a fixed risk threshold.  The realized hazard rate
    is then measured in the *true* world.

    Returns one record per distortion: model divergence from truth and the
    realized hazard — the monotone relation is the theorem's content.
    """
    from repro.perception.odd import RESTRICTED_ODD
    true_world = WorldModel()
    chain = PerceptionChain()
    wrong = {CAR: 0.2, PEDESTRIAN: 0.78, UNKNOWN: 0.02}
    results: List[Dict[str, float]] = []
    for lam in distortions:
        if not 0.0 <= lam <= 1.0:
            raise SimulationError("distortion levels must be in [0, 1]")
        believed = Categorical({
            k: (1.0 - lam) * true_world.label_prior().prob(k) + lam * wrong[k]
            for k in (CAR, PEDESTRIAN, UNKNOWN)})
        divergence = kl_divergence_categorical(true_world.label_prior(), believed)
        # Regulator decision from the believed model.
        restrict = believed.prob(UNKNOWN) >= 0.05
        odd = RESTRICTED_ODD if restrict else FULL_ODD
        deployed_world = odd.restricted_world(true_world)
        hazard = hazardous_misperception_rate(chain, deployed_world, rng, n_eval)
        results.append({
            "distortion": float(lam),
            "model_divergence": float(divergence),
            "restricted": float(restrict),
            "hazard_rate": float(hazard),
        })
    return results
