"""Strategy derivation: matching means to an uncertainty budget (paper §IV).

Encodes the paper's priority rules:

1. "Uncertainty prevention should be prioritized as this eliminates the
   need for further measures."
2. "Uncertainty removal should be especially considered in design
   processes."
3. "Due to the open context it will not be possible to sufficiently reduce
   uncertainty by only focusing on prevention and removal.  Uncertainty
   tolerance within the system is required."
4. Forecasting supports the release decision on whatever residue remains.

The planner assigns, to every identified uncertainty, methods in that
order of means, and reports coverage gaps — in particular the paper's
warning case: *tolerance cannot carry ontological uncertainty* shows up as
an explicit gap whenever prevention/removal are unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.taxonomy import Means, Method, MethodRegistry, UncertaintyType
from repro.core.uncertainty import Uncertainty, UncertaintyBudget
from repro.errors import StrategyError

#: The paper's recommended order of consideration.
MEANS_PRIORITY: Tuple[Means, ...] = (Means.PREVENTION, Means.REMOVAL,
                                     Means.TOLERANCE, Means.FORECASTING)


@dataclass(frozen=True)
class Assignment:
    """One uncertainty handled by one method."""

    uncertainty: Uncertainty
    method: Method

    @property
    def expected_effect(self) -> float:
        """Scalar effect proxy: magnitude x method effectiveness."""
        return self.uncertainty.magnitude * self.method.effectiveness_for(
            self.uncertainty.utype)


@dataclass
class StrategyPlan:
    """The derived overall strategy for a budget."""

    budget: UncertaintyBudget
    assignments: List[Assignment] = field(default_factory=list)
    gaps: List[Uncertainty] = field(default_factory=list)

    def methods_for(self, uncertainty_name: str) -> List[Method]:
        return [a.method for a in self.assignments
                if a.uncertainty.name == uncertainty_name]

    def by_means(self, means: Means) -> List[Assignment]:
        return [a for a in self.assignments if a.method.means is means]

    @property
    def is_complete(self) -> bool:
        """True when every identified uncertainty has at least one method."""
        return not self.gaps

    def residual_estimate(self, utype: UncertaintyType) -> float:
        """Crude residual magnitude after applying assigned methods.

        Each assigned method multiplies the remaining magnitude by
        ``1 - effectiveness``; methods compose independently.  A planning
        heuristic, not a measurement — the benchmarks measure.
        """
        residual = 0.0
        for u in self.budget.by_type(utype):
            remaining = u.magnitude
            for a in self.assignments:
                if a.uncertainty.name == u.name:
                    remaining *= 1.0 - a.method.effectiveness_for(utype)
            residual += remaining
        return residual

    def summary_lines(self) -> List[str]:
        """Human-readable plan (used by examples and reports)."""
        lines = [f"Strategy for {self.budget.system_name}:"]
        for means in MEANS_PRIORITY:
            rows = self.by_means(means)
            if not rows:
                continue
            lines.append(f"  [{means.value}]")
            for a in sorted(rows, key=lambda x: -x.expected_effect):
                lines.append(
                    f"    {a.uncertainty.name} ({a.uncertainty.utype.value}, "
                    f"magnitude {a.uncertainty.magnitude:.4g}) -> "
                    f"{a.method.name}")
        if self.gaps:
            lines.append("  UNCOVERED:")
            for u in self.gaps:
                lines.append(f"    {u.name} ({u.utype.value}) — no applicable method")
        return lines


def derive_strategy(budget: UncertaintyBudget, registry: MethodRegistry,
                    max_methods_per_uncertainty: int = 2,
                    min_effectiveness: float = 0.0) -> StrategyPlan:
    """Derive a strategy: assign methods to every budget item.

    For each uncertainty, walks the means in the paper's priority order and
    picks the most effective applicable method per means, up to
    ``max_methods_per_uncertainty`` assignments.  Uncertainties no method
    addresses end up in ``plan.gaps``.
    """
    if max_methods_per_uncertainty < 1:
        raise StrategyError("max_methods_per_uncertainty must be >= 1")
    if not 0.0 <= min_effectiveness <= 1.0:
        raise StrategyError("min_effectiveness must be in [0, 1]")
    plan = StrategyPlan(budget=budget)
    for u in budget.items:
        taken = 0
        for means in MEANS_PRIORITY:
            if taken >= max_methods_per_uncertainty:
                break
            candidates = [m for m in registry.query(utype=u.utype, means=means)
                          if m.effectiveness_for(u.utype) > min_effectiveness]
            if not candidates:
                continue
            best = max(candidates, key=lambda m: m.effectiveness_for(u.utype))
            plan.assignments.append(Assignment(uncertainty=u, method=best))
            taken += 1
        if taken == 0:
            plan.gaps.append(u)
    return plan
