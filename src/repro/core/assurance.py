"""Assurance cases with Dempster-Shafer confidence (paper ref. [11]).

"For the overall confidence to release a product assurance cases can be
enriched with belief modeling" (§I, Wang et al.).  This module implements
a GSN-style argument tree — goals decomposed through strategies into
sub-goals and finally evidence — where every evidence item carries a
belief/disbelief/ignorance triple and confidence propagates upward:

- evidence:     a simple support assessment, optionally discounted by the
                source's reliability;
- conjunctive decomposition (all premises needed):
                Bel(goal) = prod Bel(children), Pl = prod Pl(children);
- alternative decomposition (independent legs, any sufficient):
                via De Morgan on the disbeliefs.

The residual ignorance at the top goal is the argument-level *epistemic*
uncertainty; an explicit ``defeater`` mechanism models *ontological*
doubts (identified but unaddressed ways the argument could be wrong),
which cap the top-level plausibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StrategyError


@dataclass(frozen=True)
class Confidence:
    """A (belief, plausibility) pair on "this claim holds".

    ``belief`` is the mass provably supporting the claim; ``1 -
    plausibility`` the mass provably against it; the gap is ignorance.
    """

    belief: float
    plausibility: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.belief <= self.plausibility <= 1.0:
            raise StrategyError(
                f"require 0 <= belief <= plausibility <= 1, got "
                f"({self.belief}, {self.plausibility})")

    @property
    def disbelief(self) -> float:
        return 1.0 - self.plausibility

    @property
    def ignorance(self) -> float:
        """Epistemic width of the assessment."""
        return self.plausibility - self.belief

    @classmethod
    def from_triple(cls, belief: float, disbelief: float,
                    ignorance: float, atol: float = 1e-9) -> "Confidence":
        total = belief + disbelief + ignorance
        if abs(total - 1.0) > atol:
            raise StrategyError(f"triple must sum to 1, got {total}")
        return cls(belief, belief + ignorance)

    @classmethod
    def vacuous(cls) -> "Confidence":
        return cls(0.0, 1.0)

    @classmethod
    def certain(cls) -> "Confidence":
        return cls(1.0, 1.0)

    def discounted(self, reliability: float) -> "Confidence":
        """Shafer discounting by the source's reliability."""
        if not 0.0 <= reliability <= 1.0:
            raise StrategyError("reliability must be in [0, 1]")
        return Confidence(self.belief * reliability,
                          1.0 - self.disbelief * reliability)

    def __repr__(self) -> str:
        return f"Confidence(bel={self.belief:.4g}, pl={self.plausibility:.4g})"


def combine_conjunctive(parts: Sequence[Confidence]) -> Confidence:
    """Confidence in (A1 and A2 and ...), independence assumed."""
    if not parts:
        raise StrategyError("need at least one premise")
    bel = pl = 1.0
    for c in parts:
        bel *= c.belief
        pl *= c.plausibility
    return Confidence(bel, pl)


def combine_alternative(parts: Sequence[Confidence]) -> Confidence:
    """Confidence in (A1 or A2 or ...) — any sufficient leg."""
    if not parts:
        raise StrategyError("need at least one leg")
    not_bel = not_pl = 1.0
    for c in parts:
        not_bel *= 1.0 - c.belief
        not_pl *= 1.0 - c.plausibility
    return Confidence(1.0 - not_bel, 1.0 - not_pl)


def combine_cumulative(parts: Sequence[Confidence]) -> Confidence:
    """Independent evidence items for the *same* claim (Dempster on
    simple-support functions): beliefs reinforce, disbeliefs reinforce,
    conflict renormalizes."""
    if not parts:
        raise StrategyError("need at least one evidence item")
    # Fold Dempster's rule on the 2-hypothesis frame {holds, fails}.
    b, d = parts[0].belief, parts[0].disbelief
    for c in parts[1:]:
        b2, d2 = c.belief, c.disbelief
        u, u2 = 1.0 - b - d, 1.0 - b2 - d2
        conflict = b * d2 + d * b2
        if conflict >= 1.0 - 1e-12:
            raise StrategyError("totally conflicting evidence for one claim")
        norm = 1.0 - conflict
        b, d = ((b * b2 + b * u2 + u * b2) / norm,
                (d * d2 + d * u2 + u * d2) / norm)
    return Confidence(b, 1.0 - d)


class AssuranceNode:
    """One node of the argument tree."""

    KINDS = ("goal", "strategy", "evidence")

    def __init__(self, kind: str, name: str, statement: str = "",
                 *, decomposition: str = "conjunctive",
                 assessment: Optional[Confidence] = None,
                 reliability: float = 1.0):
        if kind not in self.KINDS:
            raise StrategyError(f"kind must be one of {self.KINDS}")
        if decomposition not in ("conjunctive", "alternative", "cumulative"):
            raise StrategyError(f"unknown decomposition {decomposition!r}")
        if kind == "evidence" and assessment is None:
            raise StrategyError(f"evidence node {name!r} needs an assessment")
        if kind != "evidence" and assessment is not None:
            raise StrategyError(f"only evidence nodes carry direct assessments")
        self.kind = kind
        self.name = name
        self.statement = statement
        self.decomposition = decomposition
        self.assessment = assessment
        self.reliability = reliability
        self.children: List["AssuranceNode"] = []

    def add(self, child: "AssuranceNode") -> "AssuranceNode":
        if self.kind == "evidence":
            raise StrategyError("evidence nodes are leaves")
        self.children.append(child)
        return child

    def confidence(self) -> Confidence:
        """Propagate confidence bottom-up."""
        if self.kind == "evidence":
            assert self.assessment is not None
            return self.assessment.discounted(self.reliability)
        if not self.children:
            # An undeveloped goal/strategy: total ignorance.
            return Confidence.vacuous()
        parts = [c.confidence() for c in self.children]
        if self.decomposition == "conjunctive":
            return combine_conjunctive(parts)
        if self.decomposition == "alternative":
            return combine_alternative(parts)
        return combine_cumulative(parts)

    def undeveloped(self) -> List[str]:
        """Names of non-evidence leaves (argument gaps)."""
        if self.kind == "evidence":
            return []
        if not self.children:
            return [self.name]
        out: List[str] = []
        for c in self.children:
            out.extend(c.undeveloped())
        return out

    def __repr__(self) -> str:
        return f"AssuranceNode({self.kind}, {self.name!r}, children={len(self.children)})"


class AssuranceCase:
    """An argument tree with optional defeaters, assessed for release.

    Defeaters are identified-but-unresolved doubts about the argument
    itself (e.g. "the ODD analysis may be incomplete"); each caps the top
    plausibility by its severity.  They are the argument-level home of
    ontological uncertainty: you cannot argue it away, only resolve it by
    new knowledge or accept it explicitly.
    """

    def __init__(self, top_goal: AssuranceNode):
        if top_goal.kind != "goal":
            raise StrategyError("the top node must be a goal")
        self.top_goal = top_goal
        self._defeaters: List[Tuple[str, float]] = []

    def add_defeater(self, description: str, severity: float) -> None:
        if not 0.0 <= severity <= 1.0:
            raise StrategyError("severity must be in [0, 1]")
        self._defeaters.append((description, severity))

    @property
    def defeaters(self) -> List[Tuple[str, float]]:
        return list(self._defeaters)

    def confidence(self) -> Confidence:
        """Top-goal confidence after defeater discounting."""
        base = self.top_goal.confidence()
        for _, severity in self._defeaters:
            base = base.discounted(1.0 - severity)
        return base

    def release_verdict(self, min_belief: float,
                        max_ignorance: float) -> Dict[str, object]:
        """The release decision the paper's §IV forecasting targets:
        enough supported belief, little enough residual ignorance."""
        if not 0.0 <= min_belief <= 1.0 or not 0.0 <= max_ignorance <= 1.0:
            raise StrategyError("thresholds must be in [0, 1]")
        c = self.confidence()
        gaps = self.top_goal.undeveloped()
        return {
            "confidence": c,
            "belief_ok": c.belief >= min_belief,
            "ignorance_ok": c.ignorance <= max_ignorance,
            "undeveloped": gaps,
            "defeaters": [d for d, _ in self._defeaters],
            "release": (c.belief >= min_belief and
                        c.ignorance <= max_ignorance and not gaps),
        }

    def __repr__(self) -> str:
        return (f"AssuranceCase(top={self.top_goal.name!r}, "
                f"defeaters={len(self._defeaters)})")


def goal(name: str, statement: str = "",
         decomposition: str = "conjunctive") -> AssuranceNode:
    """Convenience constructor for goal nodes."""
    return AssuranceNode("goal", name, statement, decomposition=decomposition)


def strategy(name: str, statement: str = "",
             decomposition: str = "conjunctive") -> AssuranceNode:
    """Convenience constructor for strategy nodes."""
    return AssuranceNode("strategy", name, statement,
                         decomposition=decomposition)


def evidence(name: str, belief: float, disbelief: float = 0.0,
             reliability: float = 1.0, statement: str = "") -> AssuranceNode:
    """Convenience constructor for evidence leaves."""
    ignorance = 1.0 - belief - disbelief
    return AssuranceNode(
        "evidence", name, statement,
        assessment=Confidence.from_triple(belief, disbelief, ignorance),
        reliability=reliability)
