"""The uncertainty dossier: one report from all framework outputs.

The paper's outlook: "we want to build a safety argument that
uncertainties are properly managed and do not pose an unacceptable level
of risk."  The dossier is that argument's data package — a single
markdown document assembling the budget, the derived strategy, the §V
safety-analysis results, the field-forecast bounds, and the assurance
verdict, each traceable to the framework object that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.assurance import AssuranceCase
from repro.core.strategy import StrategyPlan
from repro.core.taxonomy import UncertaintyType
from repro.core.uncertainty import UncertaintyBudget
from repro.errors import StrategyError
from repro.means.forecasting import ReleaseDecision
from repro.means.removal import SafetyAnalysisWithUncertainty


class UncertaintyDossier:
    """Collects framework outputs and renders a markdown report."""

    def __init__(self, system_name: str):
        if not system_name:
            raise StrategyError("system name must be non-empty")
        self.system_name = system_name
        self._budget: Optional[UncertaintyBudget] = None
        self._plan: Optional[StrategyPlan] = None
        self._analysis: Optional[SafetyAnalysisWithUncertainty] = None
        self._release: Optional[ReleaseDecision] = None
        self._assurance: Optional[AssuranceCase] = None
        self._robustness = None  # Optional[RobustnessReport]
        self._notes: List[str] = []

    # -- attach sections ------------------------------------------------------

    def attach_budget(self, budget: UncertaintyBudget) -> "UncertaintyDossier":
        self._budget = budget
        return self

    def attach_strategy(self, plan: StrategyPlan) -> "UncertaintyDossier":
        self._plan = plan
        return self

    def attach_safety_analysis(self, analysis: SafetyAnalysisWithUncertainty
                               ) -> "UncertaintyDossier":
        self._analysis = analysis
        return self

    def attach_release_decision(self, decision: ReleaseDecision
                                ) -> "UncertaintyDossier":
        self._release = decision
        return self

    def attach_assurance_case(self, case: AssuranceCase
                              ) -> "UncertaintyDossier":
        self._assurance = case
        return self

    def attach_robustness(self, report) -> "UncertaintyDossier":
        """Attach a fault-injection campaign result as runtime-tolerance
        evidence (:class:`repro.robustness.report.RobustnessReport`).

        Optional — it does not count toward :meth:`completeness` — but
        once attached, a campaign in which the supervised stack fails to
        strictly beat the bare chain blocks the release verdict.
        """
        self._robustness = report
        return self

    def add_note(self, note: str) -> "UncertaintyDossier":
        if not note:
            raise StrategyError("note must be non-empty")
        self._notes.append(note)
        return self

    # -- verdicts ----------------------------------------------------------------

    def completeness(self) -> Dict[str, bool]:
        """Which sections are present — the dossier's own gap report."""
        return {
            "budget": self._budget is not None,
            "strategy": self._plan is not None,
            "safety_analysis": self._analysis is not None,
            "release_decision": self._release is not None,
            "assurance_case": self._assurance is not None,
        }

    def overall_verdict(self) -> Tuple[bool, List[str]]:
        """(releasable, blocking reasons) across all attached sections."""
        reasons: List[str] = []
        missing = [k for k, ok in self.completeness().items() if not ok]
        if missing:
            reasons.append(f"dossier incomplete: missing {', '.join(missing)}")
        if self._plan is not None and not self._plan.is_complete:
            gaps = ", ".join(u.name for u in self._plan.gaps)
            reasons.append(f"strategy gaps: {gaps}")
        if self._release is not None and not self._release.release:
            reasons.extend(self._release.blocking_reasons())
        if self._assurance is not None:
            verdict = self._assurance.release_verdict(min_belief=0.5,
                                                      max_ignorance=0.4)
            if not verdict["release"]:
                reasons.append("assurance case below confidence thresholds")
        if (self._robustness is not None
                and not self._robustness.supervised_dominates()):
            worst = self._robustness.worst_cell()
            reasons.append(
                "fault-injection campaign: tolerant stack not strictly "
                f"better under {worst.fault!r} at intensity "
                f"{worst.intensity:g}")
        return (not reasons, reasons)

    # -- rendering ---------------------------------------------------------------

    def to_markdown(self) -> str:
        lines = [f"# Uncertainty dossier — {self.system_name}", ""]
        releasable, reasons = self.overall_verdict()
        lines.append(f"**Overall verdict: "
                     f"{'RELEASABLE' if releasable else 'NOT RELEASABLE'}**")
        for r in reasons:
            lines.append(f"- blocking: {r}")
        lines.append("")

        if self._budget is not None:
            lines.append("## Uncertainty budget")
            summary = self._budget.summary()
            for utype in UncertaintyType:
                lines.append(f"- total {utype.value}: "
                             f"{summary[utype.value]:.4g}")
            for u in self._budget.items:
                lines.append(f"  - `{u.name}` ({u.utype.value}, "
                             f"magnitude {u.magnitude:.4g}) at "
                             f"{u.location or 'unspecified'}")
            lines.append("")

        if self._plan is not None:
            lines.append("## Strategy")
            lines.extend(f"    {line}" for line in self._plan.summary_lines())
            lines.append("")

        if self._analysis is not None:
            lines.append("## Safety analysis (BN + evidence theory)")
            report = self._analysis.uncertainty_report()
            for key, value in report.items():
                lines.append(f"- {key}: {value:.4g}")
            post = self._analysis.diagnostic_posterior("none")
            lines.append("- P(ground truth | perception = none): " +
                         ", ".join(f"{k}={v:.3f}" for k, v in post.items()))
            for rec in self._analysis.removal_recommendations():
                lines.append(f"- recommendation: {rec}")
            lines.append("")

        if self._release is not None:
            d = self._release
            lines.append("## Release forecast")
            lines.append(f"- exposure: {d.exposure:.0f} encounters, "
                         f"{d.n_hazards} hazards")
            lines.append(f"- hazard-rate upper bound: "
                         f"{d.hazard_rate_bound:.4g} "
                         f"({'OK' if d.hazard_ok else 'FAIL'})")
            lines.append(f"- residual ontological mass bound: "
                         f"{d.missing_mass_bound:.4g} "
                         f"({'OK' if d.ontology_ok else 'FAIL'})")
            lines.append("")

        if self._assurance is not None:
            c = self._assurance.confidence()
            lines.append("## Assurance case")
            lines.append(f"- top-goal confidence: belief {c.belief:.3f}, "
                         f"plausibility {c.plausibility:.3f}, "
                         f"ignorance {c.ignorance:.3f}")
            for d, severity in self._assurance.defeaters:
                lines.append(f"- defeater (severity {severity}): {d}")
            gaps = self._assurance.top_goal.undeveloped()
            if gaps:
                lines.append(f"- undeveloped goals: {', '.join(gaps)}")
            lines.append("")

        if self._robustness is not None:
            r = self._robustness
            lines.append("## Runtime robustness (fault-injection campaign)")
            lines.append(f"- seed {r.seed}, {r.trials} trials per cell, "
                         f"{len(r.cells)} cells")
            lines.append(
                "- tolerant stack strictly better in every cell: "
                f"{'YES' if r.supervised_dominates() else 'NO'}")
            for fault, s in r.per_fault_summary().items():
                lines.append(
                    f"  - `{fault}`: hazard {s['single_hazard']:.4f} -> "
                    f"{s['supervised_hazard']:.4f}, availability "
                    f"{s['supervised_availability']:.4f}")
            telemetry = getattr(r, "telemetry", None)
            if telemetry is not None:
                lines.append(
                    f"- telemetry: {telemetry.total_spans} spans "
                    f"(max depth {telemetry.max_depth}), "
                    f"{len(telemetry.metric_deltas)} metric series "
                    "incremented")
            lines.append("")

        if self._notes:
            lines.append("## Notes")
            lines.extend(f"- {n}" for n in self._notes)
            lines.append("")
        return "\n".join(lines)

    def __repr__(self) -> str:
        present = sum(self.completeness().values())
        return f"UncertaintyDossier({self.system_name!r}, sections={present}/5)"
