"""Core framework: the paper's uncertainty taxonomy, made executable.

- :mod:`repro.core.taxonomy` — uncertainty types (aleatory / epistemic /
  ontological), means (prevention / removal / tolerance / forecasting),
  and a method registry realizing Fig. 3.
- :mod:`repro.core.uncertainty` — first-class uncertainty quantities and
  budgets.
- :mod:`repro.core.modeling` — Rosen's modeling relation (Fig. 2).
- :mod:`repro.core.strategy` — derivation of an overall uncertainty-
  handling strategy from a budget and the registry (§IV).
- :mod:`repro.core.lifecycle` — the cybernetic development loop (Fig. 1)
  with the good-regulator metric (Conant & Ashby).
"""

from repro.core.assurance import AssuranceCase, AssuranceNode, Confidence
from repro.core.lifecycle import DevelopmentLoop, IterationReport
from repro.core.report import UncertaintyDossier
from repro.core.modeling import (
    DeterministicModel,
    FormalModel,
    ModelingRelation,
    PhysicalSystem,
    ProbabilisticModel,
)
from repro.core.strategy import StrategyPlan, derive_strategy
from repro.core.taxonomy import (
    LifecycleStage,
    Means,
    Method,
    MethodRegistry,
    UncertaintyType,
    builtin_registry,
)
from repro.core.uncertainty import (
    AleatoryUncertainty,
    EpistemicUncertainty,
    OntologicalUncertainty,
    Uncertainty,
    UncertaintyBudget,
)

__all__ = [
    "AssuranceCase",
    "AssuranceNode",
    "Confidence",
    "UncertaintyDossier",
    "DevelopmentLoop",
    "IterationReport",
    "DeterministicModel",
    "FormalModel",
    "ModelingRelation",
    "PhysicalSystem",
    "ProbabilisticModel",
    "StrategyPlan",
    "derive_strategy",
    "LifecycleStage",
    "Means",
    "Method",
    "MethodRegistry",
    "UncertaintyType",
    "builtin_registry",
    "AleatoryUncertainty",
    "EpistemicUncertainty",
    "OntologicalUncertainty",
    "Uncertainty",
    "UncertaintyBudget",
]
