"""First-class uncertainty quantities and budgets.

A model review produces a list of identified uncertainties; carrying them
as objects (rather than prose) lets the strategy engine (§IV) match means
to them mechanically and lets reports aggregate by type.  Each subclass
fixes the natural quantification of its type:

- aleatory — entropy of the representing distribution (irreducible for a
  fixed model choice);
- epistemic — a credible-interval width / divergence scalar that shrinks
  with observations;
- ontological — an estimated unseen (missing) probability mass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.taxonomy import UncertaintyType
from repro.errors import StrategyError
from repro.information.entropy import entropy_categorical
from repro.probability.distributions import Categorical, Dirichlet


@dataclass(frozen=True)
class Uncertainty:
    """An identified uncertainty in a system model.

    ``magnitude`` is a non-negative scalar in the type's natural unit
    (nats for aleatory, divergence proxy for epistemic, probability mass
    for ontological); ``location`` names the model element it lives in.
    """

    name: str
    utype: UncertaintyType
    magnitude: float
    location: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise StrategyError("uncertainty name must be non-empty")
        if self.magnitude < 0.0:
            raise StrategyError(
                f"uncertainty {self.name!r}: magnitude must be non-negative")

    @property
    def reducible_by_observation(self) -> bool:
        return self.utype.reducible_by_observation


def AleatoryUncertainty(name: str, distribution: Categorical,
                        location: str = "",
                        description: str = "") -> Uncertainty:
    """Aleatory uncertainty quantified as the model distribution's entropy.

    "Aleatory uncertainty ... is quantified by probabilistic
    distributions" (§III-A); we reduce the distribution to its entropy so
    budgets can aggregate.
    """
    return Uncertainty(name=name, utype=UncertaintyType.ALEATORY,
                       magnitude=entropy_categorical(distribution),
                       location=location, description=description)


def EpistemicUncertainty(name: str, posterior: Dirichlet,
                         location: str = "",
                         description: str = "") -> Uncertainty:
    """Epistemic uncertainty of a categorical parameter under a Dirichlet
    posterior, quantified by the expected-KL proxy (shrinks O(1/n))."""
    return Uncertainty(name=name, utype=UncertaintyType.EPISTEMIC,
                       magnitude=posterior.expected_entropy_gap(),
                       location=location, description=description)


def OntologicalUncertainty(name: str, missing_mass: float,
                           location: str = "",
                           description: str = "") -> Uncertainty:
    """Ontological uncertainty as estimated unseen probability mass.

    Typically produced by
    :class:`repro.probability.estimation.GoodTuringEstimator`.
    """
    if not 0.0 <= missing_mass <= 1.0:
        raise StrategyError("missing_mass must be in [0, 1]")
    return Uncertainty(name=name, utype=UncertaintyType.ONTOLOGICAL,
                       magnitude=missing_mass, location=location,
                       description=description)


class UncertaintyBudget:
    """The set of identified uncertainties of a system under development."""

    def __init__(self, system_name: str = "SuD"):
        self.system_name = system_name
        self._items: List[Uncertainty] = []

    def add(self, uncertainty: Uncertainty) -> None:
        if any(u.name == uncertainty.name for u in self._items):
            raise StrategyError(f"duplicate uncertainty {uncertainty.name!r}")
        self._items.append(uncertainty)

    def extend(self, uncertainties: Sequence[Uncertainty]) -> None:
        for u in uncertainties:
            self.add(u)

    @property
    def items(self) -> List[Uncertainty]:
        return list(self._items)

    def by_type(self, utype: UncertaintyType) -> List[Uncertainty]:
        return [u for u in self._items if u.utype is utype]

    def total(self, utype: Optional[UncertaintyType] = None) -> float:
        """Sum of magnitudes, optionally per type.

        Magnitudes of different types have different units; cross-type
        totals are intentionally not offered.
        """
        if utype is None:
            raise StrategyError(
                "totals across uncertainty types mix units; pass a type")
        return sum(u.magnitude for u in self.by_type(utype))

    def dominant(self, utype: UncertaintyType) -> Optional[Uncertainty]:
        candidates = self.by_type(utype)
        if not candidates:
            return None
        return max(candidates, key=lambda u: u.magnitude)

    def summary(self) -> Dict[str, float]:
        """Per-type totals keyed by type value string (report-friendly)."""
        return {ut.value: sum(u.magnitude for u in self.by_type(ut))
                for ut in UncertaintyType}

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (f"UncertaintyBudget({self.system_name!r}, "
                f"items={len(self._items)}, summary={self.summary()})")
