"""Rosen's modeling relation, executable (paper §II-A, Fig. 2).

A modeling relation couples a *physical system* (here: any simulator or
data source) to a *formal system* (a predictive model) through an encoding
of observables and a decoding of inferences.  The relation "commutes" to
the extent that decoding the model's inference reproduces the system's
actual causal consequence — measured here as a fidelity score on test
points, which is the operational content of "the model is accurate".
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.probability.distributions import Categorical, Distribution


class PhysicalSystem:
    """The natural system being modeled: a causal map plus observability.

    ``advance(state, t)`` is the system's actual causality (in experiments
    this is the high-fidelity simulator); ``observe`` adds the measurement
    channel's aleatory noise.
    """

    def __init__(self, name: str,
                 advance: Callable[[Any, float], Any],
                 observe: Optional[Callable[[Any, np.random.Generator], Any]] = None):
        self.name = name
        self._advance = advance
        self._observe = observe or (lambda state, rng: state)

    def advance(self, state: Any, t: float) -> Any:
        """True future state after duration t."""
        return self._advance(state, t)

    def observe(self, state: Any, rng: np.random.Generator) -> Any:
        """A (possibly noisy) observation of a state."""
        return self._observe(state, rng)

    def __repr__(self) -> str:
        return f"PhysicalSystem({self.name!r})"


class FormalModel(ABC):
    """A formal system standing in a modeling relation to a physical one."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def infer(self, encoded_state: Any, t: float) -> Any:
        """The model's inference: predicted encoded state after duration t."""

    @property
    @abstractmethod
    def is_deterministic(self) -> bool:
        """Deterministic models infer a single outcome; probabilistic ones
        infer statements about probabilistic outcomes (paper §II-A)."""

    def __repr__(self) -> str:
        kind = "deterministic" if self.is_deterministic else "probabilistic"
        return f"{type(self).__name__}({self.name!r}, {kind})"


class DeterministicModel(FormalModel):
    """Model A: a single-outcome predictor (e.g. integrated Newton laws)."""

    def __init__(self, name: str, predict: Callable[[Any, float], Any]):
        super().__init__(name)
        self._predict = predict

    def infer(self, encoded_state: Any, t: float) -> Any:
        return self._predict(encoded_state, t)

    @property
    def is_deterministic(self) -> bool:
        return True


class ProbabilisticModel(FormalModel):
    """Model B: predicts a distribution over outcomes.

    ``predict`` returns a :class:`Distribution`, a :class:`Categorical`,
    or any object with a log-scoring interface used by the relation's
    probabilistic fidelity check.
    """

    def __init__(self, name: str,
                 predict: Callable[[Any, float], Any]):
        super().__init__(name)
        self._predict = predict

    def infer(self, encoded_state: Any, t: float) -> Any:
        return self._predict(encoded_state, t)

    @property
    def is_deterministic(self) -> bool:
        return False


class ModelingRelation:
    """The commuting square: system causality vs encode-infer-decode.

    Parameters
    ----------
    system, model:
        The two sides of the relation.
    encode:
        Maps a physical state to the model's state representation
        (epsilon in Fig. 2).
    decode:
        Maps a model inference back to the physical observable
        (delta in Fig. 2).
    discrepancy:
        Scalar distance between "what the system did" and "what the model,
        decoded, said it would do".  Defaults to Euclidean distance for
        array-like outcomes.
    """

    def __init__(self, system: PhysicalSystem, model: FormalModel,
                 encode: Callable[[Any], Any] = lambda s: s,
                 decode: Callable[[Any], Any] = lambda s: s,
                 discrepancy: Optional[Callable[[Any, Any], float]] = None):
        self.system = system
        self.model = model
        self.encode = encode
        self.decode = decode
        self._discrepancy = discrepancy or _default_discrepancy

    def commutation_error(self, state: Any, t: float) -> float:
        """Discrepancy of the commuting square at one state and horizon."""
        actual = self.system.advance(state, t)
        inferred = self.decode(self.model.infer(self.encode(state), t))
        return float(self._discrepancy(actual, inferred))

    def fidelity(self, states: Sequence[Any], t: float) -> float:
        """Mean commutation error over test states (lower = better model).

        This is the quantitative residue of the paper's "the causality in
        the physical system is thereby mapped to logic inferences in the
        model": zero iff the square commutes exactly on the test set.
        """
        if not states:
            raise ModelError("fidelity requires at least one test state")
        return float(np.mean([self.commutation_error(s, t) for s in states]))

    def is_valid(self, states: Sequence[Any], t: float,
                 tolerance: float) -> bool:
        """Validity check: the model is usable for this behavior set iff its
        fidelity is within tolerance ("each model ... is valid for a given
        set of behavior that the modeler wants to describe")."""
        if tolerance < 0.0:
            raise ModelError("tolerance must be non-negative")
        return self.fidelity(states, t) <= tolerance

    def __repr__(self) -> str:
        return (f"ModelingRelation(system={self.system.name!r}, "
                f"model={self.model.name!r})")


def _default_discrepancy(actual: Any, inferred: Any) -> float:
    a = np.asarray(actual, dtype=float)
    b = np.asarray(inferred, dtype=float)
    if a.shape != b.shape:
        raise ModelError(
            f"cannot compare outcomes of shapes {a.shape} and {b.shape}")
    return float(np.linalg.norm(a - b))


def log_score(predicted: Categorical, observed: str) -> float:
    """Negative log likelihood of an observation under a categorical model.

    The natural discrepancy for probabilistic models: infinite when the
    observation is outside the model's support (the ontological signature).
    """
    p = predicted.prob(observed)
    if p <= 0.0:
        return float("inf")
    return -math.log(p)
