"""A deterministic parallel executor for campaigns and sweeps.

One ``map_chunked`` API, three backends:

- ``serial`` — in-process loop, zero overhead; the default.
- ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; cheap to
  spin up, shares memory, best when the work releases the GIL or is
  I/O-bound.  Each task runs under a :func:`contextvars.copy_context`
  snapshot taken at submission, so telemetry spans opened by workers nest
  under the caller's current span instead of interleaving.
- ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  CPU parallelism for the fault×scenario grids.  Tasks must be picklable
  (module-level functions or picklable callables).  Worker telemetry is
  merged home: each chunk runs under a local tracer whose finished spans
  the parent adopts (:meth:`repro.telemetry.tracing.Tracer.adopt`), and
  counter increments metered in the worker are shipped back as deltas and
  folded into the parent registry.  A chunk that *crashes* ships the
  same partial telemetry on its failure record, so the parent's trace
  shows where the worker died.  Under an active
  :func:`~repro.telemetry.observe.profile_session`, workers run local
  sampling profilers whose folded stacks merge home.  Histogram
  observations are dropped on the process boundary (only counters
  travel) — see DESIGN.md §9.

Two scaling mechanisms keep the process backend ahead of serial:

- **Shared-memory factor arena** (:mod:`repro.parallel.arena`): for
  ``map_with_context``, the numpy payload of the context (factor tables,
  CPTs, batched stacks) is packed once into a shared-memory segment and
  workers attach read-only views instead of unpickling copies.  The
  parent disposes the segment when the map ends (finalizer-backed, so
  crashes and SIGINT cannot leak ``/dev/shm`` segments), and a worker
  that reports a chunk failure releases its attachment first.
- **Cost-adaptive chunking**: ``map*`` accept per-item ``costs`` (e.g.
  trials × clique width for campaign cells) and cut contiguous,
  cost-balanced shards via
  :func:`repro.parallel.sharder.balanced_partition` instead of the fixed
  chunks-per-worker split — fewer dispatches, no straggler shard.

Determinism is the contract that makes the backends interchangeable:
results are reassembled in submission order, and seeded maps derive one
:class:`numpy.random.SeedSequence`-spawned stream **per item** (not per
chunk), so the chunking geometry — and therefore the worker count,
backend, shard count, and arena on/off — cannot change a single drawn
number.  Same seed, same results, byte for byte, on any backend at any
width.
"""

from __future__ import annotations

import contextvars
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParallelError
from repro.parallel.arena import (
    ArenaPayload,
    FactorArena,
    release_worker_arenas,
    restore_payload,
)
from repro.parallel.sharder import balanced_partition
from repro.telemetry import tracing
from repro.telemetry.metrics import PARALLEL_SHARDS, get_registry
from repro.telemetry.observe import SamplingProfiler, active_profiler
from repro.telemetry.tracing import DEFAULT_MAX_SPANS, SpanRecord, Tracer

#: Recognized backend names, in documentation order.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Chunks per worker when no costs and no explicit chunk size are given:
#: small enough to amortize dispatch, large enough to balance unknown
#: task costs by oversubscription.
_CHUNKS_PER_WORKER = 4

#: Shards per worker when per-item costs are known: the cost model does
#: the balancing, so mild oversubscription (pool scheduling slack)
#: suffices and dispatch overhead drops versus the blind heuristic.
_COST_SHARDS_PER_WORKER = 2


def spawn_generators(seed, n: int) -> List[np.random.Generator]:
    """``n`` independent generators spawned from one seed root.

    ``seed`` may be an int or a pre-built :class:`~numpy.random.SeedSequence`.
    Streams are statistically independent (SeedSequence spawning) and the
    i-th stream depends only on ``(seed, i)`` — never on how items are
    later grouped into chunks.
    """
    if n < 0:
        raise ParallelError(f"cannot spawn {n} generators")
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    return [np.random.Generator(np.random.PCG64(child))
            for child in root.spawn(n)]


class _ItemError(Exception):
    """Internal: item ``local_index`` of a chunk raised ``original``.

    Raised by :class:`_ApplyEach` so the backends can name the *global*
    item index (chunk start + local index) in the surfaced
    :class:`ParallelError`.
    """

    def __init__(self, local_index: int, original: BaseException):
        super().__init__(str(original))
        self.local_index = local_index
        self.original = original


class _ChunkFailure:
    """Picklable record of a failure inside a process-pool worker.

    Deliberately carries no exception *object*: a raised exception with
    unpicklable state (an open handle, a lock, a compiled engine) would
    fail to cross the process boundary and wedge the pool — the caller
    would hang instead of seeing an error.  Workers therefore *return*
    this record, and the parent raises the :class:`ParallelError`.

    It does carry the chunk's **partial telemetry** — the spans finished
    and the counter increments metered before the crash — so a failed
    chunk still shows up in the parent's trace (its last span marked
    ``error``) instead of vanishing from the record entirely.
    """

    __slots__ = ("item_index", "exc_type", "message", "worker_traceback",
                 "spans", "counter_deltas")

    def __init__(self, item_index: Optional[int], exc_type: str,
                 message: str, worker_traceback: str,
                 spans: Sequence[SpanRecord] = (),
                 counter_deltas: Optional[list] = None):
        self.item_index = item_index
        self.exc_type = exc_type
        self.message = message
        self.worker_traceback = worker_traceback
        self.spans = list(spans)
        self.counter_deltas = counter_deltas or []

    def describe(self) -> str:
        where = ("a worker chunk" if self.item_index is None
                 else f"item {self.item_index}")
        return (f"process worker failed on {where}: "
                f"{self.exc_type}: {self.message}\n"
                f"--- worker traceback ---\n{self.worker_traceback}")


def _chunk_failure(item_index: Optional[int], exc: BaseException):
    return _ChunkFailure(item_index, type(exc).__name__, str(exc),
                         _traceback.format_exc())


def _raise_item_error(exc: "_ItemError", start: int) -> None:
    """Convert an in-process :class:`_ItemError` to the public error."""
    raise ParallelError(
        f"item {start + exc.local_index} raised "
        f"{type(exc.original).__name__}: {exc.original}") from exc.original


def _chunk_starts(chunks: Sequence[Sequence[Any]]) -> List[int]:
    """Global index of each chunk's first item."""
    starts, offset = [], 0
    for chunk in chunks:
        starts.append(offset)
        offset += len(chunk)
    return starts


class _ApplyEach:
    """Lift an item function to a chunk function (picklable).

    A raising item is wrapped in :class:`_ItemError` carrying its
    chunk-local index, so the executor can report *which* item crashed
    rather than just that some chunk did.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, chunk: Sequence[Any]) -> List[Any]:
        results = []
        for i, item in enumerate(chunk):
            try:
                results.append(self.fn(item))
            except Exception as exc:
                raise _ItemError(i, exc) from exc
        return results


class _SeededCall:
    """Unpack ``(item, rng)`` pairs into ``fn(item, rng)`` (picklable)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any, np.random.Generator], Any]):
        self.fn = fn

    def __call__(self, pair: Tuple[Any, np.random.Generator]) -> Any:
        item, rng = pair
        return self.fn(item, rng)


#: Per-process shared context installed by the pool initializer for
#: :meth:`ParallelExecutor.map_with_context` — shipped to each worker
#: exactly once instead of once per chunk.  May be an
#: :class:`~repro.parallel.arena.ArenaPayload`, in which case the real
#: context is restored lazily (below) from shared memory.
_WORKER_CONTEXT: Any = None

#: Lazily restored form of an arena-shipped context, cached per worker.
_WORKER_CONTEXT_RESTORED: Any = None
_WORKER_CONTEXT_READY: bool = False


def _init_worker_context(context: Any) -> None:
    """Pool initializer: stash the once-shipped shared context."""
    global _WORKER_CONTEXT, _WORKER_CONTEXT_RESTORED, _WORKER_CONTEXT_READY
    _WORKER_CONTEXT = context
    _WORKER_CONTEXT_RESTORED = None
    _WORKER_CONTEXT_READY = False


def _worker_context() -> Any:
    """The usable shared context inside a pool worker.

    Arena-shipped payloads attach and restore on first use — inside the
    chunk's telemetry window, so the attach counter travels home, and an
    attach failure becomes an ordinary chunk failure instead of an
    initializer crash that wedges the pool.
    """
    global _WORKER_CONTEXT_RESTORED, _WORKER_CONTEXT_READY
    shipped = _WORKER_CONTEXT
    if not isinstance(shipped, ArenaPayload):
        return shipped
    if not _WORKER_CONTEXT_READY:
        _WORKER_CONTEXT_RESTORED = restore_payload(shipped)
        _WORKER_CONTEXT_READY = True
    return _WORKER_CONTEXT_RESTORED


def _release_worker_context() -> None:
    """Drop the restored context and detach its arena segments.

    The crash path: a worker about to ship a failure record must not
    keep shared segments mapped.  Restoration is lazy, so a subsequent
    healthy chunk on this worker just re-attaches.
    """
    global _WORKER_CONTEXT_RESTORED, _WORKER_CONTEXT_READY
    _WORKER_CONTEXT_RESTORED = None
    _WORKER_CONTEXT_READY = False
    release_worker_arenas()


def _run_chunk(fn: Callable[..., List[Any]], args: tuple, traced: bool,
               start: int, profile_interval: Optional[float]):
    """Run one chunk function under worker-side telemetry capture.

    Success returns ``(results, finished spans, counter deltas,
    (folded stacks, profile samples))``; a failure returns a
    :class:`_ChunkFailure` carrying the same spans/deltas recorded up to
    the crash, so partial work is never silently dropped.  The chunk
    runs under a fresh local tracer so the zero-cost-when-disabled gates
    see tracing enabled exactly as they would in the parent; counter
    deltas are measured against a snapshot taken on entry, so only the
    increments this chunk caused are shipped.  When the parent had a
    profiling session active, the chunk additionally runs under a local
    :class:`SamplingProfiler` whose folded stacks merge home.
    """
    registry = get_registry()
    before = registry.counter_snapshot()
    local = Tracer(max_spans=DEFAULT_MAX_SPANS) if traced else None
    profiler = (SamplingProfiler(interval=profile_interval).start()
                if profile_interval is not None else None)
    failure: Optional[_ChunkFailure] = None
    results: List[Any] = []
    try:
        if local is not None:
            with tracing.session(local):
                results = fn(*args)
        else:
            results = fn(*args)
    except _ItemError as exc:
        failure = _chunk_failure(start + exc.local_index, exc.original)
    except Exception as exc:
        failure = _chunk_failure(None, exc)
    finally:
        if profiler is not None:
            profiler.stop()
    spans = list(local.finished) if local is not None else []
    deltas = registry.counter_deltas(before)
    if failure is not None:
        failure.spans = spans
        failure.counter_deltas = deltas
        return failure
    folded = (profiler.folded(), profiler.samples) \
        if profiler is not None else ({}, 0)
    return results, spans, deltas, folded


def _process_chunk(payload):
    """Chunk entry point inside a pool worker (plain ``fn(chunk)``).

    Never raises: a failure comes home as a :class:`_ChunkFailure`
    (see its docstring for why) and the parent turns it into a
    :class:`ParallelError` naming the global item index.
    """
    fn, chunk, traced, start, profile_interval = payload
    return _run_chunk(fn, (chunk,), traced, start, profile_interval)


def _apply_with_context(fn, chunk):
    """Resolve the worker context (attaching the arena on first use —
    inside the chunk's telemetry window) and run the chunk function."""
    return fn(_worker_context(), chunk)


def _process_chunk_with_context(payload):
    """Chunk entry point for context maps: ``fn(context, chunk)`` where
    the context was installed once per worker by the pool initializer.

    A failing chunk releases the worker's arena attachments *before* the
    failure record ships home (see :func:`_release_worker_context`).
    """
    fn, chunk, traced, start, profile_interval = payload
    result = _run_chunk(_apply_with_context, (fn, chunk), traced, start,
                        profile_interval)
    if isinstance(result, _ChunkFailure):
        _release_worker_context()
    return result


def _profile_interval() -> Optional[float]:
    """The parent's active profiling interval, or None when off."""
    profiler = active_profiler()
    return profiler.interval if profiler is not None else None


class ParallelExecutor:
    """Deterministic fan-out over serial, thread, or process backends.

    ``backend=None`` resolves to ``serial`` for ``workers=1`` and
    ``thread`` otherwise.  Whatever the backend and width, ``map*``
    results come back in submission order and seeded work consumes
    per-item RNG streams, so outputs are byte-identical across
    configurations.

    ``shards`` pins the number of chunks a map is cut into (cost-balanced
    when the map supplies per-item ``costs``); by default the executor
    picks the count itself.  ``use_arena=False`` opts
    :meth:`map_with_context` out of shared-memory context shipping and
    falls back to per-worker pickling — results are byte-identical
    either way.
    """

    def __init__(self, workers: int = 1, backend: Optional[str] = None,
                 chunk_size: Optional[int] = None,
                 shards: Optional[int] = None, use_arena: bool = True):
        workers = int(workers)
        if workers < 1:
            raise ParallelError(f"workers must be at least 1, got {workers}")
        if backend is None:
            backend = "serial" if workers == 1 else "thread"
        if backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
        if chunk_size is not None and chunk_size < 1:
            raise ParallelError(
                f"chunk_size must be at least 1, got {chunk_size}")
        if shards is not None and int(shards) < 1:
            raise ParallelError(
                f"shards must be at least 1, got {shards}")
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size
        self.shards = int(shards) if shards is not None else None
        self.use_arena = bool(use_arena)

    # -- public maps ------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            costs: Optional[Sequence[float]] = None) -> List[Any]:
        """``[fn(item) for item in items]``, fanned out, order preserved."""
        return self.map_chunked(_ApplyEach(fn), items, costs=costs)

    def map_seeded(self, fn: Callable[[Any, np.random.Generator], Any],
                   items: Iterable[Any], seed,
                   costs: Optional[Sequence[float]] = None) -> List[Any]:
        """Seeded map: ``fn(item, rng_i)`` with one spawned stream per item.

        The i-th stream depends only on ``(seed, i)``, so results do not
        depend on chunking, backend, or worker count.
        """
        items = list(items)
        rngs = spawn_generators(seed, len(items))
        return self.map(_SeededCall(fn), list(zip(items, rngs)), costs=costs)

    def map_with_context(self,
                         fn: Callable[[Any, Sequence[Any]], List[Any]],
                         context: Any, items: Iterable[Any],
                         costs: Optional[Sequence[float]] = None
                         ) -> List[Any]:
        """Chunked map with one shared, read-only context object.

        ``fn(context, chunk)`` must return one result per chunk item.
        The serial and thread backends pass ``context`` straight through
        (workers that need private mutable state should fork it, e.g.
        :meth:`~repro.bayesnet.engine.CompiledNetwork.fork`).  The
        process backend ships the context **once per worker** via the
        pool initializer — and when the context embeds numpy arrays
        (factor tables, CPTs, batched stacks), those bytes are packed
        into a shared-memory :class:`~repro.parallel.arena.FactorArena`
        that workers attach read-only views to, so the heavy payload is
        not even copied per worker.  The segment is disposed when the
        map ends, crash or not.  Per-item ``costs`` opt the split into
        cost-balanced sharding (see :meth:`_split`).
        """
        items = list(items)
        if not items:
            return []
        chunks = self._split(items, costs)
        starts = _chunk_starts(chunks)
        PARALLEL_SHARDS.inc(len(chunks), backend=self.backend)
        with tracing.span("parallel.map", backend=self.backend,
                          workers=self.workers, items=len(items),
                          chunks=len(chunks)):
            if self.backend == "process" and self.workers > 1 \
                    and len(chunks) > 1:
                traced = tracing.enabled()
                interval = _profile_interval()
                payloads = [(fn, chunk, traced, start, interval)
                            for chunk, start in zip(chunks, starts)]
                arena = FactorArena.pack(context) if self.use_arena else None
                shipped = arena.payload if arena is not None else context
                try:
                    with ProcessPoolExecutor(
                            max_workers=self.workers,
                            initializer=_init_worker_context,
                            initargs=(shipped,)) as pool:
                        raw = list(pool.map(_process_chunk_with_context,
                                            payloads))
                finally:
                    if arena is not None:
                        arena.dispose()
                outputs = self._adopt_process_outputs(raw)
            elif self.backend == "thread" and self.workers > 1 \
                    and len(chunks) > 1:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    futures = [pool.submit(contextvars.copy_context().run,
                                           fn, context, chunk)
                               for chunk in chunks]
                    outputs = []
                    for future, start in zip(futures, starts):
                        try:
                            outputs.append(future.result())
                        except _ItemError as exc:
                            _raise_item_error(exc, start)
            else:
                outputs = []
                for chunk, start in zip(chunks, starts):
                    try:
                        outputs.append(fn(context, chunk))
                    except _ItemError as exc:
                        _raise_item_error(exc, start)
        results = [result for chunk_out in outputs for result in chunk_out]
        if len(results) != len(items):
            raise ParallelError(
                f"chunk function returned {len(results)} results for "
                f"{len(items)} items — it must return one result per item")
        return results

    def map_chunked(self, fn: Callable[[Sequence[Any]], List[Any]],
                    items: Iterable[Any],
                    costs: Optional[Sequence[float]] = None) -> List[Any]:
        """Apply a chunk function over ``items``; one flat ordered result.

        ``fn`` receives a list slice and must return one result per item.
        This is the primitive the other maps lower onto — use it directly
        when per-chunk setup (a fresh engine, a trial network) should be
        amortized across the chunk's items.  ``costs`` (one non-negative
        float per item) switches the split to contiguous cost-balanced
        shards; chunk geometry never changes results, only wall-clock.
        """
        items = list(items)
        if not items:
            return []
        chunks = self._split(items, costs)
        starts = _chunk_starts(chunks)
        PARALLEL_SHARDS.inc(len(chunks), backend=self.backend)
        with tracing.span("parallel.map", backend=self.backend,
                          workers=self.workers, items=len(items),
                          chunks=len(chunks)):
            if self.backend == "process" and self.workers > 1 \
                    and len(chunks) > 1:
                outputs = self._run_process(fn, chunks, starts)
            elif self.backend == "thread" and self.workers > 1 \
                    and len(chunks) > 1:
                outputs = self._run_thread(fn, chunks, starts)
            else:
                outputs = []
                for chunk, start in zip(chunks, starts):
                    try:
                        outputs.append(fn(chunk))
                    except _ItemError as exc:
                        _raise_item_error(exc, start)
        results = [result for chunk_out in outputs for result in chunk_out]
        if len(results) != len(items):
            raise ParallelError(
                f"chunk function returned {len(results)} results for "
                f"{len(items)} items — it must return one result per item")
        return results

    # -- backends ---------------------------------------------------------------

    def _split(self, items: List[Any],
               costs: Optional[Sequence[float]] = None) -> List[List[Any]]:
        """Cut ``items`` into the chunks one map dispatches.

        Priority: an explicit ``chunk_size`` wins; then a pinned
        ``shards`` count (cost-balanced when costs are given); then,
        when per-item costs are known, cost-balanced shards at
        :data:`_COST_SHARDS_PER_WORKER` per worker; else the legacy
        equal-size chunks-per-worker heuristic.  All cuts are contiguous
        — reassembly is plain concatenation in submission order.
        """
        size = self.chunk_size
        if size is not None:
            return [items[i:i + size] for i in range(0, len(items), size)]
        if costs is not None and len(costs) != len(items):
            raise ParallelError(
                f"got {len(costs)} costs for {len(items)} items")
        if self.shards is not None:
            n_parts = min(self.shards, len(items))
        elif costs is not None and self.workers > 1:
            n_parts = min(len(items),
                          self.workers * _COST_SHARDS_PER_WORKER)
        else:
            if self.workers == 1:
                size = len(items)
            else:
                size = -(-len(items) // (self.workers * _CHUNKS_PER_WORKER))
            return [items[i:i + size] for i in range(0, len(items), size)]
        if costs is None:
            costs = [1.0] * len(items)
        return [items[a:b] for a, b in balanced_partition(costs, n_parts)]

    def _run_thread(self, fn, chunks, starts):
        # Snapshot the context per submission: worker spans nest under
        # the caller's parallel.map span, and each task gets its own
        # Context (one Context object cannot be entered concurrently).
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(contextvars.copy_context().run, fn, chunk)
                       for chunk in chunks]
            outputs = []
            for future, start in zip(futures, starts):
                try:
                    outputs.append(future.result())
                except _ItemError as exc:
                    _raise_item_error(exc, start)
            return outputs

    def _run_process(self, fn, chunks, starts):
        traced = tracing.enabled()
        interval = _profile_interval()
        payloads = [(fn, chunk, traced, start, interval)
                    for chunk, start in zip(chunks, starts)]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            outputs = list(pool.map(_process_chunk, payloads))
        return self._adopt_process_outputs(outputs)

    def _adopt_process_outputs(self, outputs):
        """Fold worker telemetry home; surface any worker failure.

        Telemetry from every chunk — including the partial spans and
        counter deltas a :class:`_ChunkFailure` carries — is adopted
        before the first failure is raised as a :class:`ParallelError`,
        so a partial run still reports the work it did and the crashed
        chunk's trace shows where it died.
        """
        tracer = tracing.active()
        parent = tracer.current_span() if tracer is not None else None
        registry = get_registry()
        profiler = active_profiler()
        results = []
        failure = None
        for output in outputs:
            if isinstance(output, _ChunkFailure):
                if output.counter_deltas:
                    registry.apply_counter_deltas(output.counter_deltas)
                if tracer is not None and output.spans:
                    tracer.adopt(output.spans, parent=parent)
                if failure is None:
                    failure = output
                continue
            chunk_results, spans, deltas, (folded, samples) = output
            if deltas:
                registry.apply_counter_deltas(deltas)
            if tracer is not None and spans:
                tracer.adopt(spans, parent=parent)
            if profiler is not None and folded:
                profiler.merge(folded, samples)
            results.append(chunk_results)
        if failure is not None:
            raise ParallelError(failure.describe())
        return results

    def __repr__(self) -> str:
        return (f"ParallelExecutor(workers={self.workers}, "
                f"backend={self.backend!r})")
