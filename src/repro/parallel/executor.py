"""A deterministic parallel executor for campaigns and sweeps.

One ``map_chunked`` API, three backends:

- ``serial`` — in-process loop, zero overhead; the default.
- ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; cheap to
  spin up, shares memory, best when the work releases the GIL or is
  I/O-bound.  Each task runs under a :func:`contextvars.copy_context`
  snapshot taken at submission, so telemetry spans opened by workers nest
  under the caller's current span instead of interleaving.
- ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  CPU parallelism for the fault×scenario grids.  Tasks must be picklable
  (module-level functions or picklable callables).  Worker telemetry is
  merged home: each chunk runs under a local tracer whose finished spans
  the parent adopts (:meth:`repro.telemetry.tracing.Tracer.adopt`), and
  counter increments metered in the worker are shipped back as deltas and
  folded into the parent registry.  A chunk that *crashes* ships the
  same partial telemetry on its failure record, so the parent's trace
  shows where the worker died.  Under an active
  :func:`~repro.telemetry.observe.profile_session`, workers run local
  sampling profilers whose folded stacks merge home.  Histogram
  observations are dropped on the process boundary (only counters
  travel) — see DESIGN.md §9.

Determinism is the contract that makes the backends interchangeable:
results are reassembled in submission order, and seeded maps derive one
:class:`numpy.random.SeedSequence`-spawned stream **per item** (not per
chunk), so the chunking geometry — and therefore the worker count and
backend — cannot change a single drawn number.  Same seed, same results,
byte for byte, on any backend at any width.
"""

from __future__ import annotations

import contextvars
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParallelError
from repro.telemetry import tracing
from repro.telemetry.metrics import get_registry
from repro.telemetry.observe import SamplingProfiler, active_profiler
from repro.telemetry.tracing import DEFAULT_MAX_SPANS, SpanRecord, Tracer

#: Recognized backend names, in documentation order.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Chunks per worker when no explicit chunk size is given: small enough
#: to amortize dispatch, large enough to balance uneven task costs.
_CHUNKS_PER_WORKER = 4


def spawn_generators(seed, n: int) -> List[np.random.Generator]:
    """``n`` independent generators spawned from one seed root.

    ``seed`` may be an int or a pre-built :class:`~numpy.random.SeedSequence`.
    Streams are statistically independent (SeedSequence spawning) and the
    i-th stream depends only on ``(seed, i)`` — never on how items are
    later grouped into chunks.
    """
    if n < 0:
        raise ParallelError(f"cannot spawn {n} generators")
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    return [np.random.Generator(np.random.PCG64(child))
            for child in root.spawn(n)]


class _ItemError(Exception):
    """Internal: item ``local_index`` of a chunk raised ``original``.

    Raised by :class:`_ApplyEach` so the backends can name the *global*
    item index (chunk start + local index) in the surfaced
    :class:`ParallelError`.
    """

    def __init__(self, local_index: int, original: BaseException):
        super().__init__(str(original))
        self.local_index = local_index
        self.original = original


class _ChunkFailure:
    """Picklable record of a failure inside a process-pool worker.

    Deliberately carries no exception *object*: a raised exception with
    unpicklable state (an open handle, a lock, a compiled engine) would
    fail to cross the process boundary and wedge the pool — the caller
    would hang instead of seeing an error.  Workers therefore *return*
    this record, and the parent raises the :class:`ParallelError`.

    It does carry the chunk's **partial telemetry** — the spans finished
    and the counter increments metered before the crash — so a failed
    chunk still shows up in the parent's trace (its last span marked
    ``error``) instead of vanishing from the record entirely.
    """

    __slots__ = ("item_index", "exc_type", "message", "worker_traceback",
                 "spans", "counter_deltas")

    def __init__(self, item_index: Optional[int], exc_type: str,
                 message: str, worker_traceback: str,
                 spans: Sequence[SpanRecord] = (),
                 counter_deltas: Optional[list] = None):
        self.item_index = item_index
        self.exc_type = exc_type
        self.message = message
        self.worker_traceback = worker_traceback
        self.spans = list(spans)
        self.counter_deltas = counter_deltas or []

    def describe(self) -> str:
        where = ("a worker chunk" if self.item_index is None
                 else f"item {self.item_index}")
        return (f"process worker failed on {where}: "
                f"{self.exc_type}: {self.message}\n"
                f"--- worker traceback ---\n{self.worker_traceback}")


def _chunk_failure(item_index: Optional[int], exc: BaseException):
    return _ChunkFailure(item_index, type(exc).__name__, str(exc),
                         _traceback.format_exc())


def _raise_item_error(exc: "_ItemError", start: int) -> None:
    """Convert an in-process :class:`_ItemError` to the public error."""
    raise ParallelError(
        f"item {start + exc.local_index} raised "
        f"{type(exc.original).__name__}: {exc.original}") from exc.original


def _chunk_starts(chunks: Sequence[Sequence[Any]]) -> List[int]:
    """Global index of each chunk's first item."""
    starts, offset = [], 0
    for chunk in chunks:
        starts.append(offset)
        offset += len(chunk)
    return starts


class _ApplyEach:
    """Lift an item function to a chunk function (picklable).

    A raising item is wrapped in :class:`_ItemError` carrying its
    chunk-local index, so the executor can report *which* item crashed
    rather than just that some chunk did.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, chunk: Sequence[Any]) -> List[Any]:
        results = []
        for i, item in enumerate(chunk):
            try:
                results.append(self.fn(item))
            except Exception as exc:
                raise _ItemError(i, exc) from exc
        return results


class _SeededCall:
    """Unpack ``(item, rng)`` pairs into ``fn(item, rng)`` (picklable)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any, np.random.Generator], Any]):
        self.fn = fn

    def __call__(self, pair: Tuple[Any, np.random.Generator]) -> Any:
        item, rng = pair
        return self.fn(item, rng)


#: Per-process shared context installed by the pool initializer for
#: :meth:`ParallelExecutor.map_with_context` — shipped to each worker
#: exactly once instead of once per chunk.
_WORKER_CONTEXT: Any = None


def _init_worker_context(context: Any) -> None:
    """Pool initializer: stash the once-shipped shared context."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_chunk(fn: Callable[..., List[Any]], args: tuple, traced: bool,
               start: int, profile_interval: Optional[float]):
    """Run one chunk function under worker-side telemetry capture.

    Success returns ``(results, finished spans, counter deltas,
    (folded stacks, profile samples))``; a failure returns a
    :class:`_ChunkFailure` carrying the same spans/deltas recorded up to
    the crash, so partial work is never silently dropped.  The chunk
    runs under a fresh local tracer so the zero-cost-when-disabled gates
    see tracing enabled exactly as they would in the parent; counter
    deltas are measured against a snapshot taken on entry, so only the
    increments this chunk caused are shipped.  When the parent had a
    profiling session active, the chunk additionally runs under a local
    :class:`SamplingProfiler` whose folded stacks merge home.
    """
    registry = get_registry()
    before = registry.counter_snapshot()
    local = Tracer(max_spans=DEFAULT_MAX_SPANS) if traced else None
    profiler = (SamplingProfiler(interval=profile_interval).start()
                if profile_interval is not None else None)
    failure: Optional[_ChunkFailure] = None
    results: List[Any] = []
    try:
        if local is not None:
            with tracing.session(local):
                results = fn(*args)
        else:
            results = fn(*args)
    except _ItemError as exc:
        failure = _chunk_failure(start + exc.local_index, exc.original)
    except Exception as exc:
        failure = _chunk_failure(None, exc)
    finally:
        if profiler is not None:
            profiler.stop()
    spans = list(local.finished) if local is not None else []
    deltas = registry.counter_deltas(before)
    if failure is not None:
        failure.spans = spans
        failure.counter_deltas = deltas
        return failure
    folded = (profiler.folded(), profiler.samples) \
        if profiler is not None else ({}, 0)
    return results, spans, deltas, folded


def _process_chunk(payload):
    """Chunk entry point inside a pool worker (plain ``fn(chunk)``).

    Never raises: a failure comes home as a :class:`_ChunkFailure`
    (see its docstring for why) and the parent turns it into a
    :class:`ParallelError` naming the global item index.
    """
    fn, chunk, traced, start, profile_interval = payload
    return _run_chunk(fn, (chunk,), traced, start, profile_interval)


def _process_chunk_with_context(payload):
    """Chunk entry point for context maps: ``fn(context, chunk)`` where
    the context was installed once per worker by the pool initializer."""
    fn, chunk, traced, start, profile_interval = payload
    return _run_chunk(fn, (_WORKER_CONTEXT, chunk), traced, start,
                      profile_interval)


def _profile_interval() -> Optional[float]:
    """The parent's active profiling interval, or None when off."""
    profiler = active_profiler()
    return profiler.interval if profiler is not None else None


class ParallelExecutor:
    """Deterministic fan-out over serial, thread, or process backends.

    ``backend=None`` resolves to ``serial`` for ``workers=1`` and
    ``thread`` otherwise.  Whatever the backend and width, ``map*``
    results come back in submission order and seeded work consumes
    per-item RNG streams, so outputs are byte-identical across
    configurations.
    """

    def __init__(self, workers: int = 1, backend: Optional[str] = None,
                 chunk_size: Optional[int] = None):
        workers = int(workers)
        if workers < 1:
            raise ParallelError(f"workers must be at least 1, got {workers}")
        if backend is None:
            backend = "serial" if workers == 1 else "thread"
        if backend not in BACKENDS:
            raise ParallelError(
                f"unknown backend {backend!r}; choose from {list(BACKENDS)}")
        if chunk_size is not None and chunk_size < 1:
            raise ParallelError(
                f"chunk_size must be at least 1, got {chunk_size}")
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size

    # -- public maps ------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """``[fn(item) for item in items]``, fanned out, order preserved."""
        return self.map_chunked(_ApplyEach(fn), items)

    def map_seeded(self, fn: Callable[[Any, np.random.Generator], Any],
                   items: Iterable[Any], seed) -> List[Any]:
        """Seeded map: ``fn(item, rng_i)`` with one spawned stream per item.

        The i-th stream depends only on ``(seed, i)``, so results do not
        depend on chunking, backend, or worker count.
        """
        items = list(items)
        rngs = spawn_generators(seed, len(items))
        return self.map(_SeededCall(fn), list(zip(items, rngs)))

    def map_with_context(self,
                         fn: Callable[[Any, Sequence[Any]], List[Any]],
                         context: Any, items: Iterable[Any]) -> List[Any]:
        """Chunked map with one shared, read-only context object.

        ``fn(context, chunk)`` must return one result per chunk item.
        The serial and thread backends pass ``context`` straight through
        (workers that need private mutable state should fork it, e.g.
        :meth:`~repro.bayesnet.engine.CompiledNetwork.fork`); the
        process backend pickles ``context`` **once per worker** via the
        pool initializer — not once per chunk — so an expensive payload
        like a prewarmed compiled engine ships a fixed number of times
        regardless of how many chunks the sweep fans out.
        """
        items = list(items)
        if not items:
            return []
        chunks = self._split(items)
        starts = _chunk_starts(chunks)
        with tracing.span("parallel.map", backend=self.backend,
                          workers=self.workers, items=len(items),
                          chunks=len(chunks)):
            if self.backend == "process" and self.workers > 1 \
                    and len(chunks) > 1:
                traced = tracing.enabled()
                interval = _profile_interval()
                payloads = [(fn, chunk, traced, start, interval)
                            for chunk, start in zip(chunks, starts)]
                with ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_init_worker_context,
                        initargs=(context,)) as pool:
                    raw = list(pool.map(_process_chunk_with_context,
                                        payloads))
                outputs = self._adopt_process_outputs(raw)
            elif self.backend == "thread" and self.workers > 1 \
                    and len(chunks) > 1:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    futures = [pool.submit(contextvars.copy_context().run,
                                           fn, context, chunk)
                               for chunk in chunks]
                    outputs = []
                    for future, start in zip(futures, starts):
                        try:
                            outputs.append(future.result())
                        except _ItemError as exc:
                            _raise_item_error(exc, start)
            else:
                outputs = []
                for chunk, start in zip(chunks, starts):
                    try:
                        outputs.append(fn(context, chunk))
                    except _ItemError as exc:
                        _raise_item_error(exc, start)
        results = [result for chunk_out in outputs for result in chunk_out]
        if len(results) != len(items):
            raise ParallelError(
                f"chunk function returned {len(results)} results for "
                f"{len(items)} items — it must return one result per item")
        return results

    def map_chunked(self, fn: Callable[[Sequence[Any]], List[Any]],
                    items: Iterable[Any]) -> List[Any]:
        """Apply a chunk function over ``items``; one flat ordered result.

        ``fn`` receives a list slice and must return one result per item.
        This is the primitive the other maps lower onto — use it directly
        when per-chunk setup (a fresh engine, a trial network) should be
        amortized across the chunk's items.
        """
        items = list(items)
        if not items:
            return []
        chunks = self._split(items)
        starts = _chunk_starts(chunks)
        with tracing.span("parallel.map", backend=self.backend,
                          workers=self.workers, items=len(items),
                          chunks=len(chunks)):
            if self.backend == "process" and self.workers > 1 \
                    and len(chunks) > 1:
                outputs = self._run_process(fn, chunks, starts)
            elif self.backend == "thread" and self.workers > 1 \
                    and len(chunks) > 1:
                outputs = self._run_thread(fn, chunks, starts)
            else:
                outputs = []
                for chunk, start in zip(chunks, starts):
                    try:
                        outputs.append(fn(chunk))
                    except _ItemError as exc:
                        _raise_item_error(exc, start)
        results = [result for chunk_out in outputs for result in chunk_out]
        if len(results) != len(items):
            raise ParallelError(
                f"chunk function returned {len(results)} results for "
                f"{len(items)} items — it must return one result per item")
        return results

    # -- backends ---------------------------------------------------------------

    def _split(self, items: List[Any]) -> List[List[Any]]:
        size = self.chunk_size
        if size is None:
            if self.workers == 1:
                size = len(items)
            else:
                size = -(-len(items) // (self.workers * _CHUNKS_PER_WORKER))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _run_thread(self, fn, chunks, starts):
        # Snapshot the context per submission: worker spans nest under
        # the caller's parallel.map span, and each task gets its own
        # Context (one Context object cannot be entered concurrently).
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(contextvars.copy_context().run, fn, chunk)
                       for chunk in chunks]
            outputs = []
            for future, start in zip(futures, starts):
                try:
                    outputs.append(future.result())
                except _ItemError as exc:
                    _raise_item_error(exc, start)
            return outputs

    def _run_process(self, fn, chunks, starts):
        traced = tracing.enabled()
        interval = _profile_interval()
        payloads = [(fn, chunk, traced, start, interval)
                    for chunk, start in zip(chunks, starts)]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            outputs = list(pool.map(_process_chunk, payloads))
        return self._adopt_process_outputs(outputs)

    def _adopt_process_outputs(self, outputs):
        """Fold worker telemetry home; surface any worker failure.

        Telemetry from every chunk — including the partial spans and
        counter deltas a :class:`_ChunkFailure` carries — is adopted
        before the first failure is raised as a :class:`ParallelError`,
        so a partial run still reports the work it did and the crashed
        chunk's trace shows where it died.
        """
        tracer = tracing.active()
        parent = tracer.current_span() if tracer is not None else None
        registry = get_registry()
        profiler = active_profiler()
        results = []
        failure = None
        for output in outputs:
            if isinstance(output, _ChunkFailure):
                if output.counter_deltas:
                    registry.apply_counter_deltas(output.counter_deltas)
                if tracer is not None and output.spans:
                    tracer.adopt(output.spans, parent=parent)
                if failure is None:
                    failure = output
                continue
            chunk_results, spans, deltas, (folded, samples) = output
            if deltas:
                registry.apply_counter_deltas(deltas)
            if tracer is not None and spans:
                tracer.adopt(spans, parent=parent)
            if profiler is not None and folded:
                profiler.merge(folded, samples)
            results.append(chunk_results)
        if failure is not None:
            raise ParallelError(failure.describe())
        return results

    def __repr__(self) -> str:
        return (f"ParallelExecutor(workers={self.workers}, "
                f"backend={self.backend!r})")
