"""Deterministic cost-balanced sharding of work grids.

The executor's fixed chunks-per-worker heuristic treats every item as
equally expensive.  Campaign cells are not: a cell's work scales with
``trials × clique width`` of the compiled plan (DESIGN §14), and a sweep
mixing cheap and expensive cells under equal-size chunks leaves workers
idle behind the unlucky one.  :func:`balanced_partition` cuts an item
sequence into **contiguous** parts whose summed costs track the uniform
cost target — contiguity is what keeps sharded results mergeable by
plain ordered concatenation, which is what preserves the byte-identity
guarantee of campaign reports.

:class:`CampaignSharder` wraps the same partition for *distributed* use:
shard a (fault × intensity × trial) grid into ``m`` deterministic
fragments, run each fragment anywhere (another process, another
machine), and merge the per-shard results back in shard order.  Same
costs, same shard count → same cuts, every time; there is no randomness
anywhere in the split.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParallelError

__all__ = ["balanced_partition", "CampaignSharder"]


def balanced_partition(costs: Sequence[float], n_parts: int
                       ) -> List[Tuple[int, int]]:
    """Cut ``range(len(costs))`` into ``n_parts`` contiguous ranges of
    near-equal summed cost.

    Returns ``[(start, stop), ...]`` half-open ranges, in order, covering
    every index exactly once; at most ``len(costs)`` parts are produced
    (every part is non-empty).  The cut points are chosen greedily
    against the uniform cumulative target ``total × k / n_parts`` —
    deterministic, so the same costs always shard the same way.
    """
    n = len(costs)
    if n_parts < 1:
        raise ParallelError(f"n_parts must be at least 1, got {n_parts}")
    if n == 0:
        return []
    costs = [float(c) for c in costs]
    for c in costs:
        if c < 0.0:
            raise ParallelError(f"costs must be non-negative, got {c}")
    n_parts = min(n_parts, n)
    total = sum(costs)
    if total <= 0.0:
        # All-zero costs carry no balance signal: fall back to equal
        # index ranges so a degenerate model still spreads the items.
        bounds = [round(k * n / n_parts) for k in range(n_parts + 1)]
        return [(bounds[k], bounds[k + 1]) for k in range(n_parts)]
    ranges: List[Tuple[int, int]] = []
    start, cum = 0, 0.0
    for part in range(n_parts):
        remaining_parts = n_parts - part
        # Later parts must each get at least one item.
        stop_max = n - (remaining_parts - 1)
        stop = start + 1
        cum += costs[start]
        target = total * (part + 1) / n_parts
        while stop < stop_max:
            extended = cum + costs[stop]
            # Take the next item while doing so lands no further from
            # the cumulative target than stopping here would.
            if abs(extended - target) <= abs(cum - target):
                cum = extended
                stop += 1
            else:
                break
        ranges.append((start, stop))
        start = stop
    return ranges


class CampaignSharder:
    """Deterministic grid sharder with order-preserving merge.

    ``shards`` is the number of fragments the grid is cut into; the cuts
    come from :func:`balanced_partition` over the per-item costs, so a
    heavier cell pulls its shard boundary in.  Because shards are
    contiguous slices of the original order, merging the per-shard
    results in shard order reproduces the serial result sequence exactly
    — the property campaign byte-identity rests on.
    """

    def __init__(self, shards: int):
        shards = int(shards)
        if shards < 1:
            raise ParallelError(f"shards must be at least 1, got {shards}")
        self.shards = shards

    def shard_ranges(self, n_items: int,
                     costs: Optional[Sequence[float]] = None
                     ) -> List[Tuple[int, int]]:
        """The ``(start, stop)`` index range of every shard, in order."""
        if n_items < 0:
            raise ParallelError(f"n_items must be non-negative, got {n_items}")
        if costs is None:
            costs = [1.0] * n_items
        if len(costs) != n_items:
            raise ParallelError(
                f"got {len(costs)} costs for {n_items} items")
        return balanced_partition(costs, self.shards)

    def partition(self, items: Sequence[Any],
                  costs: Optional[Sequence[float]] = None) -> List[List[Any]]:
        """Split ``items`` into at most ``shards`` contiguous fragments."""
        items = list(items)
        return [items[a:b] for a, b in self.shard_ranges(len(items), costs)]

    def merge(self, fragments: Iterable[Sequence[Any]],
              expected_items: Optional[int] = None) -> List[Any]:
        """Concatenate per-shard results back into original grid order.

        Fragments must be passed in shard order (0..shards-1) — the
        shards are contiguous slices, so ordered concatenation *is* the
        inverse of :meth:`partition`.  ``expected_items`` cross-checks
        that no fragment was dropped or truncated.
        """
        merged: List[Any] = []
        for fragment in fragments:
            merged.extend(fragment)
        if expected_items is not None and len(merged) != expected_items:
            raise ParallelError(
                f"merged {len(merged)} results, expected {expected_items} — "
                "a shard fragment is missing or truncated")
        return merged

    def __repr__(self) -> str:
        return f"CampaignSharder(shards={self.shards})"
