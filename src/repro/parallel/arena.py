"""Shared-memory factor arena: zero-copy context shipping for workers.

``ParallelExecutor.map_with_context`` ships its context to every process
worker via the pool initializer.  For the contexts that matter — a
prewarmed :class:`~repro.bayesnet.engine.CompiledNetwork`, tornado CPT
lists, stacked :class:`~repro.bayesnet.factor.BatchedFactor` tables —
the bulk of that payload is numpy arrays, and pickling copies every byte
once per worker.  The arena removes the copies: at pool start the parent
extracts every eligible ndarray out of the context into **one**
``multiprocessing.shared_memory`` block, and workers attach read-only
views over the same physical pages.

Mechanically this is a pickled-object surgery, not a schema:

- :meth:`FactorArena.pack` pickles the context with a custom pickler
  whose ``persistent_id`` hoists each C-contiguous numeric ndarray into
  the block (deduplicated by identity, 64-byte aligned) and leaves a
  ``(tag, index)`` reference in the pickle stream.  Anything that is not
  an eligible array pickles normally, so arbitrary contexts work.
- Workers rebuild the context with the matching ``persistent_load``,
  which maps each reference to a **read-only** numpy view over the
  attached block.  Read-only is deliberate: a worker mutating a shared
  table in place would silently corrupt its siblings; with the arena it
  raises instead (fork/copy first, as the engine already does).

Cleanup is finalizer-backed on both sides: the parent's
:class:`FactorArena` closes **and unlinks** its segment when disposed,
garbage-collected, or interrupted (``weakref.finalize`` runs on normal
interpreter shutdown and on ``KeyboardInterrupt`` unwinds), and worker
attachments close on release or process exit — so no ``/dev/shm``
segment outlives the map that created it.  ``multiprocessing``'s
resource tracker remains the backstop for hard kills.  See DESIGN §14.
"""

from __future__ import annotations

import io
import os
import itertools
import pickle
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ParallelError
from repro.telemetry.metrics import PARALLEL_ARENA_BYTES

__all__ = [
    "ArenaPayload",
    "ArenaSpec",
    "FactorArena",
    "live_arena_segments",
    "live_worker_attachments",
    "release_worker_arenas",
    "restore_payload",
]

#: Namespace tag of arena persistent ids inside the pickle stream.
_PID_TAG = "repro.parallel.arena"

#: Alignment of each packed table inside the block — cache-line sized so
#: attached views start aligned regardless of their neighbors.
_ALIGN = 64

#: Arrays smaller than this pickle inline: a persistent-id indirection
#: plus a manifest entry costs more than the bytes it would save.
DEFAULT_MIN_ARRAY_BYTES = 64

#: Names of segments this process created and has not yet unlinked.
_PARENT_SEGMENTS: Set[str] = set()

#: Worker-side attachments not yet released (strong refs: the crash path
#: must be able to enumerate and close them deterministically).
_WORKER_ATTACHMENTS: List["_ArenaAttachment"] = []

_SEGMENT_SEQ = itertools.count()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink duties.

    Only the creating process owns unlink; an attach-only handle must
    not register with the resource tracker, or a worker's exit would
    unregister (spawn: unlink) a segment the parent still owns.  Python
    3.13 exposes this as ``track=False``; earlier interpreters register
    unconditionally, so there the registration is suppressed for the
    duration of the attach (single call, worker-local — the standard
    workaround for the pre-3.13 over-tracking behavior).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _segment_name() -> str:
    """A /dev/shm-visible name unique to this process and call."""
    return f"repro_arena_{os.getpid()}_{next(_SEGMENT_SEQ)}"


class ArenaSpec:
    """Picklable layout of one packed segment.

    ``entries[i]`` is ``(offset, shape, dtype-str)`` of the i-th hoisted
    array; persistent ids in the companion pickle stream reference
    entries by index.
    """

    __slots__ = ("name", "nbytes", "entries")

    def __init__(self, name: str, nbytes: int,
                 entries: Tuple[Tuple[int, Tuple[int, ...], str], ...]):
        self.name = name
        self.nbytes = int(nbytes)
        self.entries = entries

    def __reduce__(self):
        return (ArenaSpec, (self.name, self.nbytes, self.entries))

    def __repr__(self) -> str:
        return (f"ArenaSpec(name={self.name!r}, nbytes={self.nbytes}, "
                f"arrays={len(self.entries)})")


class ArenaPayload:
    """What actually ships through the pool initializer: the array-free
    pickle stream plus the segment layout the worker re-hydrates from.

    ``ParallelExecutor`` detects this type in the worker and restores the
    real context lazily on first use (:func:`restore_payload`), so an
    attach failure surfaces as a chunk failure instead of wedging the
    pool inside its initializer.
    """

    __slots__ = ("spec", "blob")

    def __init__(self, spec: ArenaSpec, blob: bytes):
        self.spec = spec
        self.blob = blob

    def __reduce__(self):
        return (ArenaPayload, (self.spec, self.blob))


class _HarvestPickler(pickle.Pickler):
    """Pickler that hoists eligible ndarrays out of the stream.

    Eligible: exactly ``np.ndarray`` (subclasses keep their own reduce
    semantics), numeric dtype, C-contiguous (so restored views share the
    exact element order — Fortran-strided tables could change numpy's
    pairwise-summation association and break byte-identity), and at
    least ``min_bytes`` big.  Duplicates are deduplicated by object
    identity, so a factor list holding the same table twice packs it
    once and the worker sees the aliasing preserved.
    """

    def __init__(self, buffer: io.BytesIO, min_bytes: int):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: List[np.ndarray] = []
        self._index_of: Dict[int, int] = {}
        self._min_bytes = min_bytes

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, int]]:
        if (type(obj) is np.ndarray and not obj.dtype.hasobject
                and obj.flags.c_contiguous and obj.nbytes >= self._min_bytes):
            index = self._index_of.get(id(obj))
            if index is None:
                index = len(self.arrays)
                self.arrays.append(obj)
                self._index_of[id(obj)] = index
            return (_PID_TAG, index)
        return None


class _RestoreUnpickler(pickle.Unpickler):
    """Unpickler resolving arena references to shared read-only views."""

    def __init__(self, buffer: io.BytesIO, attachment: "_ArenaAttachment"):
        super().__init__(buffer)
        self._attachment = attachment

    def persistent_load(self, pid: Any) -> np.ndarray:
        try:
            tag, index = pid
        except Exception:
            tag, index = None, None
        if tag != _PID_TAG:
            raise ParallelError(f"unknown persistent id {pid!r} "
                                "in arena payload")
        return self._attachment.view(int(index))


def _dispose_parent_segment(shm: shared_memory.SharedMemory,
                            state: Dict[str, bool]) -> None:
    """Close + unlink a parent-owned segment; safe to call repeatedly."""
    if not state.get("closed"):
        state["closed"] = True
        try:
            shm.close()
        except Exception:
            pass
    if not state.get("unlinked"):
        state["unlinked"] = True
        try:
            shm.unlink()  # also unregisters from the resource tracker
        except FileNotFoundError:
            pass
        except Exception:
            pass
        _PARENT_SEGMENTS.discard(shm.name)


class FactorArena:
    """Parent-side owner of one packed shared-memory segment.

    Build with :meth:`pack`; ship ``.payload`` through the pool
    initializer; :meth:`dispose` (or let the finalizer) when the pool is
    done.  Also a context manager: ``with FactorArena.pack(ctx) as a:``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: ArenaSpec,
                 blob: bytes):
        self._shm = shm
        self._state: Dict[str, bool] = {}
        self.spec = spec
        self.payload = ArenaPayload(spec, blob)
        _PARENT_SEGMENTS.add(shm.name)
        self._finalizer = weakref.finalize(
            self, _dispose_parent_segment, shm, self._state)

    # -- construction -----------------------------------------------------------

    @classmethod
    def pack(cls, context: Any,
             min_array_bytes: int = DEFAULT_MIN_ARRAY_BYTES
             ) -> Optional["FactorArena"]:
        """Pack ``context`` into a fresh segment, or ``None`` when the
        context holds no eligible arrays (ship it plainly instead)."""
        buffer = io.BytesIO()
        pickler = _HarvestPickler(buffer, int(min_array_bytes))
        pickler.dump(context)
        arrays = pickler.arrays
        if not arrays:
            return None
        offsets: List[int] = []
        size = 0
        for arr in arrays:
            size = -(-size // _ALIGN) * _ALIGN
            offsets.append(size)
            size += arr.nbytes
        size = max(size, 1)
        shm = cls._create_segment(size)
        for arr, offset in zip(arrays, offsets):
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                             offset=offset)
            dst[...] = arr
            del dst  # release the buffer export so close() can unmap
        entries = tuple((offset, tuple(arr.shape), arr.dtype.str)
                        for arr, offset in zip(arrays, offsets))
        spec = ArenaSpec(shm.name, size, entries)
        PARALLEL_ARENA_BYTES.inc(size, op="packed")
        return cls(shm, spec, buffer.getvalue())

    @staticmethod
    def _create_segment(size: int) -> shared_memory.SharedMemory:
        for _ in range(64):
            try:
                return shared_memory.SharedMemory(
                    create=True, size=size, name=_segment_name())
            except FileExistsError:  # stale name from a dead pid: next seq
                continue
        raise ParallelError("could not allocate a shared-memory arena "
                            "segment (name space exhausted)")

    # -- lifecycle --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    @property
    def closed(self) -> bool:
        return bool(self._state.get("closed"))

    @property
    def unlinked(self) -> bool:
        return bool(self._state.get("unlinked"))

    def close(self) -> None:
        """Unmap the parent's view; the segment itself stays linked."""
        if not self._state.get("closed"):
            self._state["closed"] = True
            try:
                self._shm.close()
            except Exception:
                pass

    def unlink(self) -> None:
        """Remove the segment from the system.  Idempotent: a second
        unlink (or an unlink racing the finalizer) is a no-op."""
        if not self._state.get("unlinked"):
            self._state["unlinked"] = True
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            _PARENT_SEGMENTS.discard(self.spec.name)

    def dispose(self) -> None:
        """Close and unlink — the normal end-of-map teardown."""
        self.close()
        self.unlink()

    def __enter__(self) -> "FactorArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.dispose()

    def __repr__(self) -> str:
        return (f"FactorArena(name={self.spec.name!r}, "
                f"nbytes={self.spec.nbytes}, "
                f"arrays={len(self.spec.entries)}, "
                f"unlinked={self.unlinked})")


class _ArenaAttachment:
    """Worker-side handle on an attached segment and its views."""

    def __init__(self, spec: ArenaSpec):
        self.spec = spec
        try:
            self._shm: Optional[shared_memory.SharedMemory] = \
                _attach_segment(spec.name)
        except FileNotFoundError:
            raise ParallelError(
                f"arena segment {spec.name!r} is gone — the parent "
                "unlinked it while a map was still running") from None
        self._views: List[Optional[np.ndarray]] = [None] * len(spec.entries)
        self._finalizer = weakref.finalize(self, _close_attachment_shm,
                                           self._shm)

    def view(self, index: int) -> np.ndarray:
        if self._shm is None:
            raise ParallelError("arena attachment already released")
        cached = self._views[index]
        if cached is None:
            offset, shape, dtype = self.spec.entries[index]
            cached = np.ndarray(shape, dtype=np.dtype(dtype),
                                buffer=self._shm.buf, offset=offset)
            cached.flags.writeable = False
            self._views[index] = cached
        return cached

    def close(self) -> None:
        """Drop the views and unmap.  If a caller still holds a view the
        unmap is deferred to process exit (BufferError swallowed) — the
        parent owns the unlink either way."""
        shm, self._shm = self._shm, None
        self._views = [None] * len(self._views)
        self._finalizer.detach()
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                pass
            except Exception:
                pass


def _close_attachment_shm(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:
        pass


def restore_payload(payload: ArenaPayload) -> Any:
    """Worker side: attach the segment and rebuild the real context.

    The attachment is recorded in a module registry so the executor's
    crash path can release it before shipping the failure record
    (:func:`release_worker_arenas`).
    """
    attachment = _ArenaAttachment(payload.spec)
    _WORKER_ATTACHMENTS.append(attachment)
    try:
        context = _RestoreUnpickler(io.BytesIO(payload.blob),
                                    attachment).load()
    except Exception:
        _WORKER_ATTACHMENTS.remove(attachment)
        attachment.close()
        raise
    PARALLEL_ARENA_BYTES.inc(payload.spec.nbytes, op="attached")
    return context


def release_worker_arenas() -> int:
    """Detach every live worker attachment; returns how many closed.

    Called by the executor after a chunk failure, *before* the failure
    record ships home — a worker that is about to report a crash must
    not be what keeps a shared segment mapped.  Contexts are restored
    lazily, so a later chunk on the same worker simply re-attaches.
    """
    released = 0
    while _WORKER_ATTACHMENTS:
        _WORKER_ATTACHMENTS.pop().close()
        released += 1
    return released


def live_worker_attachments() -> int:
    """How many worker-side attachments are currently live (tests)."""
    return len(_WORKER_ATTACHMENTS)


def live_arena_segments() -> List[str]:
    """Names of segments this process created and has not unlinked.

    Empty after every well-behaved map — the leak check benchmarks and
    tests assert on.
    """
    return sorted(_PARENT_SEGMENTS)
