"""Deterministic parallel execution for campaigns and sweeps.

The scale-out seam of the stack: one :class:`ParallelExecutor` with
serial / thread / process backends behind a single ``map_chunked`` API,
ordered result reassembly, per-item ``SeedSequence``-spawned RNG streams,
and worker telemetry merging — so same-seed runs are byte-identical
across backends and worker counts.  Process workers receive
``map_with_context`` payloads through a shared-memory
:class:`FactorArena` (read-only numpy views instead of per-worker
pickles), and grids shard deterministically through cost-balanced
contiguous cuts (:func:`balanced_partition`, :class:`CampaignSharder`).
See DESIGN.md §9 and §14.
"""

from repro.parallel.arena import (
    ArenaPayload,
    ArenaSpec,
    FactorArena,
    live_arena_segments,
    live_worker_attachments,
    release_worker_arenas,
    restore_payload,
)
from repro.parallel.executor import (
    BACKENDS,
    ParallelExecutor,
    spawn_generators,
)
from repro.parallel.sharder import (
    CampaignSharder,
    balanced_partition,
)

__all__ = [
    "ArenaPayload",
    "ArenaSpec",
    "BACKENDS",
    "CampaignSharder",
    "FactorArena",
    "ParallelExecutor",
    "balanced_partition",
    "live_arena_segments",
    "live_worker_attachments",
    "release_worker_arenas",
    "restore_payload",
    "spawn_generators",
]
