"""Deterministic parallel execution for campaigns and sweeps.

The scale-out seam of the stack: one :class:`ParallelExecutor` with
serial / thread / process backends behind a single ``map_chunked`` API,
ordered result reassembly, per-item ``SeedSequence``-spawned RNG streams,
and worker telemetry merging — so same-seed runs are byte-identical
across backends and worker counts.  See DESIGN.md §9.
"""

from repro.parallel.executor import (
    BACKENDS,
    ParallelExecutor,
    spawn_generators,
)

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "spawn_generators",
]
